"""Crash hygiene in ResultCache: torn files, stale tmp droppings, staleness.

Satellites of the campaign work (docs/CAMPAIGNS.md): every way a killed
writer or a bad disk can damage a cache directory must degrade to a cache
miss that re-executes and overwrites — never a crash, never a wrong hit.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import ExecutionStats, ResultCache, RunSpec, execute, execute_spec
from repro.testing.chaos import (
    DEAD_PID,
    chunk_files,
    garble_entry,
    plant_stale_tmp,
    truncate_chunk,
    truncate_entry,
)


def ring_spec(n: int = 8, seed: int = 0) -> RunSpec:
    return RunSpec(
        algorithm="faster",
        family="ring",
        graph={"n": n},
        placement="scatter",
        k=3,
        placement_args={"seed": seed},
        labels_args={"seed": seed},
    )


class TestTornPerKeyFiles:
    @pytest.mark.parametrize("damage", [truncate_entry, garble_entry])
    def test_damage_is_a_counted_miss_that_reexecutes(self, tmp_path, damage):
        cache = ResultCache(tmp_path)
        spec = ring_spec()
        original = execute([spec], cache=cache).outcomes[0].run_or_raise()
        damage(cache, spec)

        assert cache.get(spec) is None
        assert cache.corrupt == 1

        result = execute([spec], cache=cache)
        assert result.stats.executed == 1
        assert result.stats.cache_hits == 0
        assert result.stats.corrupt == 1
        healed = result.outcomes[0].run_or_raise()
        assert healed.to_dict() == original.to_dict()
        # The re-execution overwrote the torn file: next lookup hits.
        assert cache.get(spec) is not None
        assert execute([spec], cache=cache).stats.cache_hits == 1

    def test_damage_helpers_require_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(FileNotFoundError):
            truncate_entry(cache, ring_spec())


class TestTornChunkFiles:
    def test_truncated_chunk_records_reexecute(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [ring_spec(seed=s) for s in range(3)]
        outcomes = [execute_spec(s) for s in specs]
        originals = [o.run_or_raise().to_dict() for o in outcomes]
        assert cache.put_batch((s, o.run) for s, o in zip(specs, outcomes)) == 3
        assert len(chunk_files(cache)) == 1

        truncate_chunk(cache)
        cache.refresh()
        assert all(cache.get(s) is None for s in specs)
        assert cache.corrupt >= 1

        result = execute(specs, cache=cache)
        assert result.stats.executed == 3
        assert [o.run_or_raise().to_dict() for o in result.outcomes] == originals
        assert execute(specs, cache=cache).stats.cache_hits == 3

    def test_missing_chunk_to_truncate_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            truncate_chunk(ResultCache(tmp_path))


class TestChunkIndexStaleness:
    def test_other_handles_chunk_writes_become_visible(self, tmp_path):
        """A reader whose chunk index predates another process's put_batch
        must detect the stale index and re-scan instead of reporting a miss."""
        reader = ResultCache(tmp_path)
        writer = ResultCache(tmp_path)
        spec = ring_spec()
        assert reader.get(spec) is None  # builds (empty) chunk index

        outcome = execute_spec(spec)
        writer.put_batch([(spec, outcome.run)])
        assert reader.get(spec) is not None

    def test_explicit_refresh_drops_the_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ring_spec()
        cache.put_batch([(spec, execute_spec(spec).run)])
        assert cache.get(spec) is not None
        cache.refresh()
        assert cache.get(spec) is not None  # rebuilt from disk, same answer


class TestStaleTmpSweep:
    def test_dead_writer_droppings_are_swept(self, tmp_path):
        cache = ResultCache(tmp_path)
        planted = plant_stale_tmp(cache, count=4)
        assert all(p.exists() for p in planted)
        assert cache.sweep_stale_tmp() == 4
        assert not any(p.exists() for p in planted)
        assert cache.sweep_stale_tmp() == 0

    def test_live_writer_droppings_survive(self, tmp_path):
        cache = ResultCache(tmp_path)
        [path] = plant_stale_tmp(cache, count=1, pid=os.getpid())
        assert cache.sweep_stale_tmp() == 0
        assert path.exists()
        # ...unless they are ancient (writer pid reused long ago) or the
        # sweep is forced with max_age=0.
        assert cache.sweep_stale_tmp(max_age=0) == 1
        assert not path.exists()

    def test_len_and_clear_ignore_tmp_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ring_spec()
        execute([spec], cache=cache)
        plant_stale_tmp(cache, count=2, pid=DEAD_PID)
        assert len(cache) == 1
        removed = cache.clear()
        assert removed == 1
        assert len(cache) == 0
        assert list(cache._tmp_files()) == []


class TestRobustnessStats:
    def test_summary_is_byte_stable_when_clean(self):
        stats = ExecutionStats(total=3, executed=3)
        assert "robustness" not in stats.summary()

    def test_summary_shows_only_nonzero_counters(self):
        stats = ExecutionStats(total=3, executed=3, corrupt=2, retries=1)
        line = stats.summary()
        assert "[robustness: 2 corrupt, 1 retries]" in line
        assert "contended" not in line

    def test_merge_accumulates_robustness_counters(self):
        a = ExecutionStats(contended=1, reclaimed=2, corrupt=3, retries=4, tmp_swept=5)
        b = ExecutionStats(contended=10, reclaimed=20, corrupt=30, retries=40, tmp_swept=50)
        a.merge(b)
        assert (a.contended, a.reclaimed, a.corrupt, a.retries, a.tmp_swept) == (
            11, 22, 33, 44, 55,
        )
