"""Tests for port-numbering strategies."""

import pytest

from repro.graphs import generators as gg
from repro.graphs.port_numbering import STRATEGIES, assign_ports, renumber


PAIRS = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_all_strategies_produce_valid_graphs(strategy):
    g = assign_ports(4, PAIRS, strategy=strategy, seed=3)
    assert g.n == 4 and g.m == 5
    for v in g.nodes():
        for p in g.ports(v):
            u, q = g.traverse(v, p)
            assert g.traverse(u, q) == (v, p)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategies_deterministic(strategy):
    a = assign_ports(4, PAIRS, strategy=strategy, seed=7)
    b = assign_ports(4, PAIRS, strategy=strategy, seed=7)
    assert a == b


def test_random_seeds_differ():
    outs = {assign_ports(4, PAIRS, strategy="random", seed=s) for s in range(8)}
    assert len(outs) > 1


def test_canonical_orders_by_neighbor_index():
    g = assign_ports(4, PAIRS, strategy="canonical")
    # node 0 neighbors sorted: 1, 2, 3 -> ports 0, 1, 2
    assert g.neighbor(0, 0) == 1
    assert g.neighbor(0, 1) == 2
    assert g.neighbor(0, 2) == 3


def test_reversed_is_canonical_backwards():
    g = assign_ports(4, PAIRS, strategy="reversed")
    assert g.neighbor(0, 0) == 3
    assert g.neighbor(0, 2) == 1


def test_renumber_keeps_structure():
    g = gg.erdos_renyi(10, seed=1)
    h = renumber(g, "random", seed=9)
    assert h.n == g.n and h.m == g.m
    assert sorted(h.degree(v) for v in h.nodes()) == sorted(
        g.degree(v) for v in g.nodes()
    )


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown port strategy"):
        assign_ports(4, PAIRS, strategy="bogus")


def test_self_loop_rejected():
    with pytest.raises(ValueError, match="self-loop"):
        assign_ports(3, [(0, 0)])
