"""Tests for ``Faster-Gathering`` (Theorems 12 and 16, Remarks 13-14)."""

import pytest

from repro.core import bounds
from repro.core.faster_gathering import faster_gathering_program
from repro.graphs import generators as gg
from repro.analysis.placement import (
    dispersed_random,
    dispersed_with_pair_distance,
    undispersed_placement,
)
from tests.conftest import run_world


class TestTheorem12Cases:
    def test_case_i_undispersed(self):
        """Undispersed input: gathered within step 1, O(n^3) rounds."""
        g = gg.ring(10)
        starts = undispersed_placement(g, 4, seed=2)
        res = run_world(g, starts, [3, 7, 11, 19], faster_gathering_program())
        assert res.gathered and res.detected
        assert res.rounds <= bounds.faster_gathering_boundaries(10)[0] + 1
        steps = {s.get("gathered_at_step") for s in res.stats.values()}
        assert steps == {1}

    @pytest.mark.parametrize("dist,max_step", [(1, 2), (2, 3)])
    def test_case_i_dispersed_nearby(self, dist, max_step):
        """Pair at distance 1-2: gathered by step dist+1 (O(n^3) regime)."""
        g = gg.ring(12)
        starts = dispersed_with_pair_distance(g, 3, dist, seed=4)
        res = run_world(g, starts, [3, 9, 21], faster_gathering_program())
        assert res.gathered and res.detected
        step = next(iter(
            s["gathered_at_step"] for s in res.stats.values() if "gathered_at_step" in s
        ))
        assert step <= max_step
        assert res.rounds <= bounds.faster_gathering_boundaries(12)[max_step - 1] + 1

    @pytest.mark.parametrize("dist", [3, 4])
    def test_case_ii_distance_3_4(self, dist):
        g = gg.ring(14)
        starts = dispersed_with_pair_distance(g, 2, dist, seed=1)
        res = run_world(g, starts, [5, 10], faster_gathering_program())
        assert res.gathered and res.detected
        assert res.rounds <= bounds.faster_gathering_boundaries(14)[dist] + 1

    def test_case_iii_far_apart_uses_uxs(self):
        """Two robots at max distance on a small ring: UXS fallback."""
        g = gg.ring(8)
        res = run_world(g, [0, 4], [3, 9], faster_gathering_program())
        assert res.gathered and res.detected
        # distance 4 on an 8-ring is handled by step 5 (4-hop) at the latest;
        # make sure detection occurred at SOME stage and positions agree
        assert len(set(res.positions.values())) == 1

    def test_distance_beyond_5_falls_to_uxs(self):
        g = gg.path(16)
        res = run_world(g, [0, 15], [5, 9], faster_gathering_program())
        assert res.gathered and res.detected
        fallback = any(s.get("entered_uxs_fallback") for s in res.stats.values())
        assert fallback


class TestTheorem16Regimes:
    def test_regime_i_many_robots(self):
        """k >= n/2+1 robots: always gathered within the O(n^3) boundary."""
        g = gg.erdos_renyi(10, seed=5)
        k = 10 // 2 + 1
        for seed in range(3):
            starts = dispersed_random(g, k, seed=seed)
            labels = [2 * i + 3 for i in range(k)]
            res = run_world(g, starts, labels, faster_gathering_program())
            assert res.gathered and res.detected
            # Lemma 15 (c=2): some pair within 2 hops -> gathered by step 3
            assert res.rounds <= bounds.faster_gathering_boundaries(10)[2] + 1

    def test_regime_ii_third_robots(self):
        """k >= n/3+1: some pair within 4 hops -> gathered by step 5."""
        g = gg.ring(12)
        k = 12 // 3 + 1
        starts = dispersed_random(g, k, seed=9)
        labels = [3 * i + 2 for i in range(k)]
        res = run_world(g, starts, labels, faster_gathering_program())
        assert res.gathered and res.detected
        assert res.rounds <= bounds.faster_gathering_boundaries(12)[4] + 1

    def test_small_k_still_correct(self):
        g = gg.ring(9)
        res = run_world(g, [0, 4], [5, 9], faster_gathering_program())
        assert res.gathered and res.detected

    def test_single_robot_terminates(self):
        g = gg.ring(6)
        res = run_world(g, [0], [3], faster_gathering_program())
        assert res.gathered and res.detected  # trivially

    def test_single_node_graph(self):
        from repro.graphs.port_graph import PortGraph

        g = PortGraph(1, [])
        res = run_world(g, [0, 0], [3, 5], faster_gathering_program())
        assert res.gathered and res.detected
        assert res.rounds <= 2


class TestDetectionInvariants:
    """The heart of 'with detection': no robot ever terminates un-gathered."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_configs_never_misdetect(self, seed):
        g = gg.erdos_renyi(9, seed=seed)
        k = 3 + seed
        starts = dispersed_random(g, k, seed=seed + 10)
        labels = [5 * i + 2 for i in range(k)]
        res = run_world(g, starts, labels, faster_gathering_program())
        assert res.detected
        assert res.metrics.terminations_all_gathered

    def test_simultaneous_termination_when_stepwise(self):
        """Robots gathered by a step terminate in the same round."""
        g = gg.ring(10)
        starts = undispersed_placement(g, 3, seed=0)
        res = run_world(g, starts, [4, 8, 15], faster_gathering_program())
        # all terminations at the same round: last == first
        rounds = res.metrics.last_termination_round
        assert rounds is not None
        assert res.detected


class TestAblations:
    def test_remark13_hint_speeds_up(self):
        """Knowing the initial pair distance jumps straight to that step."""
        g = gg.ring(14)
        starts = dispersed_with_pair_distance(g, 2, 3, seed=2)
        labels = [5, 9]
        slow = run_world(g, starts, labels, faster_gathering_program())
        fast = run_world(
            g, starts, labels, faster_gathering_program(), knowledge={"hop_distance": 3}
        )
        assert fast.gathered and fast.detected
        assert fast.rounds < slow.rounds

    def test_remark13_hint_zero_is_undispersed_only(self):
        g = gg.ring(8)
        starts = undispersed_placement(g, 3, seed=3)
        res = run_world(
            g, starts, [3, 6, 9], faster_gathering_program(), knowledge={"hop_distance": 0}
        )
        assert res.gathered and res.detected
        assert res.rounds <= bounds.undispersed_rounds(8) + 1

    def test_remark14_known_degree_speeds_up(self):
        g = gg.ring(12)  # Δ=2
        starts = dispersed_with_pair_distance(g, 2, 2, seed=5)
        labels = [5, 9]
        slow = run_world(g, starts, labels, faster_gathering_program())
        fast = run_world(
            g, starts, labels, faster_gathering_program(), knowledge={"max_degree": 2}
        )
        assert fast.gathered and fast.detected
        assert fast.rounds < slow.rounds

    def test_hint_beyond_5_goes_straight_to_uxs(self):
        g = gg.path(14)
        res = run_world(
            g, [0, 13], [5, 9], faster_gathering_program(),
            knowledge={"hop_distance": 13},
        )
        assert res.gathered and res.detected
        assert all(s.get("entered_uxs_fallback") for s in res.stats.values())
