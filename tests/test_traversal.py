"""Tests for graph traversal utilities."""

import pytest

from repro.graphs import generators as gg
from repro.graphs.port_graph import Edge, PortGraph, PortGraphError
from repro.graphs.traversal import (
    ball,
    bfs_distances,
    bfs_layers,
    diameter,
    distance,
    eccentricity,
    euler_tour_ports,
    pairwise_distances,
    require_connected,
    shortest_port_route,
    spanning_tree_ports,
    walk,
)


class TestBfs:
    def test_distances_on_ring(self):
        g = gg.ring(8)
        d = bfs_distances(g, 0)
        assert d[0] == 0
        assert d[4] == 4
        assert d[7] == 1

    def test_layers(self):
        g = gg.star(6)
        layers = bfs_layers(g, 0)
        assert layers[0] == [0]
        assert sorted(layers[1]) == [1, 2, 3, 4, 5]

    def test_distance_symmetry(self):
        g = gg.erdos_renyi(12, seed=9)
        for u in range(0, 12, 3):
            for v in range(0, 12, 4):
                assert distance(g, u, v) == distance(g, v, u)

    def test_pairwise_matches_single(self):
        g = gg.grid(3, 3)
        mat = pairwise_distances(g)
        for v in g.nodes():
            assert mat[v] == bfs_distances(g, v)

    def test_unreachable_is_minus_one(self):
        g = PortGraph(3, [Edge(0, 1, 0, 0)])
        assert bfs_distances(g, 0)[2] == -1


class TestMetricsGeometry:
    def test_ring_diameter(self):
        assert diameter(gg.ring(8)) == 4
        assert diameter(gg.ring(9)) == 4

    def test_path_eccentricity(self):
        g = gg.path(6)
        assert eccentricity(g, 0) == 5
        assert eccentricity(g, 3) == 3

    def test_ball_on_path(self):
        g = gg.path(7)
        assert sorted(ball(g, 3, 1)) == [2, 3, 4]
        assert sorted(ball(g, 0, 2)) == [0, 1, 2]
        assert sorted(ball(g, 3, 0)) == [3]

    def test_require_connected(self):
        require_connected(gg.ring(5))
        with pytest.raises(PortGraphError):
            require_connected(PortGraph(2, []))


class TestSpanningTree:
    def test_tree_reaches_everything(self):
        g = gg.erdos_renyi(11, seed=4)
        tree = spanning_tree_ports(g, 0)
        reached = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for child, _po, _pb in tree[v]:
                reached.add(child)
                stack.append(child)
        assert reached == set(g.nodes())

    def test_tree_port_consistency(self):
        g = gg.grid(3, 3)
        tree = spanning_tree_ports(g, 4)
        for v, children in tree.items():
            for child, p_out, p_back in children:
                assert g.traverse(v, p_out) == (child, p_back)


class TestEulerTour:
    @pytest.mark.parametrize(
        "graph",
        [gg.ring(8), gg.path(6), gg.star(7), gg.grid(3, 4), gg.complete(5),
         gg.lollipop(8), gg.binary_tree(9)],
        ids=["ring", "path", "star", "grid", "complete", "lollipop", "btree"],
    )
    def test_tour_covers_and_returns(self, graph):
        for root in (0, graph.n // 2, graph.n - 1):
            ports = euler_tour_ports(graph, root)
            assert len(ports) == 2 * (graph.n - 1)
            visited = walk(graph, root, ports)
            assert visited[0] == visited[-1] == root
            assert set(visited) == set(graph.nodes())

    def test_tour_single_node(self):
        g = PortGraph(1, [])
        assert euler_tour_ports(g, 0) == []


class TestWalks:
    def test_walk_executes(self):
        g = gg.ring(6)
        route = shortest_port_route(g, 0, 3)
        assert len(route) == 3
        assert walk(g, 0, route)[-1] == 3

    def test_shortest_route_empty_for_self(self):
        g = gg.ring(6)
        assert shortest_port_route(g, 2, 2) == []

    def test_shortest_route_length_matches_distance(self):
        g = gg.erdos_renyi(12, seed=8)
        for u in (0, 5):
            for v in (3, 11):
                assert len(shortest_port_route(g, u, v)) == distance(g, u, v)

    def test_invalid_walk_raises(self):
        g = gg.path(3)
        with pytest.raises(PortGraphError):
            walk(g, 0, [5])

    def test_unreachable_route_raises(self):
        g = PortGraph(3, [Edge(0, 1, 0, 0)])
        with pytest.raises(PortGraphError, match="unreachable"):
            shortest_port_route(g, 0, 2)
