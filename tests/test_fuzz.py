"""The fuzzer's own contract: search space, shrinker, campaign, corpus, CLI.

The cross-engine replay guarantees live in ``test_fuzz_differential.py``;
this module pins the machinery underneath them — genome sampling and
round-trips, shrink candidate ordering and fixpoints, campaign
determinism and memoization, corpus tamper detection, scenario
registration (including the ``scenarios describe`` SHA-256 identity), and
the ``fuzz run|corpus|replay`` CLI exit codes.
"""

import random
from dataclasses import replace

import pytest

from repro.cli import main
from repro.runtime import ResultCache
from repro.scenarios.registry import get_scenario, scenario_names, unregister_scenario
from repro.search import (
    TARGETS,
    CorpusEntry,
    FuzzCampaign,
    ScheduleGenome,
    entry_from_result,
    load_corpus,
    load_entry,
    mutate_genome,
    register_corpus,
    replayable_engines,
    sample_genome,
    save_entry,
    scenario_for,
    shrink_genome,
    target_names,
)
from repro.search.shrink import shrink_candidates
from repro.search.space import get_target
from repro.sim.engines import list_engines


def delay_genome(delay=3):
    """Uniform fleet delay on the waiter/pair target: the guaranteed
    positive-regret schedule (shifts the whole schedule by ``delay``)."""
    return ScheduleGenome(
        target="undispersed-ring8",
        faults={"delay": {"0": delay, "1": delay, "2": delay}},
    )


# ---------------------------------------------------------------------------
# Search space
# ---------------------------------------------------------------------------


class TestSpace:
    def test_registered_targets(self):
        assert target_names() == sorted(TARGETS)
        assert set(target_names()) == {
            "undispersed-ring8",
            "faster-ring8",
            "random-walk-ring12",
            "tz-ring8",
        }

    def test_unknown_target_raises_with_listing(self):
        with pytest.raises(ValueError, match="unknown fuzz target"):
            get_target("nope")
        with pytest.raises(ValueError, match="registered targets"):
            ScheduleGenome(target="nope").compile()

    def test_genome_dict_roundtrip(self):
        genome = ScheduleGenome(
            target="undispersed-ring8",
            faults={"crash": {"1": 4}, "delay": {"0": 2}},
            activation="sync",
            placement_seed=7,
        )
        assert ScheduleGenome.from_dict(genome.to_dict()) == genome

    def test_compile_overlays_base_without_mutating_it(self):
        base = TARGETS["undispersed-ring8"].base
        before = dict(base.placement_args)
        spec = replace(delay_genome(2), placement_seed=99).compile()
        assert spec.placement_args["seed"] == 99
        assert spec.faults == {"delay": {"0": 2, "1": 2, "2": 2}}
        assert base.placement_args == before

    def test_seed_rerolls_default_to_target_pins(self):
        spec = delay_genome(1).compile()
        base = TARGETS["undispersed-ring8"].base
        assert spec.placement_args == base.placement_args
        assert spec.labels_args == base.labels_args

    def test_sampling_is_deterministic(self):
        rng1, rng2 = random.Random(9), random.Random(9)
        assert [sample_genome(rng1) for _ in range(20)] == [
            sample_genome(rng2) for _ in range(20)
        ]

    def test_sampling_respects_target_filter_and_modes(self):
        rng = random.Random(0)
        for _ in range(30):
            genome = sample_genome(rng, ["tz-ring8"])
            assert genome.target == "tz-ring8"
            # tz-ring8 is activation-only: never a fault table
            assert not genome.faults
            assert genome.activation != "sync"

    def test_samples_compile_and_key(self):
        rng = random.Random(1)
        for _ in range(50):
            spec = sample_genome(rng).compile()
            assert len(ResultCache.key_for(spec)) == 64

    def test_mutation_stays_in_mode_family(self):
        rng = random.Random(3)
        fault = delay_genome(5)
        for _ in range(40):
            mutant = mutate_genome(fault, rng)
            assert mutant.activation == "sync"
        activation = ScheduleGenome(
            target="tz-ring8", activation="adversarial", activation_args={"budget": 1}
        )
        for _ in range(40):
            mutant = mutate_genome(activation, rng)
            assert not mutant.faults


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


class TestShrink:
    def test_candidates_drop_seeds_first_then_entries_then_values(self):
        genome = replace(delay_genome(8), placement_seed=11)
        kinds = list(shrink_candidates(genome))
        first = kinds[0]
        assert first.placement_seed is None and first.faults == genome.faults
        # entry drops come before value shrinks
        drop_index = next(
            i for i, c in enumerate(kinds) if len(c.faults.get("delay", {})) == 2
        )
        value_index = next(
            i
            for i, c in enumerate(kinds)
            if c.faults.get("delay", {}).get("0") == 1
            and len(c.faults.get("delay", {})) == 3
        )
        assert drop_index < value_index

    def test_candidates_are_strictly_different(self):
        genome = replace(delay_genome(6), labels_seed=2)
        for candidate in shrink_candidates(genome):
            assert candidate != genome

    def test_shrink_reaches_fixpoint_minimum(self):
        genome = replace(delay_genome(8), placement_seed=5, labels_seed=5)

        def predicate(candidate):
            # pure-python property: robot 0 still delayed
            return candidate if candidate.faults.get("delay", {}).get("0") else None

        best = shrink_genome(genome, predicate)
        assert best.faults == {"delay": {"0": 1}}
        assert best.placement_seed is None and best.labels_seed is None

    def test_shrink_returns_none_when_already_minimal(self):
        genome = ScheduleGenome(target="undispersed-ring8", faults={"delay": {"0": 1}})

        def predicate(candidate):
            return candidate if candidate.faults.get("delay", {}).get("0") else None

        assert shrink_genome(genome, predicate) is None

    def test_max_evals_bounds_predicate_calls(self):
        genome = replace(delay_genome(20), placement_seed=5)
        calls = []

        def predicate(candidate):
            calls.append(candidate)
            return None

        assert shrink_genome(genome, predicate, max_evals=3) is None
        assert len(calls) == 3


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_constructor_validates(self):
        with pytest.raises(ValueError, match="budget >= 1"):
            FuzzCampaign(budget=0)
        with pytest.raises(ValueError, match="explore"):
            FuzzCampaign(explore=1.5)
        with pytest.raises(ValueError, match="unknown fuzz targets"):
            FuzzCampaign(targets=["nope"])

    def test_uniform_delay_scores_guaranteed_regret(self):
        campaign = FuzzCampaign(seed=0, budget=1)
        result = campaign.evaluate(delay_genome(3))
        assert result.ok
        assert result.regret == 3  # the whole fleet shifts by the delay
        assert result.record["rounds"] == result.rounds

    def test_asymmetric_delay_aborts_oblivious_schedule(self):
        """The documented negative space: a desynced oblivious schedule
        detects the inconsistency and raises — an isolated abort, not a
        find and not a crash."""
        campaign = FuzzCampaign(seed=0, budget=1)
        result = campaign.evaluate(
            ScheduleGenome(target="undispersed-ring8", faults={"delay": {"2": 7}})
        )
        assert not result.ok
        assert result.error_type == "ValueError"
        assert "conflicting edge" in result.error
        assert result.regret is None

    def test_evaluation_is_memoized(self):
        campaign = FuzzCampaign(seed=0, budget=1)
        campaign.evaluate(delay_genome(2))
        executed = campaign.stats.executed
        campaign.evaluate(delay_genome(2))
        assert campaign.stats.executed == executed

    def test_minimize_strips_freight_and_preserves_regret(self):
        # redundant seed re-rolls (the target's own pins, restated) must
        # go, and the three-robot uniform delay shrinks to the single
        # robot whose delay alone reproduces the same regret
        campaign = FuzzCampaign(seed=0, budget=1)
        noisy = replace(delay_genome(3), placement_seed=8, labels_seed=8)
        result = campaign.evaluate(noisy)
        small = campaign.minimize(result)
        assert small.genome.placement_seed is None
        assert small.genome.labels_seed is None
        assert small.genome.faults == {"delay": {"1": 3}}
        assert small.regret == result.regret

    def test_report_partitions_results(self):
        report = FuzzCampaign(seed=0, budget=10).run()
        assert len(report.results) == 10
        assert {id(r) for r in report.positives}.isdisjoint(
            {id(r) for r in report.aborted}
        )
        for r in report.positives:
            assert r.regret >= 1
        for target, best in report.best().items():
            assert best.genome.target == target


# ---------------------------------------------------------------------------
# Corpus round-trip, tamper detection, scenario registration
# ---------------------------------------------------------------------------


@pytest.fixture()
def entry():
    campaign = FuzzCampaign(seed=0, budget=1)
    result = campaign.evaluate(delay_genome(3))
    return entry_from_result(result, found={"seed": 0, "budget": 1, "iteration": -1})


class TestCorpus:
    def test_entry_requires_successful_result(self):
        campaign = FuzzCampaign(seed=0, budget=1)
        aborted = campaign.evaluate(
            ScheduleGenome(target="undispersed-ring8", faults={"delay": {"2": 7}})
        )
        with pytest.raises(ValueError, match="successful"):
            entry_from_result(aborted)

    def test_disk_roundtrip(self, entry, tmp_path):
        path = save_entry(entry, tmp_path)
        assert path.name == f"{entry.name}.json"
        assert load_entry(path) == entry
        assert load_corpus(tmp_path) == [entry]

    def test_corpus_loads_sorted_by_name(self, entry, tmp_path):
        other = replace(entry, name="aaa-first")
        save_entry(entry, tmp_path)
        save_entry(other, tmp_path)
        assert [e.name for e in load_corpus(tmp_path)] == sorted(
            [entry.name, other.name]
        )

    def test_tampered_spec_is_rejected(self, entry):
        payload = entry.to_payload()
        payload["spec"]["seed"] = 1234
        with pytest.raises(ValueError, match="does not match the recomputed"):
            CorpusEntry.from_payload(payload)

    def test_schema_mismatches_fail_loudly(self, entry):
        stale = entry.to_payload()
        stale["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            CorpusEntry.from_payload(stale)
        old_spec = entry.to_payload()
        old_spec["spec_schema"] = 0
        with pytest.raises(ValueError, match="spec schema"):
            CorpusEntry.from_payload(old_spec)

    def test_replayable_engines_scoping(self, entry):
        assert replayable_engines(entry.spec) == list_engines()
        activated = replace(entry.spec, activation="adversarial", activation_args={"budget": 1})
        assert replayable_engines(activated) == [
            n for n in list_engines() if n != "reference"
        ]

    def test_register_and_unregister_scenario(self, entry):
        scenario = scenario_for(entry)
        assert scenario.specs == (entry.spec,)
        assert "fuzz" in scenario.tags
        registered = register_corpus([entry])
        try:
            assert [sc.name for sc in registered] == [entry.name]
            assert entry.name in scenario_names()
            assert get_scenario(entry.name).specs == (entry.spec,)
        finally:
            unregister_scenario(entry.name)
        assert entry.name not in scenario_names()

    def test_describe_prints_the_stable_cache_identity(self, entry, capsys):
        """Registered fuzz entries expose the same SHA-256 the cache files
        are named by — stable across consecutive invocations."""
        register_corpus([entry])
        try:
            assert main(["scenarios", "describe", entry.name]) == 0
            first = capsys.readouterr().out
            assert entry.key in first
            assert main(["scenarios", "describe", entry.name]) == 0
            assert capsys.readouterr().out == first
        finally:
            unregister_scenario(entry.name)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture(scope="class")
def cli_corpus(tmp_path_factory):
    """One `fuzz run` invocation shared by the CLI tests."""
    root = tmp_path_factory.mktemp("fuzz-cli")
    corpus = root / "corpus"
    cache = root / "cache"
    code = main(
        [
            "fuzz",
            "run",
            "--seed",
            "0",
            "--budget",
            "12",
            "--corpus-dir",
            str(corpus),
            "--cache-dir",
            str(cache),
        ]
    )
    assert code == 0
    return corpus, cache


class TestCli:
    def test_run_writes_minimized_corpus(self, cli_corpus, capsys):
        corpus, _ = cli_corpus
        entries = load_corpus(corpus)
        assert entries, "seeded smoke run must write at least one entry"
        for e in entries:
            assert e.regret >= 1
            assert e.found["seed"] == 0 and e.found["budget"] == 12

    def test_corpus_lists_entries(self, cli_corpus, capsys):
        corpus, _ = cli_corpus
        assert main(["fuzz", "corpus", "--corpus-dir", str(corpus)]) == 0
        out = capsys.readouterr().out
        for e in load_corpus(corpus):
            assert e.name in out

    def test_corpus_register_flag_registers_and_prints(self, cli_corpus, capsys):
        corpus, _ = cli_corpus
        names = [e.name for e in load_corpus(corpus)]
        try:
            assert main(["fuzz", "corpus", "--corpus-dir", str(corpus), "--register"]) == 0
            out = capsys.readouterr().out
            for name in names:
                assert name in out
                assert name in scenario_names()
        finally:
            for name in names:
                if name in scenario_names():
                    unregister_scenario(name)

    def test_replay_is_bit_identical_and_cache_hits_second_time(
        self, cli_corpus, capsys
    ):
        corpus, cache = cli_corpus
        argv = [
            "fuzz",
            "replay",
            "--corpus-dir",
            str(corpus),
            "--cache-dir",
            str(cache),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "all replays bit-identical" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "all replays bit-identical" in second
        assert "0 executed" in second

    def test_replay_single_engine_flag(self, cli_corpus, capsys):
        corpus, _ = cli_corpus
        assert (
            main(["fuzz", "replay", "--corpus-dir", str(corpus), "--engine", "reference"])
            == 0
        )
        assert "all replays bit-identical" in capsys.readouterr().out

    def test_corpus_and_replay_exit_1_on_empty_dir(self, tmp_path, capsys):
        assert main(["fuzz", "corpus", "--corpus-dir", str(tmp_path)]) == 1
        assert main(["fuzz", "replay", "--corpus-dir", str(tmp_path)]) == 1

    def test_replay_exits_1_on_divergence(self, cli_corpus, tmp_path, capsys):
        corpus, _ = cli_corpus
        entry = load_corpus(corpus)[0]
        # forge a record that claims different rounds: the key still
        # matches (spec untouched), so only replay comparison can catch it
        forged = replace(entry, rounds=entry.rounds + 1)
        forged.record = dict(entry.record, rounds=entry.rounds + 1)
        save_entry(forged, tmp_path)
        assert main(["fuzz", "replay", "--corpus-dir", str(tmp_path)]) == 1
        assert "diverged" in capsys.readouterr().out
