"""The chaos proofs: campaigns survive SIGKILL, vandalism, and slow claims.

These tests drive the real campaign code through real failures — workers
killed with SIGKILL mid-cell, cache files torn behind the cache's back,
leases orphaned by dead processes — and assert the one promise that
matters: the grid converges, and the results are bit-identical to a clean
serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import CampaignManifest, run_campaign, run_worker, status_of
from repro.runtime import ResultCache, RunSpec, SerialExecutor
from repro.testing.chaos import (
    CHAOS_ENV_VAR,
    ChaosConfig,
    ChaosMonkey,
    chaos_from_env,
    orphan_lease,
    plant_stale_tmp,
    truncate_entry,
)


def grid(ns=(6, 8, 10), seed=0):
    return [
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": n},
            placement="scatter",
            k=3,
            placement_args={"seed": seed},
            labels_args={"seed": seed},
        )
        for n in ns
    ]


def clean_records(manifest):
    """What a clean serial run of the whole grid produces, keyed by cell."""
    return {
        ResultCache.key_for(o.spec): o.run.to_dict()
        for o in SerialExecutor().run(manifest.specs())
    }


def assert_bit_identical(manifest, cache):
    cache.refresh()
    expected = clean_records(manifest)
    for cell in manifest.cells:
        assert cache.get(cell.spec).to_dict() == expected[cell.key]


class TestChaosConfig:
    def test_round_trips_through_json_and_env(self):
        config = ChaosConfig(seed=7, kill={"pre_write": 0.5}, kill_limit=2, claim_delay=0.1)
        assert ChaosConfig.from_json(config.to_json()) == config
        assert json.loads(config.env()[CHAOS_ENV_VAR]) == json.loads(config.to_json())

    def test_unknown_fault_point_is_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill={"before_breakfast": 1.0})

    def test_env_parsing(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        assert chaos_from_env(tmp_path) is None
        monkeypatch.setenv(CHAOS_ENV_VAR, '{"seed": 3, "kill": {"claimed": 1.0}}')
        monkey = chaos_from_env(tmp_path)
        assert monkey.config.seed == 3
        monkeypatch.setenv(CHAOS_ENV_VAR, "not json")
        with pytest.raises(json.JSONDecodeError):
            chaos_from_env(tmp_path)

    def test_kill_decisions_are_seed_deterministic(self, tmp_path):
        a = ChaosMonkey(ChaosConfig(seed=1, kill={"pre_write": 0.5}), tmp_path)
        b = ChaosMonkey(ChaosConfig(seed=1, kill={"pre_write": 0.5}), tmp_path)
        keys = [f"key{i}" for i in range(64)]
        decisions = [a.should_kill("pre_write", k) for k in keys]
        assert decisions == [b.should_kill("pre_write", k) for k in keys]
        assert any(decisions) and not all(decisions)
        # Other points are untouched by this schedule.
        assert not any(a.should_kill("claimed", k) for k in keys)

    def test_kill_slots_are_rationed(self, tmp_path):
        monkey = ChaosMonkey(ChaosConfig(kill_limit=2), tmp_path)
        assert monkey._claim_kill_slot()
        assert monkey._claim_kill_slot()
        assert not monkey._claim_kill_slot()  # limit reached, even cross-monkey
        assert monkey.kills_used() == 2


class TestSigkillRecovery:
    """The acceptance scenario: SIGKILL a worker mid-cell, resume, converge."""

    def test_killed_worker_then_resume_is_bit_identical(self, tmp_path, monkeypatch):
        manifest = CampaignManifest.from_specs(grid())
        config = ChaosConfig(seed=0, kill={"pre_write": 1.0}, kill_limit=1)
        monkeypatch.setenv(CHAOS_ENV_VAR, config.to_json())

        # Two OS workers; exactly one dies after executing its first cell
        # but before the cache write (the worst place: work done, lost).
        interrupted = run_campaign(manifest, tmp_path, workers=2, idle_timeout=2)
        status = status_of(manifest, tmp_path)
        assert not status.complete
        assert status.done == len(manifest.cells) - 1
        assert status.claimed == 1  # the dead worker's lease lingers

        # Resume (chaos off): the stale lease is reclaimed and exactly the
        # killed cell re-executes — completed cells are not re-run.
        monkeypatch.delenv(CHAOS_ENV_VAR)
        resumed = run_campaign(manifest, tmp_path, workers=1, lease_timeout=0.5)
        assert resumed.executed == 1
        assert resumed.reclaimed == 1
        assert resumed.cache_hits == len(manifest.cells) - 1
        assert status_of(manifest, tmp_path).complete
        assert_bit_identical(manifest, ResultCache(tmp_path))
        assert interrupted.executed + resumed.executed == len(manifest.cells)

    def test_completed_campaign_resumes_with_zero_executions(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid())
        run_campaign(manifest, tmp_path, workers=2, idle_timeout=2)
        assert status_of(manifest, tmp_path).complete

        resumed = run_campaign(manifest, tmp_path, workers=1)
        assert resumed.executed == 0
        assert resumed.cache_hits == len(manifest.cells)

    def test_kill_after_write_loses_nothing(self, tmp_path, monkeypatch):
        """post_write kill: the cell committed before the worker died, so
        resume finds it done and only sweeps the orphaned lease."""
        manifest = CampaignManifest.from_specs(grid())
        config = ChaosConfig(seed=0, kill={"post_write": 1.0}, kill_limit=1)
        monkeypatch.setenv(CHAOS_ENV_VAR, config.to_json())
        run_campaign(manifest, tmp_path, workers=2, idle_timeout=2)

        monkeypatch.delenv(CHAOS_ENV_VAR)
        resumed = run_campaign(manifest, tmp_path, workers=1, lease_timeout=0.5)
        assert resumed.executed == 0
        assert status_of(manifest, tmp_path).complete
        assert_bit_identical(manifest, ResultCache(tmp_path))


class TestVandalismRecovery:
    def test_torn_entry_reexecutes_on_resume(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid())
        cache = ResultCache(tmp_path)
        run_worker(manifest, cache)

        truncate_entry(cache, manifest.cells[1].spec)
        planted = plant_stale_tmp(cache, count=2)

        stats = run_worker(manifest, ResultCache(tmp_path))
        assert stats.executed == 1  # only the vandalized cell
        assert stats.tmp_swept == 2
        assert stats.corrupt >= 1
        assert not any(p.exists() for p in planted)
        assert status_of(manifest, tmp_path).complete
        assert_bit_identical(manifest, ResultCache(tmp_path))

    def test_stale_orphan_lease_on_pending_cell_is_reclaimed(self, tmp_path):
        """A worker that died holding a lease (without ever writing) must
        not block the cell forever: past the timeout the lease is reclaimed
        and the cell executes."""
        manifest = CampaignManifest.from_specs(grid())
        orphan_lease(tmp_path, manifest.campaign_id, manifest.cells[1].key)

        stats = run_worker(manifest, ResultCache(tmp_path), lease_timeout=60)
        assert stats.executed == len(manifest.cells)
        assert stats.reclaimed == 1
        assert status_of(manifest, tmp_path).complete
        assert_bit_identical(manifest, ResultCache(tmp_path))

    def test_orphan_lease_over_done_cell_is_swept_at_startup(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid())
        cache = ResultCache(tmp_path)
        run_worker(manifest, cache)

        path = orphan_lease(tmp_path, manifest.campaign_id, manifest.cells[0].key)
        stats = run_worker(manifest, ResultCache(tmp_path))
        assert stats.executed == 0
        assert not path.exists()


class TestClaimDelays:
    def test_slow_claims_still_converge(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid())
        monkey = ChaosMonkey(ChaosConfig(seed=2, claim_delay=0.02), tmp_path)
        stats = run_worker(manifest, ResultCache(tmp_path), chaos=monkey)
        assert stats.executed == len(manifest.cells)
        assert status_of(manifest, tmp_path).complete
        assert_bit_identical(manifest, ResultCache(tmp_path))
