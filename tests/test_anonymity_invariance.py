"""Anonymity invariance: algorithms cannot depend on node names.

The strongest structural test in the suite.  If a node permutation is
applied to the graph (ports untouched — a port-preserving isomorphism) and
to the start positions, every robot receives the *identical* observation
sequence, so the entire run must be identical: same round count, same move
counts, and final positions that correspond under the permutation.

Any accidental leak of simulator node identities into robot behaviour
(through ordering, hashing, or API slips) breaks this test.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.placement import assign_labels, dispersed_random, undispersed_placement
from repro.core.faster_gathering import faster_gathering_program
from repro.core.hop_meeting import hop_meeting_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from tests.conftest import run_world


def run_pair(graph, starts, labels, factory_fn):
    """Run on the graph and on a relabeled copy; return both results+perm."""
    rng = random.Random(13)
    perm = list(range(graph.n))
    rng.shuffle(perm)
    relabeled = graph.relabel(perm)
    a = run_world(graph, starts, labels, factory_fn())
    b = run_world(relabeled, [perm[s] for s in starts], labels, factory_fn())
    return a, b, perm


ALGOS = [
    ("undispersed", undispersed_gathering_program),
    ("uxs", uxs_gathering_program),
    ("faster", faster_gathering_program),
    ("hop2", lambda: hop_meeting_program(2)),
]


@pytest.mark.parametrize("name,factory_fn", ALGOS, ids=[n for n, _ in ALGOS])
def test_runs_identical_under_relabeling(name, factory_fn):
    graph = gg.erdos_renyi(9, seed=8, numbering="random")
    if name == "undispersed":
        starts = undispersed_placement(graph, 4, seed=3)
    else:
        starts = dispersed_random(graph, 4, seed=3)
    labels = assign_labels(4, graph.n, seed=3)

    a, b, perm = run_pair(graph, starts, labels, factory_fn)
    assert a.rounds == b.rounds
    assert a.metrics.total_moves == b.metrics.total_moves
    assert a.metrics.moves_by_robot == b.metrics.moves_by_robot
    assert a.metrics.first_gather_round == b.metrics.first_gather_round
    for label, node in a.positions.items():
        assert b.positions[label] == perm[node]


@given(st.integers(0, 10**6))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_relabel_invariance_property(seed):
    rng = random.Random(seed)
    n = rng.randrange(6, 10)
    graph = gg.erdos_renyi(n, seed=seed % 89, numbering="random")
    k = rng.randrange(2, 5)
    starts = [rng.randrange(n) for _ in range(k)]
    labels = sorted(rng.sample(range(1, n * n), k))

    a, b, perm = run_pair(graph, starts, labels, faster_gathering_program)
    assert a.rounds == b.rounds
    assert a.detected == b.detected
    for label, node in a.positions.items():
        assert b.positions[label] == perm[node]


def test_relabel_validation():
    g = gg.ring(5)
    with pytest.raises(Exception, match="permutation"):
        g.relabel([0, 1, 2, 3, 3])
