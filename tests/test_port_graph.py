"""Unit tests for the anonymous port-labeled graph core."""

import pickle

import pytest

from repro.graphs.port_graph import Edge, PortGraph, PortGraphError, build_from_pairs


def tiny_path() -> PortGraph:
    # 0 -(0|0)- 1 -(1|0)- 2
    return PortGraph(3, [Edge(0, 1, 0, 0), Edge(1, 2, 1, 0)])


class TestConstruction:
    def test_basic_properties(self):
        g = tiny_path()
        assert g.n == 3
        assert g.m == 2
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert g.degree(2) == 1
        assert g.max_degree == 2
        assert g.min_degree == 1

    def test_edges_accept_tuples(self):
        g = PortGraph(2, [(0, 1, 0, 0)])
        assert g.m == 1
        assert g.traverse(0, 0) == (1, 0)

    def test_single_node(self):
        g = PortGraph(1, [])
        assert g.n == 1
        assert g.m == 0
        assert g.degree(0) == 0
        assert g.is_connected()

    def test_rejects_nonpositive_n(self):
        with pytest.raises(PortGraphError):
            PortGraph(0, [])

    def test_rejects_self_loop(self):
        with pytest.raises(PortGraphError, match="self-loop"):
            PortGraph(2, [Edge(0, 0, 0, 1)])

    def test_rejects_parallel_edges(self):
        with pytest.raises(PortGraphError, match="parallel"):
            PortGraph(2, [Edge(0, 1, 0, 0), Edge(1, 0, 1, 1)])

    def test_rejects_duplicate_port(self):
        with pytest.raises(PortGraphError, match="duplicate port"):
            PortGraph(3, [Edge(0, 1, 0, 0), Edge(0, 2, 0, 0)])

    def test_rejects_port_gap(self):
        # node 0 has ports {0, 2}: not contiguous
        with pytest.raises(PortGraphError, match="ports must be exactly"):
            PortGraph(3, [Edge(0, 1, 0, 0), Edge(0, 2, 2, 0)])

    def test_rejects_out_of_range_node(self):
        with pytest.raises(PortGraphError, match="outside"):
            PortGraph(2, [Edge(0, 5, 0, 0)])


class TestTraverse:
    def test_traverse_returns_entry_port(self):
        g = tiny_path()
        assert g.traverse(0, 0) == (1, 0)
        assert g.traverse(1, 0) == (0, 0)
        assert g.traverse(1, 1) == (2, 0)
        assert g.traverse(2, 0) == (1, 1)

    def test_traverse_is_involutive(self):
        g = tiny_path()
        for v in g.nodes():
            for p in g.ports(v):
                u, q = g.traverse(v, p)
                assert g.traverse(u, q) == (v, p)

    def test_invalid_port_raises(self):
        g = tiny_path()
        with pytest.raises(PortGraphError, match="port"):
            g.traverse(0, 1)

    def test_neighbor_and_neighbors(self):
        g = tiny_path()
        assert g.neighbor(1, 0) == 0
        assert list(g.neighbors(1)) == [0, 2]

    def test_port_to(self):
        g = tiny_path()
        assert g.port_to(1, 2) == 1
        with pytest.raises(PortGraphError):
            g.port_to(0, 2)


class TestConnectivity:
    def test_connected(self):
        assert tiny_path().is_connected()

    def test_disconnected(self):
        g = PortGraph(4, [Edge(0, 1, 0, 0), Edge(2, 3, 0, 0)])
        assert not g.is_connected()


class TestEquality:
    def test_equal_graphs(self):
        assert tiny_path() == tiny_path()
        assert hash(tiny_path()) == hash(tiny_path())

    def test_different_ports_not_equal(self):
        a = PortGraph(3, [Edge(0, 1, 0, 0), Edge(1, 2, 1, 0)])
        b = PortGraph(3, [Edge(0, 1, 0, 1), Edge(1, 2, 0, 0)])
        assert a != b

    def test_not_equal_to_other_types(self):
        assert tiny_path() != "graph"


class TestInterop:
    def test_networkx_roundtrip_preserves_structure(self):
        g = tiny_path()
        nx_g = g.to_networkx()
        assert nx_g.number_of_nodes() == 3
        assert nx_g.number_of_edges() == 2
        back = PortGraph.from_networkx(nx_g)
        assert back.n == 3 and back.m == 2

    def test_pickle_roundtrip(self):
        g = tiny_path()
        g2 = pickle.loads(pickle.dumps(g))
        assert g2 == g

    def test_build_from_pairs(self):
        ports = {(0, 1): 0, (1, 0): 1, (1, 2): 0, (2, 1): 0}
        g = build_from_pairs(3, [(0, 1), (1, 2)], ports)
        assert g.traverse(1, 1) == (0, 0)
        assert g.traverse(1, 0) == (2, 0)


class TestEdge:
    def test_other(self):
        e = Edge(1, 2, 0, 1)
        assert e.other(1) == 2
        assert e.other(2) == 1
        with pytest.raises(PortGraphError):
            e.other(3)

    def test_endpoints(self):
        assert Edge(1, 2, 0, 1).endpoints() == (1, 2)
