"""Tests for repro.runtime: specs, executors, seed streams, cache, isolation."""

from __future__ import annotations

import json

import pytest

from repro.runtime import (
    ParallelExecutor,
    ResultCache,
    RunFailure,
    RunSpec,
    SerialExecutor,
    assign_seeds,
    derive_seed,
    execute,
    execute_spec,
    register_algorithm,
    run_specs,
    unregister_algorithm,
)
from repro.sim.actions import Action


def small_batch():
    """A mixed, fast batch: three sizes, two algorithms, one baseline."""
    specs = [
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": n},
            placement="scatter",
            k=n // 2 + 1,
            placement_args={"seed": 1},
            labels_args={"seed": n},
        )
        for n in (8, 9, 10)
    ]
    specs.append(
        RunSpec(
            algorithm="undispersed",
            family="erdos_renyi",
            graph={"n": 9, "seed": 3},
            placement="undispersed",
            k=3,
            placement_args={"seed": 5},
            labels_args={"seed": 5},
            uses_uxs=False,
        )
    )
    return specs


class TestSpec:
    def test_canonical_json_is_stable_and_orders_keys(self):
        spec = small_batch()[0]
        assert spec.canonical_json() == spec.canonical_json()
        payload = json.loads(spec.canonical_json())
        assert payload["spec"]["algorithm"] == "faster"
        assert "schema" in payload

    def test_distinct_specs_have_distinct_keys(self):
        a, b = small_batch()[:2]
        assert ResultCache.key_for(a) != ResultCache.key_for(b)
        # and a seed change alone re-keys
        from dataclasses import replace

        assert ResultCache.key_for(a) != ResultCache.key_for(replace(a, seed=7))

    def test_canonical_json_rejects_unserializable_values(self):
        """Silently stringifying a function would embed a memory address and
        quietly break cache-key identity across processes."""
        spec = RunSpec(algorithm="faster", family="ring", graph={"n": 8},
                       placement_args={"seed": lambda: 1})
        with pytest.raises(TypeError):
            spec.canonical_json()

    def test_execute_spec_unknown_algorithm_is_isolated(self):
        outcome = execute_spec(RunSpec(algorithm="bogus", family="ring", graph={"n": 8}))
        assert not outcome.ok
        assert outcome.error_type == "ValueError"
        with pytest.raises(RunFailure, match="bogus"):
            outcome.run_or_raise()


class TestSeedStreams:
    def test_derive_seed_deterministic_and_spread(self):
        a = derive_seed(0, 0)
        assert a == derive_seed(0, 0)
        stream = {derive_seed(0, i) for i in range(100)}
        assert len(stream) == 100
        assert derive_seed(1, 0) not in stream

    def test_assign_seeds_fills_only_unset(self):
        specs = [
            RunSpec(algorithm="faster", family="ring", graph={"n": 8}),
            RunSpec(algorithm="faster", family="ring", graph={"n": 8}, seed=42),
        ]
        seeded = assign_seeds(specs, root_seed=0)
        assert seeded[0].seed == derive_seed(0, 0)
        assert seeded[1].seed == 42
        assert specs[0].seed is None  # originals untouched

    def test_root_seed_same_results_any_executor(self):
        specs = [
            RunSpec(algorithm="faster", family="ring", graph={"n": 8},
                    placement="dispersed", k=3)
            for _ in range(4)
        ]
        serial = run_specs(specs, root_seed=0)
        parallel = run_specs(specs, executor=ParallelExecutor(workers=2), root_seed=0)
        assert serial == parallel
        assert run_specs(specs, root_seed=1) != serial  # the root actually matters


class TestExecutors:
    def test_parallel_matches_serial(self):
        specs = small_batch()
        serial = run_specs(specs, executor=SerialExecutor())
        parallel = run_specs(specs, executor=ParallelExecutor(workers=3, chunksize=1))
        assert serial == parallel

    def test_default_executor_is_serial(self):
        specs = small_batch()[:1]
        assert run_specs(specs) == run_specs(specs, executor=SerialExecutor())

    def test_progress_callback_fires_per_run(self):
        seen = []
        specs = small_batch()[:2]
        run_specs(specs, progress=lambda o, done, total: seen.append((done, total, o.ok)))
        assert seen == [(1, 2, True), (2, 2, True)]

    def test_parallel_progress_counts_all(self):
        seen = []
        run_specs(
            small_batch(),
            executor=ParallelExecutor(workers=2, chunksize=2),
            progress=lambda o, done, total: seen.append(done),
        )
        assert sorted(seen) == [1, 2, 3, 4]

    def test_empty_batch(self):
        assert run_specs([], executor=ParallelExecutor(workers=2)) == []

    def test_raising_progress_propagates_under_parallel(self):
        """A failing caller callback (e.g. cache disk-full) must surface,
        not be mistaken for a dead worker and trigger re-simulation."""

        def boom(outcome, done, total):
            raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            run_specs(small_batch(), executor=ParallelExecutor(workers=2, chunksize=1),
                      progress=boom)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)


@pytest.fixture
def violator():
    """A registered program that breaks the action protocol on purpose."""

    def violating_program(opts):
        def factory(ctx):
            def program():
                _obs = yield
                yield Action.move(9999)  # out-of-range port -> ProtocolViolation

            return program()

        return factory

    register_algorithm("test-violator", violating_program, uses_uxs=False)
    yield "test-violator"
    unregister_algorithm("test-violator")


class TestFailureIsolation:
    def bad_spec(self, name):
        return RunSpec(algorithm=name, family="ring", graph={"n": 8},
                       placement="dispersed", k=2, uses_uxs=False)

    def test_violation_does_not_kill_serial_batch(self, violator):
        specs = [small_batch()[0], self.bad_spec(violator), small_batch()[1]]
        result = execute(specs)
        assert [o.ok for o in result.outcomes] == [True, False, True]
        assert result.outcomes[1].error_type == "ProtocolViolation"
        assert result.stats.failures == 1
        with pytest.raises(RunFailure):
            result.records()

    def test_violation_does_not_kill_parallel_batch(self, violator):
        specs = [small_batch()[0], self.bad_spec(violator), small_batch()[1]]
        result = execute(specs, executor=ParallelExecutor(workers=2, chunksize=1))
        assert [o.ok for o in result.outcomes] == [True, False, True]
        assert result.outcomes[1].error_type == "ProtocolViolation"

    def test_dead_worker_process_poisons_only_its_own_spec(self):
        """An OOM-killed/segfaulted worker breaks the whole pool; healthy
        specs must be retried in fresh pools, not reported as failed."""
        import os

        def killer_program(opts):
            def factory(ctx):
                def program():
                    _obs = yield
                    os._exit(13)  # simulate the kernel killing the worker

                return program()

            return factory

        register_algorithm("test-worker-killer", killer_program, uses_uxs=False)
        try:
            specs = [small_batch()[0], self.bad_spec("test-worker-killer"),
                     small_batch()[1], small_batch()[2]]
            result = execute(specs, executor=ParallelExecutor(workers=2, chunksize=1))
            assert [o.ok for o in result.outcomes] == [True, False, True, True]
            assert "BrokenProcessPool" in (result.outcomes[1].error_type or "")
            # and the healthy records are the real ones, not error stubs
            serial = execute([specs[0], specs[2], specs[3]])
            assert [result.outcomes[i].run for i in (0, 2, 3)] == serial.records()
        finally:
            unregister_algorithm("test-worker-killer")


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = small_batch()
        first = execute(specs, cache=cache)
        assert first.stats.executed == len(specs)
        assert first.stats.cache_hits == 0
        assert len(cache) == len(specs)

        second = execute(specs, cache=cache)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(specs)
        assert all(o.cached for o in second.outcomes)
        assert first.records() == second.records()

    def test_cache_is_spec_sensitive(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_batch()[0]
        execute([spec], cache=cache)
        from dataclasses import replace

        changed = replace(spec, placement_args={"seed": 2})
        result = execute([changed], cache=cache)
        assert result.stats.executed == 1  # different spec, no false hit

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_batch()[0]
        execute([spec], cache=cache)
        path = cache._path(cache.key_for(spec))
        path.write_text("{ not json")
        rerun = execute([spec], cache=cache)
        assert rerun.stats.executed == 1
        # and the entry healed
        assert execute([spec], cache=cache).stats.cache_hits == 1

    def test_failures_are_not_cached(self, tmp_path, violator):
        cache = ResultCache(tmp_path)
        bad = RunSpec(algorithm=violator, family="ring", graph={"n": 8},
                      placement="dispersed", k=2, uses_uxs=False)
        assert execute([bad], cache=cache).stats.failures == 1
        assert len(cache) == 0
        assert execute([bad], cache=cache).stats.executed == 1  # retried, not replayed

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute(small_batch()[:2], cache=cache)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_interrupted_batch_keeps_completed_results(self, tmp_path):
        """Write-through: results land in the cache as they complete, so an
        interrupt mid-batch does not discard finished simulations."""
        cache = ResultCache(tmp_path)
        specs = small_batch()[:3]

        def interrupt_after_two(outcome, done, total):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute(specs, cache=cache, progress=interrupt_after_two)
        assert len(cache) == 2
        resumed = execute(specs, cache=cache)
        assert resumed.stats.cache_hits == 2
        assert resumed.stats.executed == 1


class TestSweepIntegration:
    def test_sweeps_identical_serial_vs_parallel(self):
        from repro.analysis import sweeps

        serial = sweeps.regime_sweep(ns=(9,))
        parallel = sweeps.regime_sweep(ns=(9,), executor=ParallelExecutor(workers=2))
        assert serial == parallel

    def test_report_identical_with_cache_and_workers(self, tmp_path):
        from repro.analysis.report import generate_report

        cache = ResultCache(tmp_path)
        cold = generate_report(quick=True, cache=cache)
        warm = generate_report(
            quick=True, executor=ParallelExecutor(workers=2), cache=cache
        )
        assert cold == warm
        assert cache.hits > 0

    def test_report_root_seed_changes_no_rows(self):
        """Canned sweeps pin their seeds: root_seed is cache identity only."""
        from repro.analysis.report import generate_report

        assert generate_report(quick=True) == generate_report(quick=True, root_seed=0)


class TestCliRuntimeFlags:
    def test_sweep_workers_identical_rows(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--ns", "8", "10", "--k", "3", "--seed", "0"]) == 0
        baseline = capsys.readouterr().out
        assert main(["sweep", "--ns", "8", "10", "--k", "3", "--seed", "0",
                     "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert baseline in parallel  # same table + slope, plus the runtime line
        assert "2 executed, 0 cached" in parallel

    def test_sweep_second_invocation_fully_cached(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "--ns", "8", "10", "--k", "3", "--seed", "0",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 cached" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 cached" in second
        assert first == second.replace("0 executed, 2 cached", "2 executed, 0 cached")

    def test_run_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["run", "--family", "ring", "--n", "10", "--k", "6",
                "--placement", "scatter", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "1 executed, 0 cached" in capsys.readouterr().out
        assert main(argv) == 0
        assert "0 executed, 1 cached" in capsys.readouterr().out


class TestGraphMemoization:
    """Per-process graph/CSR memo behind ``materialize`` (graph_cache)."""

    def setup_method(self):
        from repro.runtime import graph_cache

        graph_cache.clear()

    def test_same_key_returns_shared_instance(self):
        from repro.runtime import graph_cache

        g1 = graph_cache.graph_for("ring", {"n": 12})
        g2 = graph_cache.graph_for("ring", {"n": 12})
        assert g1 is g2
        info = graph_cache.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_distinct_params_distinct_graphs(self):
        from repro.runtime import graph_cache

        g1 = graph_cache.graph_for("ring", {"n": 12})
        g2 = graph_cache.graph_for("ring", {"n": 14})
        assert g1 is not g2 and g1.n != g2.n

    def test_disabled_context_builds_fresh(self):
        from repro.runtime import graph_cache

        g1 = graph_cache.graph_for("ring", {"n": 12})
        with graph_cache.disabled():
            g2 = graph_cache.graph_for("ring", {"n": 12})
        assert g1 is not g2

    def test_materialize_uses_memo_and_results_unchanged(self):
        from repro.runtime import graph_cache
        from repro.runtime.spec import materialize

        spec = RunSpec("undispersed", "ring", {"n": 10},
                       placement="undispersed", k=3, seed=5, uses_uxs=False)
        g1, starts1, labels1, _ = materialize(spec)
        g2, starts2, labels2, _ = materialize(spec)
        assert g1 is g2  # shared build
        assert (starts1, labels1) == (starts2, labels2)
        assert graph_cache.cache_info()["hits"] >= 1
        # executing against the memoized graph is bit-identical to a cold build
        hot = execute_spec(spec).run
        with graph_cache.disabled():
            cold = execute_spec(spec).run
        assert hot.to_dict() == cold.to_dict()

    def test_eviction_is_bounded(self):
        from repro.runtime import graph_cache

        for n in range(4, 4 + graph_cache.MAX_ENTRIES + 8):
            graph_cache.graph_for("ring", {"n": n})
        assert graph_cache.cache_info()["size"] <= graph_cache.MAX_ENTRIES


class TestChunkedCache:
    """Chunked result-record aggregation (``put_batch`` / ``cache_chunk``)."""

    def test_put_batch_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = small_batch()
        runs = [execute_spec(s).run_or_raise() for s in specs]
        assert cache.put_batch(zip(specs, runs)) == len(specs)
        # a single chunk file holds every record
        assert len(list((tmp_path / "chunks").glob("*.json"))) == 1
        assert len(cache) == len(specs)
        for spec, run in zip(specs, runs):
            assert spec in cache
            assert cache.get(spec).to_dict() == run.to_dict()

    def test_chunk_entries_survive_reopen(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = small_batch()
        runs = [execute_spec(s).run_or_raise() for s in specs]
        cache.put_batch(zip(specs, runs))
        reopened = ResultCache(tmp_path)
        assert execute(specs, cache=reopened).stats.cache_hits == len(specs)

    def test_execute_cache_chunk_writes_chunks_not_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = small_batch()
        result = execute(specs, cache=cache, cache_chunk=32)
        assert result.stats.executed == len(specs)
        per_key = list(tmp_path.glob("[0-9a-f][0-9a-f]/*.json"))
        chunks = list((tmp_path / "chunks").glob("*.json"))
        assert per_key == [] and len(chunks) == 1
        # second pass: fully cached from the chunk index
        again = execute(specs, cache=ResultCache(tmp_path), cache_chunk=32)
        assert again.stats.cache_hits == len(specs)

    def test_cache_chunk_flushes_every_n(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = small_batch()
        assert len(specs) >= 2
        execute(specs, cache=cache, cache_chunk=1)  # one chunk per record
        chunks = list((tmp_path / "chunks").glob("*.json"))
        assert len(chunks) == len(specs)

    def test_per_key_file_shadows_chunk_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_batch()[0]
        run = execute_spec(spec).run_or_raise()
        cache.put_batch([(spec, run)])
        cache.put(spec, run)  # re-executed write-through wins
        assert len(cache) == 1
        assert cache.get(spec).to_dict() == run.to_dict()

    def test_clear_removes_chunks(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = small_batch()
        runs = [execute_spec(s).run_or_raise() for s in specs]
        cache.put_batch(zip(specs, runs))
        assert cache.clear() == len(specs)
        assert len(ResultCache(tmp_path)) == 0

    def test_corrupt_chunk_is_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = small_batch()
        runs = [execute_spec(s).run_or_raise() for s in specs]
        cache.put_batch(zip(specs, runs))
        for chunk in (tmp_path / "chunks").glob("*.json"):
            chunk.write_text("{ truncated")
        reopened = ResultCache(tmp_path)
        assert reopened.get(specs[0]) is None  # miss, not an error
        assert reopened.misses == 1

    def test_put_batch_empty_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put_batch([]) == 0
        # no chunks directory materializes for an empty flush
        assert not (tmp_path / "chunks").exists()
        assert len(cache) == 0

    def test_put_batch_duplicate_specs_collapse_to_one_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_batch()[0]
        run = execute_spec(spec).run_or_raise()
        # the same spec twice in one batch: last record wins, one key stored
        assert cache.put_batch([(spec, run), (spec, run)]) == 1
        assert len(cache) == 1
        assert cache.get(spec).to_dict() == run.to_dict()

    def test_cache_dir_collision_across_writers(self, tmp_path):
        """Two cache handles on one directory (the parallel-worker shape).

        A record chunk-written by another handle *after* this handle's
        index loaded is found anyway: a miss rechecks the chunk
        directory's mtime signature and reloads a stale index.  Per-key
        write-through files are always visible to every handle, and a
        fresh handle sees the union of everything on disk.
        """
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        specs = small_batch()
        runs = [execute_spec(s).run_or_raise() for s in specs]
        a.put_batch(zip(specs[:2], runs[:2]))    # loads a's index first
        b.put_batch(zip(specs[2:], runs[2:]))
        b.put(specs[0], runs[0])                  # write-through collision
        # each writer serves its own chunk records
        assert a.get(specs[1]).to_dict() == runs[1].to_dict()
        assert b.get(specs[2]).to_dict() == runs[2].to_dict()
        # per-key write-through is visible across handles immediately
        assert a.get(specs[0]).to_dict() == runs[0].to_dict()
        # a's snapshot predates b's chunk: the miss detects the stale
        # index (chunk dir mtime moved) and refreshes into a hit
        assert a.get(specs[2]).to_dict() == runs[2].to_dict()
        # a fresh handle (the next sweep invocation) sees the union
        fresh = ResultCache(tmp_path)
        for spec, run in zip(specs, runs):
            assert fresh.get(spec).to_dict() == run.to_dict()
        assert len(fresh) == len(specs)

    def test_concurrent_workers_share_one_cache_dir(self, tmp_path):
        """A parallel chunked-cache batch against one directory: every
        record lands, and a fresh handle reads all of them back."""
        specs = small_batch()
        result = execute(
            specs,
            executor=ParallelExecutor(workers=2, chunksize=1),
            cache=ResultCache(tmp_path),
            cache_chunk=2,
        )
        assert result.stats.executed == len(specs)
        again = execute(specs, cache=ResultCache(tmp_path))
        assert again.stats.cache_hits == len(specs)


class TestGraphMemoEdges:
    """graph_cache edge cases: non-JSON params, counter reset, key shape."""

    def setup_method(self):
        from repro.runtime import graph_cache

        graph_cache.clear()

    def test_non_json_params_fall_back_to_fresh_builds(self, monkeypatch):
        from repro.graphs import generators as gg
        from repro.runtime import graph_cache

        def tolerant_ring(n, marker=None):
            return gg.ring(n)

        monkeypatch.setitem(gg.FAMILIES, "tolerant-ring", tolerant_ring)
        weird = {"n": 12, "marker": {1, 2}}  # a set defeats JSON keying
        with pytest.raises(TypeError):
            json.dumps(weird)
        g1 = graph_cache.graph_for("tolerant-ring", dict(weird))
        g2 = graph_cache.graph_for("tolerant-ring", dict(weird))
        # unkeyable params build fresh each time and never enter the memo
        assert g1.n == g2.n == 12 and g1 is not g2
        assert graph_cache.cache_info()["size"] == 0

    def test_clear_resets_counters(self):
        from repro.runtime import graph_cache

        graph_cache.graph_for("ring", {"n": 12})
        graph_cache.graph_for("ring", {"n": 12})
        graph_cache.clear()
        info = graph_cache.cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0}

    def test_param_order_does_not_split_keys(self):
        from repro.runtime import graph_cache

        g1 = graph_cache.graph_for("erdos_renyi", {"n": 9, "seed": 3})
        g2 = graph_cache.graph_for("erdos_renyi", {"seed": 3, "n": 9})
        assert g1 is g2
