"""Tests for ``Undispersed-Gathering`` (Theorem 8)."""

import pytest

from repro.core import bounds
from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg
from repro.analysis.placement import undispersed_placement
from tests.conftest import run_world, small_battery


class TestTheorem8:
    @pytest.mark.parametrize("idx", range(len(small_battery())))
    def test_gathering_with_detection_across_battery(self, idx, battery):
        g = battery[idx]
        starts = undispersed_placement(g, 4, seed=idx)
        labels = [3, 7, 12, 25]
        res = run_world(g, starts, labels, undispersed_gathering_program())
        assert res.gathered, f"not gathered on graph #{idx}"
        assert res.detected, f"detection failed on graph #{idx}"
        assert res.rounds <= bounds.undispersed_rounds(g.n) + 1

    def test_round_complexity_is_schedule_exact(self):
        """Termination is counter-based: rounds == R(n) regardless of graph."""
        for g in (gg.ring(8), gg.complete(8), gg.star(8)):
            starts = undispersed_placement(g, 3, seed=1)
            res = run_world(g, starts, [2, 5, 9], undispersed_gathering_program())
            assert res.rounds == bounds.undispersed_rounds(g.n) + 1

    def test_everyone_at_min_finders_node(self):
        """Lemma 7: the gathering node is the min-groupid finder's Phase-2
        start node."""
        g = gg.ring(10)
        # two groups: (2, 9) at node 0 and (4, 7) at node 5 -> min finder is 2
        res = run_world(g, [0, 0, 5, 5], [2, 9, 4, 7], undispersed_gathering_program())
        assert res.gathered and res.detected

    def test_all_robots_on_one_node_from_start(self):
        g = gg.erdos_renyi(9, seed=7)
        res = run_world(g, [4] * 5, [2, 3, 5, 8, 13], undispersed_gathering_program())
        assert res.gathered and res.detected

    def test_many_waiters(self):
        g = gg.grid(3, 4)
        starts = [0, 0] + list(range(1, 9))
        labels = list(range(2, 12))
        res = run_world(g, starts, labels, undispersed_gathering_program())
        assert res.gathered and res.detected

    def test_multiple_groups_and_waiters(self):
        g = gg.erdos_renyi(12, seed=3)
        starts = [0, 0, 5, 5, 5, 9, 2, 7]
        labels = [4, 11, 2, 8, 19, 3, 6, 14]
        res = run_world(g, starts, labels, undispersed_gathering_program())
        assert res.gathered and res.detected

    def test_k_greater_than_n(self):
        """k > n forces undispersed (pigeonhole) — always gatherable."""
        g = gg.ring(5)
        starts = [0, 1, 2, 3, 4, 0, 2]
        labels = [2, 3, 5, 7, 11, 13, 17]
        res = run_world(g, starts, labels, undispersed_gathering_program())
        assert res.gathered and res.detected


class TestDispersedInput:
    def test_dispersed_input_is_a_noop(self):
        """On a dispersed input all robots are waiters: nobody moves."""
        g = gg.ring(8)
        starts = [0, 3, 6]
        res = run_world(
            g, starts, [3, 5, 9], undispersed_gathering_program(terminate="if_not_alone")
        )
        assert not res.gathered
        assert res.positions == {3: 0, 5: 3, 9: 6}
        assert res.metrics.total_moves == 0

    def test_single_robot(self):
        g = gg.ring(6)
        res = run_world(g, [2], [7], undispersed_gathering_program())
        assert res.positions[7] == 2
        assert res.metrics.total_moves == 0


class TestStatsAndMemory:
    def test_finder_records_map_stats(self):
        g = gg.erdos_renyi(10, seed=2)
        starts = undispersed_placement(g, 3, seed=5)
        res = run_world(g, starts, [2, 5, 9], undispersed_gathering_program())
        finder_stats = [s for s in res.stats.values() if "map_nodes" in s]
        assert finder_stats
        st = finder_stats[0]
        assert st["map_nodes"] == g.n
        assert st["map_edges"] == g.m
        assert st["phase1_rounds_used"] <= bounds.phase1_rounds(g.n)

    def test_memory_claim_shape(self):
        """O(m log n): denser graph => more map memory."""
        sparse = gg.ring(8)
        dense = gg.complete(8)
        mems = {}
        for name, g in (("sparse", sparse), ("dense", dense)):
            starts = undispersed_placement(g, 3, seed=1)
            res = run_world(g, starts, [2, 5, 9], undispersed_gathering_program())
            mems[name] = max(
                s.get("map_memory_bits", 0) for s in res.stats.values()
            )
        assert mems["dense"] > mems["sparse"]


class TestPortNumberingRobustness:
    @pytest.mark.parametrize("numbering", ["canonical", "random", "reversed", "rotated"])
    def test_gathering_under_any_numbering(self, numbering):
        g = gg.erdos_renyi(9, seed=4, numbering=numbering)
        starts = undispersed_placement(g, 4, seed=2)
        res = run_world(g, starts, [2, 6, 9, 15], undispersed_gathering_program())
        assert res.gathered and res.detected
