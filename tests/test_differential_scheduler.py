"""Differential testing: the optimized scheduler vs a naive reference.

The scheduler's idle fast-forwarding, wake bookkeeping and follow
resolution are the most intricate code in the simulator.  This module
re-implements the round semantics *naively* (no skipping, no statuses —
a straight per-round interpreter over scripted robots) and checks, over
hypothesis-generated random scripts, that both implementations produce
identical position histories and wake timings.

Scripts are sequences of primitive steps::

    ("move", port_index)     move through (port_index mod degree)
    ("stay",)                stay put
    ("sleep", d)             sleep d rounds (no meet wake)
    ("sleep_meet", d)        sleep d rounds, wake early on arrivals

Follows are covered separately with deterministic cases (their semantics
are defined relative to the leader's same-round resolution, which the
hand-written scheduler tests in `test_scheduler.py` pin down).
"""

from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gg
from repro.sim.actions import Action
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler
from tests.conftest import scaled_examples

# ---------------------------------------------------------------------------
# The reference interpreter
# ---------------------------------------------------------------------------


def reference_run(graph, starts, scripts):
    """Naive per-round execution of scripted robots.

    Returns (positions_by_round, wake_rounds) where positions_by_round[r]
    is the tuple of robot positions at the *end* of round r, and
    wake_rounds[i] lists the rounds at which robot i consumed a script step
    (i.e. was active).
    """
    k = len(starts)
    pos = list(starts)
    ptr = [0] * k  # next script step
    sleep_until = [0] * k  # first round the robot is active again
    meet_wake = [False] * k
    positions_by_round = []
    active_rounds = [[] for _ in range(k)]

    round_ = 0
    while any(ptr[i] < len(scripts[i]) for i in range(k)):
        moves = {}
        for i in range(k):
            if ptr[i] >= len(scripts[i]) or round_ < sleep_until[i]:
                continue
            step = scripts[i][ptr[i]]
            ptr[i] += 1
            active_rounds[i].append(round_)
            meet_wake[i] = False
            kind = step[0]
            if kind == "move":
                moves[i] = step[1] % graph.degree(pos[i])
            elif kind == "sleep":
                sleep_until[i] = round_ + 1 + step[1]
            elif kind == "sleep_meet":
                sleep_until[i] = round_ + 1 + step[1]
                meet_wake[i] = True
            # "stay": nothing
        arrivals = set()
        for i, port in moves.items():
            pos[i], _entry = graph.traverse(pos[i], port)
            arrivals.add(pos[i])
        for i in range(k):
            if (
                round_ < sleep_until[i]
                and meet_wake[i]
                and pos[i] in arrivals
            ):
                sleep_until[i] = round_ + 1  # wake next round
                meet_wake[i] = False
        positions_by_round.append(tuple(pos))
        round_ += 1
        if round_ > 10_000:  # pragma: no cover - scripts are short
            raise RuntimeError("reference runaway")
    return positions_by_round, active_rounds


def scripted_factory(script):
    def factory(ctx):
        def program(ctx=ctx):
            obs = yield
            for step in script:
                kind = step[0]
                if kind == "move":
                    obs = yield Action.move(step[1] % obs.degree)
                elif kind == "stay":
                    obs = yield Action.stay()
                elif kind == "sleep":
                    obs = yield Action.sleep(obs.round + 1 + step[1])
                elif kind == "sleep_meet":
                    target = obs.round + 1 + step[1]
                    obs = yield Action.sleep(target, wake_on_meet=True)
            yield Action.terminate()

        return program(ctx)

    return factory


def optimized_run(graph, starts, scripts):
    labels = list(range(1, len(starts) + 1))
    specs = [
        RobotSpec(label=l, start=s, factory=scripted_factory(sc))
        for l, s, sc in zip(labels, starts, scripts)
    ]
    sched = Scheduler(graph, specs)
    history = {}

    # record positions after each executed round (fast-forwarded rounds keep
    # previous positions); positions() is the sanctioned mid-run query —
    # RobotState attributes sync only at run boundaries under the SoA engine
    while not sched.all_terminated():
        sched._step()
        pos = sched.positions()
        history[sched.round - 1] = tuple(pos[l] for l in labels)
    return history, sched


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
step_strategy = st.one_of(
    st.tuples(st.just("move"), st.integers(0, 7)),
    st.tuples(st.just("stay")),
    st.tuples(st.just("sleep"), st.integers(0, 12)),
    st.tuples(st.just("sleep_meet"), st.integers(0, 12)),
)

script_strategy = st.lists(step_strategy, min_size=1, max_size=12)


@given(
    st.integers(0, 3),
    st.lists(script_strategy, min_size=1, max_size=4),
    st.data(),
)
@settings(max_examples=scaled_examples(120), deadline=None)
def test_scheduler_matches_reference(graph_pick, scripts, data):
    graph = [gg.ring(6), gg.path(5), gg.star(6), gg.erdos_renyi(7, seed=3)][graph_pick]
    k = len(scripts)
    starts = [
        data.draw(st.integers(0, graph.n - 1), label=f"start{i}") for i in range(k)
    ]

    ref_positions, _ref_active = reference_run(graph, starts, scripts)
    opt_history, sched = optimized_run(graph, starts, scripts)

    # Every round the reference records must agree with the optimized run;
    # rounds skipped by fast-forward carry the previous positions.
    last = tuple(starts)
    for r, ref_pos in enumerate(ref_positions):
        if r in opt_history:
            last = opt_history[r]
        assert last == ref_pos, f"divergence at round {r}"

    # Both agree on total simulated duration (+1 for the terminate round).
    assert sched.round >= len(ref_positions)
