"""Tests for graph JSON serialization."""

import json

import pytest

from repro.graphs import generators as gg
from repro.graphs.io import dumps, load, loads, save
from repro.graphs.port_graph import PortGraphError


class TestRoundtrip:
    @pytest.mark.parametrize(
        "graph",
        [gg.ring(7), gg.star(6), gg.grid(3, 3), gg.erdos_renyi(10, seed=4),
         gg.ring(7, numbering="random", seed=9)],
        ids=["ring", "star", "grid", "er", "ring-rand"],
    )
    def test_string_roundtrip(self, graph):
        assert loads(dumps(graph)) == graph

    def test_file_roundtrip(self, tmp_path):
        g = gg.lollipop(8)
        path = tmp_path / "g.json"
        save(g, path)
        assert load(path) == g

    def test_ports_preserved_exactly(self):
        g = gg.erdos_renyi(9, seed=2, numbering="random")
        g2 = loads(dumps(g))
        for v in g.nodes():
            for p in g.ports(v):
                assert g2.traverse(v, p) == g.traverse(v, p)

    def test_indent_option(self):
        text = dumps(gg.ring(5), indent=2)
        assert "\n" in text


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-port-graph"):
            loads(json.dumps({"format": "something-else", "version": 1}))

    def test_wrong_version_rejected(self):
        doc = json.loads(dumps(gg.ring(5)))
        doc["version"] = 99
        with pytest.raises(ValueError, match="unsupported version"):
            loads(json.dumps(doc))

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            loads(json.dumps({"format": "repro-port-graph", "version": 1}))

    def test_invalid_graph_rejected(self):
        doc = {
            "format": "repro-port-graph",
            "version": 1,
            "n": 2,
            "edges": [[0, 0, 0, 1]],  # self loop
        }
        with pytest.raises(PortGraphError):
            loads(json.dumps(doc))
