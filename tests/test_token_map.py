"""Integration tests for the token-based map construction (Phase 1).

These run real finder/helper pairs in the simulator and validate the maps
against the ground truth up to port-preserving isomorphism, plus the O(n^3)
budget from :func:`repro.core.bounds.phase1_rounds`.
"""

import pytest

from repro.core import bounds
from repro.graphs import generators as gg
from repro.graphs.isomorphism import is_isomorphic
from repro.mapping.partial_map import RobotMap
from repro.mapping.token_map import build_map_with_token
from repro.sim.actions import Action
from repro.sim.robot import RobotSpec
from repro.sim.world import World


BUILT_MAPS = {}


def map_probe_program(result_sink):
    """A finder-like program that builds the map, stores it, terminates."""

    def factory(ctx):
        def program(ctx=ctx):
            obs = yield
            labels = sorted(c["id"] for c in obs.cards)
            me = ctx.label
            gid = labels[0]
            if me == gid:
                card = {"state": "finder", "groupid": gid, "tok": "follow", "following": None}
                obs = yield Action.stay(card=card)
                obs, rmap, here = yield from build_map_with_token(
                    ctx, obs, gid, lambda tok: {
                        "state": "finder", "groupid": gid, "tok": tok, "following": None
                    },
                )
                result_sink["map"] = rmap
                result_sink["rounds"] = obs.round
                result_sink["here"] = here
                obs = yield Action.stay(
                    card={"state": "finder", "groupid": gid, "tok": "done", "following": None}
                )
                yield Action.terminate()
            else:
                # helper: phase-1 token behaviour until the finder says done
                obs = yield Action.stay(
                    card={"state": "helper", "groupid": gid, "tok": "-", "following": None}
                )
                while True:
                    fc = next((c for c in obs.cards if c.get("id") == gid), None)
                    if fc is None:
                        obs = yield Action.sleep(None, wake_on_meet=True)
                    elif fc.get("tok") == "follow":
                        obs = yield Action.follow_once(gid)
                    elif fc.get("tok") == "done":
                        yield Action.terminate()
                        return
                    else:  # hold / park
                        obs = yield Action.stay()

        return program(ctx)

    return factory


GRAPHS = [
    ("ring", gg.ring(8)),
    ("path", gg.path(7)),
    ("star", gg.star(7)),
    ("grid", gg.grid(3, 3)),
    ("complete", gg.complete(6)),
    ("lollipop", gg.lollipop(8)),
    ("btree", gg.binary_tree(7)),
    ("er", gg.erdos_renyi(10, seed=6)),
    ("regular", gg.random_regular(8, 3, seed=2)),
    ("ring-random-ports", gg.ring(8, numbering="random", seed=3)),
    ("er-random-ports", gg.erdos_renyi(10, seed=6, numbering="random")),
]


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
@pytest.mark.parametrize("start", [0, "mid"])
def test_map_isomorphic_and_within_budget(name, graph, start):
    node = 0 if start == 0 else graph.n // 2
    sink = {}
    specs = [
        RobotSpec(label=2, start=node, factory=map_probe_program(sink)),
        RobotSpec(label=9, start=node, factory=map_probe_program(sink)),
    ]
    World(graph, specs, strict=True).run(max_rounds=bounds.phase1_rounds(graph.n) + 10)
    rmap: RobotMap = sink["map"]
    assert rmap.complete()
    assert rmap.num_nodes == graph.n
    assert rmap.num_resolved_edges == graph.m
    assert is_isomorphic(rmap.to_port_graph(), graph)
    assert sink["rounds"] <= bounds.phase1_rounds(graph.n)


def test_two_concurrent_finder_pairs_do_not_interfere():
    graph = gg.erdos_renyi(10, seed=8)
    sink_a, sink_b = {}, {}
    specs = [
        RobotSpec(label=2, start=0, factory=map_probe_program(sink_a)),
        RobotSpec(label=9, start=0, factory=map_probe_program(sink_a)),
        RobotSpec(label=3, start=5, factory=map_probe_program(sink_b)),
        RobotSpec(label=8, start=5, factory=map_probe_program(sink_b)),
    ]
    World(graph, specs, strict=True).run(max_rounds=bounds.phase1_rounds(graph.n) + 10)
    for sink in (sink_a, sink_b):
        assert is_isomorphic(sink["map"].to_port_graph(), graph)


def test_single_node_graph_trivial_map():
    from repro.graphs.port_graph import PortGraph

    # n=1 handled by the undispersed program's special case; build_map on a
    # 1-node graph returns an empty-frontier map immediately.
    g = PortGraph(1, [])
    sink = {}
    # run through a tiny driver instead of World (graph n=1, two robots)
    specs = [
        RobotSpec(label=2, start=0, factory=map_probe_program(sink)),
        RobotSpec(label=9, start=0, factory=map_probe_program(sink)),
    ]
    World(g, specs, strict=True).run(max_rounds=100)
    assert sink["map"].num_nodes == 1


def test_multiple_helpers_one_token():
    """Three helpers all act as the token; the map must still be exact."""
    graph = gg.grid(3, 3)
    sink = {}
    specs = [
        RobotSpec(label=2, start=4, factory=map_probe_program(sink)),
        RobotSpec(label=5, start=4, factory=map_probe_program(sink)),
        RobotSpec(label=7, start=4, factory=map_probe_program(sink)),
        RobotSpec(label=9, start=4, factory=map_probe_program(sink)),
    ]
    World(graph, specs, strict=True).run(max_rounds=bounds.phase1_rounds(graph.n) + 10)
    assert is_isomorphic(sink["map"].to_port_graph(), graph)
