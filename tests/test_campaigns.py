"""Campaign layer: manifests, the lease protocol, workers, and the CLI.

The crash-safety *proofs* (SIGKILL, torn files, orphaned leases) live in
tests/test_chaos.py; this file covers the sunny-day contracts the chaos
tests rely on.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.campaigns import (
    CampaignManifest,
    LeaseManager,
    campaigns_dir,
    default_owner,
    list_manifests,
    load_manifest,
    manifest_path,
    resolve_campaign_id,
    run_campaign,
    run_worker,
    save_manifest,
    status_of,
)
from repro.cli import main
from repro.runtime import ResultCache, RunSpec, SerialExecutor


def grid(ns=(6, 8), seed=0):
    return [
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": n},
            placement="scatter",
            k=3,
            placement_args={"seed": seed},
            labels_args={"seed": seed},
        )
        for n in ns
    ]


class TestManifest:
    def test_id_ignores_order_and_duplicates(self):
        specs = grid((6, 8, 10))
        a = CampaignManifest.from_specs(specs)
        b = CampaignManifest.from_specs(list(reversed(specs)) + specs[:1])
        assert a.campaign_id == b.campaign_id
        assert len(b.cells) == 3  # duplicates collapse

    def test_id_differs_for_different_grids(self):
        assert (
            CampaignManifest.from_specs(grid((6, 8))).campaign_id
            != CampaignManifest.from_specs(grid((6, 10))).campaign_id
        )

    def test_round_trips_through_disk(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid(), meta={"title": "rt"})
        path = save_manifest(manifest, tmp_path)
        assert path == manifest_path(tmp_path, manifest.campaign_id)
        loaded = load_manifest(tmp_path, manifest.campaign_id)
        assert loaded.campaign_id == manifest.campaign_id
        assert loaded.meta == {"title": "rt"}
        assert [c.key for c in loaded.cells] == [c.key for c in manifest.cells]
        assert loaded.specs() == manifest.specs()

    def test_save_is_write_once(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid(), meta={"title": "first"})
        save_manifest(manifest, tmp_path)
        again = CampaignManifest.from_specs(grid(), meta={"title": "second"})
        save_manifest(again, tmp_path)
        assert load_manifest(tmp_path, manifest.campaign_id).meta == {"title": "first"}

    def test_tampered_manifest_is_rejected(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid())
        path = save_manifest(manifest, tmp_path)
        payload = json.loads(path.read_text())
        payload["cells"][0]["spec"]["spec"]["k"] = 99  # spec no longer hashes to its key
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_manifest(tmp_path, manifest.campaign_id)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path, "0" * 64)

    def test_prefix_resolution(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid())
        save_manifest(manifest, tmp_path)
        assert resolve_campaign_id(tmp_path, manifest.campaign_id[:8]) == manifest.campaign_id
        assert list_manifests(tmp_path) == [manifest.campaign_id]
        with pytest.raises(ValueError):
            resolve_campaign_id(tmp_path, "zzzz")

    def test_ambiguous_prefix_raises(self, tmp_path):
        a = CampaignManifest.from_specs(grid((6, 8)))
        b = CampaignManifest.from_specs(grid((6, 10)))
        save_manifest(a, tmp_path)
        save_manifest(b, tmp_path)
        with pytest.raises(ValueError):
            resolve_campaign_id(tmp_path, "")  # matches both


class TestLeases:
    def test_claim_release_cycle(self, tmp_path):
        leases = LeaseManager(tmp_path, "c1")
        lease = leases.try_claim("k1")
        assert lease is not None and lease.path.exists()
        assert leases.held_keys() == ["k1"]
        leases.release(lease)
        assert not lease.path.exists()

    def test_contention_is_counted(self, tmp_path):
        first = LeaseManager(tmp_path, "c1")
        second = LeaseManager(tmp_path, "c1")
        assert first.try_claim("k1") is not None
        assert second.try_claim("k1") is None
        assert second.contended == 1
        assert first.reclaimed == second.reclaimed == 0

    def test_stale_lease_is_reclaimed(self, tmp_path):
        dead = LeaseManager(tmp_path, "c1", owner="dead:1:aa")
        lease = dead.try_claim("k1")
        old = time.time() - 1000
        os.utime(lease.path, (old, old))

        alive = LeaseManager(tmp_path, "c1", timeout=1.0)
        taken = alive.try_claim("k1")
        assert taken is not None
        assert alive.reclaimed == 1
        assert json.loads(taken.path.read_text())["owner"] == alive.owner

    def test_heartbeat_keeps_a_lease_fresh(self, tmp_path):
        holder = LeaseManager(tmp_path, "c1")
        lease = holder.try_claim("k1")
        old = time.time() - 1000
        os.utime(lease.path, (old, old))
        assert lease.heartbeat()

        rival = LeaseManager(tmp_path, "c1", timeout=500.0)
        assert rival.try_claim("k1") is None

    def test_sweep_orphans(self, tmp_path):
        leases = LeaseManager(tmp_path, "c1")
        done = leases.try_claim("done-key")
        live = leases.try_claim("live-key")
        leases.sweep_orphans(["done-key"])
        assert not done.path.exists()
        assert live.path.exists()

    def test_default_owner_is_unique_per_call(self):
        assert default_owner() != default_owner()

    def test_campaigns_are_isolated(self, tmp_path):
        a = LeaseManager(tmp_path, "c1")
        b = LeaseManager(tmp_path, "c2")
        assert a.try_claim("k1") is not None
        assert b.try_claim("k1") is not None  # same key, different campaign


class TestWorker:
    def test_single_worker_matches_serial_execution(self, tmp_path):
        specs = grid((6, 8, 10))
        manifest = CampaignManifest.from_specs(specs)
        cache = ResultCache(tmp_path)

        stats = run_worker(manifest, cache)
        assert stats.executed == 3 and stats.failures == 0

        clean = SerialExecutor().run(manifest.specs())
        for outcome in clean:
            assert cache.get(outcome.spec).to_dict() == outcome.run.to_dict()

    def test_completed_campaign_resumes_with_zero_executions(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid())
        cache = ResultCache(tmp_path)
        run_worker(manifest, cache)

        again = run_worker(manifest, cache)
        assert again.executed == 0
        assert again.cache_hits == len(manifest.cells)

    def test_two_inprocess_workers_split_the_grid(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid((6, 8, 10, 12)))
        cache = ResultCache(tmp_path)
        a = run_worker(manifest, cache, owner="a:1:aa", idle_timeout=0.1)
        b = run_worker(manifest, ResultCache(tmp_path), owner="b:2:bb", idle_timeout=0.1)
        assert a.executed == 4 and b.executed == 0
        assert b.cache_hits == 4
        assert status_of(manifest, tmp_path).complete

    def test_multiprocess_campaign_completes(self, tmp_path):
        manifest = CampaignManifest.from_specs(grid((6, 8, 10)))
        stats = run_campaign(manifest, tmp_path, workers=2, idle_timeout=2)
        assert status_of(manifest, tmp_path).complete
        assert stats.executed == 3 and stats.failures == 0
        # Manifest was persisted by run_campaign itself.
        assert list_manifests(tmp_path) == [manifest.campaign_id]

    def test_status_counts(self, tmp_path):
        specs = grid((6, 8, 10))
        manifest = CampaignManifest.from_specs(specs)
        cache = ResultCache(tmp_path)
        status = status_of(manifest, tmp_path)
        assert (status.total, status.done, status.pending) == (3, 0, 3)
        assert not status.complete

        run_worker(manifest, cache)
        status = status_of(manifest, tmp_path)
        assert (status.done, status.claimed, status.pending) == (3, 0, 0)
        assert status.complete
        assert "3/3 done" in status.summary()


class TestCampaignCli:
    def create(self, tmp_path, capsys, *extra):
        rc = main(["campaign", "create", "--ns", "6", "8", "--k", "3",
                   "--cache-dir", str(tmp_path), "--quiet", *extra])
        assert rc == 0
        return capsys.readouterr().out.strip()

    def test_create_run_status_resume(self, tmp_path, capsys):
        cid = self.create(tmp_path, capsys)
        assert len(cid) == 64

        rc = main(["campaign", "run", "--campaign", cid[:10],
                   "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2/2 done" in out and "2 executed" in out

        rc = main(["campaign", "status", "--campaign", cid,
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "2/2 done" in capsys.readouterr().out

        rc = main(["campaign", "resume", "--campaign", cid,
                   "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 executed" in out and "2 cached" in out

    def test_create_is_idempotent(self, tmp_path, capsys):
        assert self.create(tmp_path, capsys) == self.create(tmp_path, capsys)
        assert len(list(campaigns_dir(tmp_path).glob("*.json"))) == 1

    def test_create_without_cache_dir_fails(self):
        with pytest.raises(SystemExit):
            main(["campaign", "create", "--ns", "6"])

    def test_unknown_campaign_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "run", "--campaign", "ffff", "--cache-dir", str(tmp_path)])

    def test_status_lists_all_campaigns(self, tmp_path, capsys):
        self.create(tmp_path, capsys, "--title", "listed")
        rc = main(["campaign", "status", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "listed" in out and "1 campaigns" in out

    def test_scenario_create_rejects_shape_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "create", "--scenario", "clean-sync", "--n", "20",
                  "--cache-dir", str(tmp_path)])

    def test_scenario_campaign_feeds_scenarios_run(self, tmp_path, capsys):
        """A scenario campaign's results are the same cache entries
        ``scenarios run`` wants: running the scenario afterwards is all hits."""
        rc = main(["campaign", "create", "--scenario", "clean-sync",
                   "--cache-dir", str(tmp_path), "--quiet"])
        assert rc == 0
        cid = capsys.readouterr().out.strip()
        assert main(["campaign", "run", "--campaign", cid,
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()

        rc = main(["scenarios", "run", "clean-sync", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 executed" not in out or "cached" in out

    def test_sweep_resume_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--ns", "6", "--resume"])

    def test_sweep_resume_reports_swept_droppings(self, tmp_path, capsys):
        from repro.testing.chaos import plant_stale_tmp

        cache = ResultCache(tmp_path)
        plant_stale_tmp(cache, count=2)
        rc = main(["sweep", "--ns", "6", "--k", "3",
                   "--cache-dir", str(tmp_path), "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 tmp swept" in out
