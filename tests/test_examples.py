"""Smoke tests: every example script must run to completion.

The examples are documentation; a broken example is a broken deliverable.
Each `main()` is imported and executed (stdout captured by pytest).
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)  # type: ignore[union-attr]
    return mod


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    mod = load_module(path)
    assert hasattr(mod, "main"), f"{path.name} must expose main()"
    mod.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "warehouse_recall", "maze_rendezvous", "detection_matters"} <= names
