"""Tests for the known-k detection ablation."""

import pytest

from repro.core.known_k import known_k_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from repro.analysis.placement import assign_labels, dispersed_random
from tests.conftest import run_world


class TestCorrectness:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_gathers_and_detects(self, k):
        g = gg.ring(9)
        starts = dispersed_random(g, k, seed=k)
        labels = assign_labels(k, 9, seed=k)
        res = run_world(g, starts, labels, known_k_gathering_program(k))
        assert res.gathered and res.detected

    @pytest.mark.parametrize(
        "graph", [gg.path(8), gg.star(8), gg.erdos_renyi(10, seed=3),
                  gg.grid(3, 3, numbering="random", seed=4)],
        ids=["path", "star", "er", "grid-rand"],
    )
    def test_across_families(self, graph):
        starts = dispersed_random(graph, 3, seed=9)
        labels = assign_labels(3, graph.n, seed=9)
        res = run_world(graph, starts, labels, known_k_gathering_program(3))
        assert res.gathered and res.detected

    def test_k1_trivial(self):
        g = gg.ring(6)
        res = run_world(g, [2], [5], known_k_gathering_program(1))
        assert res.gathered and res.detected
        assert res.rounds <= 1

    def test_colocated_start(self):
        g = gg.ring(6)
        res = run_world(g, [0, 0, 3], [3, 9, 5], known_k_gathering_program(3))
        assert res.gathered and res.detected

    def test_simultaneous_termination(self):
        g = gg.ring(8)
        starts = dispersed_random(g, 3, seed=2)
        labels = assign_labels(3, 8, seed=2)
        res = run_world(g, starts, labels, known_k_gathering_program(3))
        terms = {res.metrics.last_termination_round}
        assert res.detected and None not in terms

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            known_k_gathering_program(0)


class TestWhatKnowingKBuys:
    def test_detection_tail_shrinks(self):
        """Known k: terminate ~1 round after physically gathered.  Unknown k
        (the paper's setting): pay the silent-wait machinery."""
        g = gg.ring(9)
        starts = dispersed_random(g, 3, seed=7)
        labels = assign_labels(3, 9, seed=7)

        with_k = run_world(g, starts, labels, known_k_gathering_program(3))
        without = run_world(g, starts, labels, uxs_gathering_program())
        assert with_k.detected and without.detected

        tail_with = with_k.rounds - with_k.metrics.first_gather_round
        tail_without = without.rounds - without.metrics.first_gather_round
        assert tail_with <= 2
        assert tail_without > 50 * max(tail_with, 1)

    def test_total_rounds_much_smaller(self):
        g = gg.erdos_renyi(10, seed=5)
        starts = dispersed_random(g, 4, seed=6)
        labels = assign_labels(4, 10, seed=6)
        with_k = run_world(g, starts, labels, known_k_gathering_program(4))
        without = run_world(g, starts, labels, uxs_gathering_program())
        assert with_k.rounds < without.rounds
