"""Tests for the replay recorder and ASCII rendering."""

import pytest

from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg
from repro.sim.actions import Action
from repro.sim.replay import Frame, ReplayRecorder, render_strip
from repro.sim.robot import RobotSpec
from repro.sim.world import World


class TestRecorder:
    def test_records_changes_only(self):
        rec = ReplayRecorder()
        rec.snapshot(0, {1: 0})
        rec.snapshot(1, {1: 0})  # unchanged: skipped
        rec.snapshot(2, {1: 3})
        assert len(rec) == 2
        assert [f.round for f in rec] == [0, 2]

    def test_records_all_when_requested(self):
        rec = ReplayRecorder(changes_only=False)
        rec.snapshot(0, {1: 0})
        rec.snapshot(1, {1: 0})
        assert len(rec) == 2

    def test_subsampling_cap(self):
        rec = ReplayRecorder(max_frames=8)
        for r in range(100):
            rec.snapshot(r, {1: r % 5})
        assert len(rec) <= 9
        assert rec.dropped > 0

    def test_frame_as_dict(self):
        f = Frame(3, ((1, 0), (2, 5)))
        assert f.as_dict() == {1: 0, 2: 5}

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayRecorder(max_frames=1)


class TestIntegration:
    def test_world_snapshots_moves(self):
        def mover(ctx):
            obs = yield
            obs = yield Action.move(0)
            obs = yield Action.move(0)
            yield Action.terminate()

        rec = ReplayRecorder()
        World(gg.ring(6), [RobotSpec(1, 0, mover)]).run(replay=rec)
        assert len(rec) >= 2
        nodes = [f.as_dict()[1] for f in rec]
        assert nodes[0] != nodes[-1]

    def test_full_gathering_replay(self):
        rec = ReplayRecorder()
        specs = [
            RobotSpec(3, 0, undispersed_gathering_program()),
            RobotSpec(9, 0, undispersed_gathering_program()),
            RobotSpec(12, 4, undispersed_gathering_program()),
        ]
        res = World(gg.path(8), specs).run(replay=rec)
        assert res.gathered
        final = rec.frames[-1].as_dict()
        assert len(set(final.values())) == 1  # last frame is gathered


class TestRender:
    def test_render_shape(self):
        rec = ReplayRecorder()
        rec.snapshot(0, {1: 0, 2: 0, 3: 4})
        rec.snapshot(5, {1: 1, 2: 0, 3: 4})
        out = render_strip(rec, 6)
        lines = out.splitlines()
        assert "round" in lines[0]
        assert len(lines) == 4  # header + rule + 2 frames
        assert "2" in lines[2]  # two robots on node 0 initially

    def test_render_empty(self):
        assert "no frames" in render_strip(ReplayRecorder(), 5)

    def test_render_subsamples_rows(self):
        rec = ReplayRecorder()
        for r in range(200):
            rec.snapshot(r, {1: r % 7})
        out = render_strip(rec, 7, max_rows=10)
        assert len(out.splitlines()) <= 14

    def test_ten_plus_robots_star(self):
        rec = ReplayRecorder()
        rec.snapshot(0, {i: 0 for i in range(1, 12)})
        out = render_strip(rec, 3)
        assert "*" in out
