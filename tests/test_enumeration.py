"""Tests for exhaustive small-graph enumeration."""

import pytest

from repro.graphs.enumeration import (
    all_port_graphs,
    connected_edge_sets,
    count_port_graphs,
    port_numberings,
)


class TestEdgeSets:
    def test_n1(self):
        assert list(connected_edge_sets(1)) == [()]

    def test_n2(self):
        assert list(connected_edge_sets(2)) == [((0, 1),)]

    def test_n3_count(self):
        # connected graphs on 3 labeled nodes: 3 paths + 1 triangle
        assert len(list(connected_edge_sets(3))) == 4

    def test_n4_count(self):
        # connected labeled graphs on 4 nodes: 38 (classic OEIS A001187 term)
        assert len(list(connected_edge_sets(4))) == 38

    def test_all_connected(self):
        for pairs in connected_edge_sets(4):
            # spot check: spanning edge count
            assert len(pairs) >= 3


class TestPortNumberings:
    def test_path_numberings(self):
        # path 0-1-2: middle node has 2 orderings, ends 1 each -> 2 graphs
        graphs = list(port_numberings(3, ((0, 1), (1, 2))))
        assert len(graphs) == 2
        assert len(set(graphs)) == 2

    def test_triangle_numberings(self):
        graphs = list(port_numberings(3, ((0, 1), (0, 2), (1, 2))))
        assert len(graphs) == 8  # 2^3 orderings

    def test_all_valid(self):
        for g in port_numberings(3, ((0, 1), (0, 2), (1, 2))):
            for v in g.nodes():
                for p in g.ports(v):
                    u, q = g.traverse(v, p)
                    assert g.traverse(u, q) == (v, p)


class TestAllPortGraphs:
    def test_count_n2(self):
        assert count_port_graphs(2) == 1

    def test_count_n3(self):
        # 3 paths x 2 numberings + 1 triangle x 8 numberings = 14
        assert count_port_graphs(3) == 14

    def test_guard(self):
        with pytest.raises(ValueError, match="explosive"):
            list(all_port_graphs(5))

    def test_n4_all_connected_and_valid(self):
        count = 0
        for g in all_port_graphs(4):
            count += 1
            assert g.is_connected()
        assert count > 1000  # tens of thousands of port graphs exist
