"""Tests for the graph family generators."""

import pytest

from repro.graphs import generators as gg
from repro.graphs.traversal import diameter


ALL_FAMILIES = [
    ("ring", dict(n=8)),
    ("path", dict(n=8)),
    ("grid", dict(rows=3, cols=4)),
    ("torus", dict(rows=3, cols=4)),
    ("complete", dict(n=6)),
    ("star", dict(n=8)),
    ("binary_tree", dict(n=9)),
    ("caterpillar", dict(n=9)),
    ("random_tree", dict(n=9, seed=1)),
    ("erdos_renyi", dict(n=10, seed=2)),
    ("random_regular", dict(n=10, d=3, seed=3)),
    ("lollipop", dict(n=9)),
    ("barbell", dict(n=9)),
    ("hypercube", dict(dim=3)),
    ("cycle_with_chords", dict(n=10)),
]


@pytest.mark.parametrize("name,kwargs", ALL_FAMILIES)
def test_family_is_connected_and_valid(name, kwargs):
    g = gg.by_name(name, **kwargs)
    assert g.is_connected()
    # port involution sanity on every family
    for v in g.nodes():
        for p in g.ports(v):
            u, q = g.traverse(v, p)
            assert g.traverse(u, q) == (v, p)


@pytest.mark.parametrize("name,kwargs", ALL_FAMILIES)
def test_family_deterministic(name, kwargs):
    assert gg.by_name(name, **kwargs) == gg.by_name(name, **kwargs)


class TestShapes:
    def test_ring_is_2_regular(self):
        g = gg.ring(9)
        assert all(g.degree(v) == 2 for v in g.nodes())
        assert g.m == 9

    def test_path_endpoints(self):
        g = gg.path(6)
        degs = sorted(g.degree(v) for v in g.nodes())
        assert degs == [1, 1, 2, 2, 2, 2]

    def test_grid_dimensions(self):
        g = gg.grid(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols

    def test_torus_regular(self):
        g = gg.torus(3, 4)
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_complete_degrees(self):
        g = gg.complete(7)
        assert all(g.degree(v) == 6 for v in g.nodes())
        assert g.m == 21

    def test_star_shape(self):
        g = gg.star(8)
        assert g.degree(0) == 7
        assert all(g.degree(v) == 1 for v in range(1, 8))

    def test_binary_tree_is_tree(self):
        g = gg.binary_tree(10)
        assert g.m == 9

    def test_random_tree_is_tree(self):
        for seed in range(5):
            g = gg.random_tree(12, seed=seed)
            assert g.m == 11
            assert g.is_connected()

    def test_random_regular_degree(self):
        g = gg.random_regular(12, 3, seed=7)
        assert all(g.degree(v) == 3 for v in g.nodes())

    def test_hypercube(self):
        g = gg.hypercube(4)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert diameter(g) == 4

    def test_lollipop_has_high_and_low_degree(self):
        g = gg.lollipop(10)
        assert g.max_degree >= 4
        assert g.min_degree == 1

    def test_barbell_two_cliques(self):
        g = gg.barbell(12)
        assert g.is_connected()
        high = [v for v in g.nodes() if g.degree(v) >= 3]
        assert len(high) >= 6

    def test_cycle_with_chords_has_extra_edges(self):
        g = gg.cycle_with_chords(12, chords=2)
        assert g.m == 14

    def test_caterpillar_is_tree(self):
        g = gg.caterpillar(11)
        assert g.m == 10


class TestValidation:
    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            gg.ring(2)

    def test_path_too_small(self):
        with pytest.raises(ValueError):
            gg.path(1)

    def test_random_regular_odd_product(self):
        with pytest.raises(ValueError):
            gg.random_regular(7, 3)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            gg.by_name("nonsense", n=5)

    def test_erdos_renyi_connect_patchup(self):
        # p=0 forces the union-find patch-up to connect everything
        g = gg.erdos_renyi(10, p=0.0, seed=1)
        assert g.is_connected()
        assert g.m == 9
