"""Tests for the extensions: startup delays and crash faults.

These pin down *both* directions: the wrappers compose mechanically
(identity at delay 0, crash-after-gathering harmless) *and* the paper's
assumptions are genuinely load-bearing (asymmetric delays / early crashes
break detection in observable, flagged ways — never silently).
"""

import pytest

from repro.core import bounds
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.ext import FaultPlan, crash_at, delayed_start
from repro.graphs import generators as gg
from repro.runtime import RunSpec, execute_spec
from repro.sim.robot import RobotSpec
from repro.sim.world import World


def run(graph, specs, **kw):
    return World(graph, specs, strict=True).run(**kw)


class TestDelayedStart:
    def test_zero_delay_is_identity(self):
        g = gg.ring(8)
        base = [
            RobotSpec(3, 0, undispersed_gathering_program()),
            RobotSpec(9, 0, undispersed_gathering_program()),
        ]
        wrapped = [
            RobotSpec(3, 0, delayed_start(undispersed_gathering_program(), 0)),
            RobotSpec(9, 0, delayed_start(undispersed_gathering_program(), 0)),
        ]
        a = run(g, base)
        b = run(g, wrapped)
        assert a.rounds == b.rounds
        assert a.positions == b.positions

    def test_uniform_delay_shifts_schedule(self):
        """Everyone delayed by the same amount: still correct, just later."""
        g = gg.ring(8)
        delay = 37
        specs = [
            RobotSpec(3, 0, delayed_start(undispersed_gathering_program(), delay)),
            RobotSpec(9, 0, delayed_start(undispersed_gathering_program(), delay)),
            RobotSpec(12, 4, delayed_start(undispersed_gathering_program(), delay)),
        ]
        res = run(g, specs)
        assert res.gathered and res.detected
        assert res.rounds == bounds.undispersed_rounds(8) + delay + 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            delayed_start(undispersed_gathering_program(), -1)

    def test_asymmetric_delay_breaks_oblivious_schedule(self):
        """The paper's simultaneous-start assumption is load-bearing: with
        one robot delayed, the undispersed schedule desynchronizes and the
        run either mis-gathers or mis-detects — and the harness flags it."""
        g = gg.ring(8)
        # reference: where would the pair gather without the third robot?
        ref = run(g, [
            RobotSpec(3, 0, undispersed_gathering_program()),
            RobotSpec(9, 0, undispersed_gathering_program()),
        ])
        # a true bystander spot: neither the pair's node nor the gather node
        elsewhere = next(v for v in range(2, 8) if v not in (0, ref.final_node))
        specs = [
            RobotSpec(3, 0, undispersed_gathering_program()),
            RobotSpec(9, 0, undispersed_gathering_program()),
            # this waiter wakes after everyone else terminated
            RobotSpec(
                12, elsewhere,
                delayed_start(
                    undispersed_gathering_program(),
                    bounds.undispersed_rounds(8) + 5,
                ),
            ),
        ]
        res = run(g, specs)
        assert not res.gathered
        assert not res.detected  # broken, and *visibly* so

    def test_delay_composes_with_uxs(self):
        """A robot delayed by less than one exploration half is still found
        by a working explorer — UXS machinery is the delay-friendlier one
        (the paper's cited prior work tolerates delays for plain gathering)."""
        g = gg.ring(6)
        specs = [
            RobotSpec(3, 0, delayed_start(uxs_gathering_program(), 10)),
            RobotSpec(9, 3, uxs_gathering_program()),
        ]
        res = run(g, specs)
        # gathering itself must still happen (they meet during exploration)
        assert res.gathered


class TestCrashFaults:
    def test_crash_after_gathering_is_harmless(self):
        g = gg.ring(8)
        late = 10**9  # never reached: run ends first
        specs = [
            RobotSpec(3, 0, crash_at(undispersed_gathering_program(), late)),
            RobotSpec(9, 0, crash_at(undispersed_gathering_program(), late)),
        ]
        res = run(g, specs)
        assert res.gathered and res.detected

    def test_crashed_waiter_poisons_detection(self):
        """A waiter that dies is never collected; survivors terminate on
        schedule believing gathering completed — the run is flagged."""
        g = gg.ring(8)
        ref = run(g, [
            RobotSpec(3, 0, undispersed_gathering_program()),
            RobotSpec(9, 0, undispersed_gathering_program()),
        ])
        # a genuine waiter spot: neither the pair's node nor the gather node
        elsewhere = next(v for v in range(2, 8) if v not in (0, ref.final_node))
        specs = [
            RobotSpec(3, 0, undispersed_gathering_program()),
            RobotSpec(9, 0, undispersed_gathering_program()),
            RobotSpec(12, elsewhere, crash_at(undispersed_gathering_program(), 1)),
        ]
        res = run(g, specs)
        assert not res.gathered
        assert not res.detected
        assert res.stats[12].get("crashed_at") is not None

    def test_crashed_finder_strands_schedule(self):
        """The finder dies mid-map-construction: its helper is left parked.
        The run must end (everyone eventually terminates or the harness
        reports the breakage) without false detection."""
        g = gg.ring(6)
        specs = [
            # label 3 is the minimum of the co-located pair -> finder
            RobotSpec(3, 0, crash_at(undispersed_gathering_program(), 20)),
            RobotSpec(9, 0, undispersed_gathering_program()),
            RobotSpec(12, 3, undispersed_gathering_program()),
        ]
        res = run(g, specs)
        assert not res.detected

    def test_crash_round_validation(self):
        with pytest.raises(ValueError):
            crash_at(undispersed_gathering_program(), -3)

    def test_crash_at_zero_dies_immediately(self):
        g = gg.ring(6)
        specs = [
            RobotSpec(3, 0, crash_at(undispersed_gathering_program(), 0)),
            RobotSpec(9, 1, undispersed_gathering_program()),
        ]
        res = run(g, specs)
        assert res.metrics.moves_by_robot[3] == 0


class TestFaultPlan:
    """The declarative promotion of both wrappers (repro.ext.faults)."""

    def test_from_dict_round_trips(self):
        plan = FaultPlan.from_dict({"crash": {"2": 5, 0: 1}, "delay": {"1": 7}})
        assert plan.crashes == ((0, 1), (2, 5))
        assert plan.delays == ((1, 7),)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert not plan.empty and FaultPlan().empty

    def test_rejects_bad_tables(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan.from_dict({"meteor": {}})
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan.from_dict({"crash": {"-1": 4}})
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan.from_dict({"delay": {"0": -2}})
        with pytest.raises(ValueError, match="out of range"):
            FaultPlan.from_dict({"crash": {"3": 1}}).validate_for(2)

    def test_describe_names_indices_and_rounds(self):
        plan = FaultPlan.from_dict({"crash": {"0": 9}, "delay": {"1": 4}})
        assert plan.describe() == "crash #0@r9; delay #1+4"
        assert FaultPlan().describe() == "none"


class TestCrashDelayComposition:
    """Satellite coverage: crash_at x startup_delay on the same robots,
    driven declaratively so the flags surface in sweep rows."""

    # ring(8), k=3, seed 8 places robots at [5, 3, 3]: index 0 is the lone
    # waiter (see repro.scenarios.registry).
    def spec(self, **overrides):
        base = dict(
            algorithm="undispersed",
            family="ring",
            graph={"n": 8},
            placement="undispersed",
            k=3,
            placement_args={"seed": 8},
            labels_args={"seed": 8},
            uses_uxs=False,
            max_rounds=100_000,
        )
        base.update(overrides)
        return RunSpec(**base)

    def test_crashed_waiter_surfaces_in_sweep_row(self):
        rec = execute_spec(self.spec(faults={"crash": {"0": 1}})).run_or_raise()
        row = rec.as_row()
        assert row["detected"] is False
        assert row["mis_detected"] is True
        assert row["crashed"] == 1 and row["stranded"] == 1

    def test_crash_after_gather_is_harmless(self):
        rec = execute_spec(self.spec(faults={"crash": {"0": 50_000}})).run_or_raise()
        assert rec.detected and rec.extra["crashed"] == 0

    def test_uniform_delay_preserves_detection(self):
        delays = {"0": 11, "1": 11, "2": 11}
        rec = execute_spec(self.spec(faults={"delay": delays})).run_or_raise()
        assert rec.gathered and rec.detected
        assert rec.rounds == bounds.undispersed_rounds(8) + 11 + 1

    def test_delayed_then_crashed_waiter_still_flagged(self):
        """Crash scheduled inside the delay window: the robot crashes at its
        first activation after the delay, and detection is still poisoned."""
        rec = execute_spec(
            self.spec(faults={"crash": {"0": 3}, "delay": {"0": 20}})
        ).run_or_raise()
        assert not rec.detected
        assert rec.extra["mis_detected"] is True
        assert rec.extra["crashed"] == 1

    def test_delay_composed_with_late_crash_keeps_detection(self):
        """Uniform delay + crash-after-schedule: both wrappers on every
        robot, neither fault observable — detection must survive."""
        faults = {
            "delay": {"0": 5, "1": 5, "2": 5},
            "crash": {"0": 90_000, "1": 90_000, "2": 90_000},
        }
        rec = execute_spec(self.spec(faults=faults)).run_or_raise()
        assert rec.gathered and rec.detected
        assert rec.extra["crashed"] == 0

    def test_wrap_order_crash_during_delay(self):
        """Direct wrapper check: a robot whose crash round falls inside its
        delay dies at its first activation, having never moved."""
        g = gg.ring(6)
        plan = FaultPlan.from_dict({"crash": {"0": 2}, "delay": {"0": 10}})
        specs = [
            RobotSpec(3, 0, plan.wrap(0, undispersed_gathering_program())),
            RobotSpec(9, 1, plan.wrap(1, undispersed_gathering_program())),
        ]
        res = run(g, specs)
        assert res.metrics.moves_by_robot[3] == 0
        assert res.stats[3].get("crashed_at") == 10
