"""Tests for the program fragments in repro.core.proglets."""

from repro.core.proglets import highest_free_label, sleep_until, wait_for_merge, walk_ports
from repro.graphs import generators as gg
from repro.sim.actions import Action
from repro.sim.robot import RobotSpec
from repro.sim.world import World


class TestHighestFree:
    def test_picks_highest_free(self):
        cards = [
            {"id": 3, "following": None},
            {"id": 9, "following": None},
            {"id": 20, "following": 9},
        ]
        assert highest_free_label(cards, exclude=3) == 9

    def test_excludes_self(self):
        cards = [{"id": 9, "following": None}]
        assert highest_free_label(cards, exclude=9) is None

    def test_all_following(self):
        cards = [{"id": 3, "following": 9}, {"id": 4, "following": 9}]
        assert highest_free_label(cards, exclude=1) is None

    def test_empty(self):
        assert highest_free_label([], exclude=1) is None


class TestSleepUntil:
    def test_sleeps_to_exact_round(self):
        woke = {}

        def prog(ctx):
            obs = yield
            obs = yield from sleep_until(obs, 50)
            woke["round"] = obs.round
            yield Action.terminate()

        World(gg.ring(5), [RobotSpec(1, 0, prog)]).run()
        assert woke["round"] == 50

    def test_noop_when_past(self):
        woke = {}

        def prog(ctx):
            obs = yield
            obs = yield from sleep_until(obs, 0)  # already there
            woke["round"] = obs.round
            yield Action.terminate()

        World(gg.ring(5), [RobotSpec(1, 0, prog)]).run()
        assert woke["round"] == 0


class TestWalkPorts:
    def test_walks_route(self):
        from repro.graphs.traversal import walk as ground_truth_walk

        g = gg.ring(6)
        route = [1, 1, 1]
        expected = ground_truth_walk(g, 0, route)[-1]
        end = {}

        def prog(ctx):
            obs = yield
            obs = yield from walk_ports(obs, route)
            end["entry"] = obs.entry_port
            yield Action.terminate()

        res = World(g, [RobotSpec(1, 0, prog)]).run()
        assert res.positions[1] == expected
        assert res.metrics.total_moves == 3


class TestWaitForMerge:
    def test_times_out_alone(self):
        out = {}

        def prog(ctx):
            obs = yield
            obs, leader = yield from wait_for_merge(obs, 30, ctx.label)
            out["leader"] = leader
            out["round"] = obs.round
            yield Action.terminate()

        World(gg.ring(5), [RobotSpec(1, 0, prog)]).run()
        assert out["leader"] is None
        assert out["round"] == 30

    def test_detects_higher_arrival(self):
        out = {}

        def waiter(ctx):
            obs = yield
            obs, leader = yield from wait_for_merge(
                obs, 1000, ctx.label, card={"following": None}
            )
            out["leader"] = leader
            out["round"] = obs.round
            yield Action.terminate()

        def visitor(ctx):
            obs = yield
            obs = yield Action.stay(card={"following": None})
            obs = yield Action.move(0)  # arrive at waiter end of round 1
            obs = yield Action.stay()
            yield Action.terminate()

        g = gg.path(2)
        World(g, [RobotSpec(1, 1, waiter), RobotSpec(9, 0, visitor)], strict=True).run()
        assert out["leader"] == 9
        assert out["round"] == 2

    def test_ignores_lower_arrival(self):
        out = {}

        def waiter(ctx):
            obs = yield
            obs, leader = yield from wait_for_merge(
                obs, 40, ctx.label, card={"following": None}
            )
            out["leader"] = leader
            out["round"] = obs.round
            yield Action.terminate()

        def visitor(ctx):
            obs = yield
            obs = yield Action.stay(card={"following": None})
            obs = yield Action.move(0)
            obs = yield from sleep_until(obs, 45)
            yield Action.terminate()

        g = gg.path(2)
        World(g, [RobotSpec(9, 1, waiter), RobotSpec(1, 0, visitor)], strict=True).run()
        assert out["leader"] is None  # lower robot does not trigger a merge
        assert out["round"] == 40
