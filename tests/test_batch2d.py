"""The replica-major 2D engine vs. the scalar truth, bit for bit.

Pins both halves of ``batch-numpy2d``'s contract
(:mod:`repro.sim.batch2d`):

* **hot**: replicas whose fleets share a
  :class:`~repro.sim.vector.VectorProgram` retire through array kernels —
  every result field must equal a ``batch-list`` run of the *scalar twin*
  program, including first-gather rounds, active-round counts, and
  termination metadata;
* **cold**: anything the kernel cannot prove — irregular graphs,
  timeout-bound overruns, ``stop_on_gather``, mixed-factory fleets, bad
  params — must fall back to the scalar drive with results (and errors)
  identical to ``batch-list``, while ``vector_stats`` accounts for every
  declined replica.

A hypothesis property sweeps batches that mix hot rotor fleets with
arbitrary scripted (sleep/meet/card) fleets — the hot/cold boundary the
issue calls out.
"""

from dataclasses import replace

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import generators as gg
from repro.runtime import (
    SerialExecutor,
    execute,
    register_algorithm,
    replicate_spec,
    unregister_algorithm,
)
from repro.runtime.spec import RunSpec
from repro.sim.batch import ReplicaBatch, make_replica_batch
from repro.sim.batch2d import Replica2DBatch
from repro.sim.engines import get_engine, list_engines
from repro.sim.robot import RobotSpec
from repro.sim.vector import (
    RotorWalkKernel,
    VectorProgram,
    plan_for,
    rotor_walk_factory,
    rotor_walk_program,
)
from tests.conftest import scaled_examples, scripted_factory, scripts

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def snap(result):
    """Every observable field of a RunResult, as one comparable value."""
    m = result.metrics
    return {
        "gathered": result.gathered,
        "detected": result.detected,
        "final_node": result.final_node,
        "positions": dict(result.positions),
        "stats": result.stats,
        "rounds": m.rounds,
        "rounds_executed": m.rounds_executed,
        "total_moves": m.total_moves,
        "max_moves": m.max_moves,
        "moves_by_robot": dict(m.moves_by_robot),
        "active_rounds_by_robot": dict(m.active_rounds_by_robot),
        "first_gather_round": m.first_gather_round,
        "last_termination_round": m.last_termination_round,
        "gathered_at_end": m.gathered_at_end,
        "terminations_all_gathered": m.terminations_all_gathered,
        "max_card_bits": m.max_card_bits,
    }


def outcome_snap(outcome):
    """Comparable projection of a ReplicaOutcome (result or error)."""
    if outcome.ok:
        return snap(outcome.result)
    return {"error": outcome.error, "error_type": outcome.error_type}


def rotor_fleet(graph, k, seed, rounds=60, delay=0, hot=True):
    """One k-robot fleet; ``hot`` shares a VectorProgram, else scalar twins."""
    if hot:
        prog = rotor_walk_program(rounds, seed, delay)
        factories = [prog] * k
    else:
        factory = rotor_walk_factory(rounds, seed, delay)
        factories = [factory] * k
    starts = [(seed * 7 + i * 13) % graph.n for i in range(k)]
    labels = [1 + seed % 50 + i * 61 for i in range(k)]
    return [
        RobotSpec(label=lab, start=s, factory=f)
        for lab, s, f in zip(labels, starts, factories)
    ]


def assert_batches_identical(graph, hot_fleets, ref_fleets, max_rounds=10_000,
                             stop_on_gather=False):
    """numpy2d vs batch-list over paired fleets: outcomes + summary equal."""
    engine = make_replica_batch(graph, hot_fleets, backend="numpy2d")
    assert isinstance(engine, Replica2DBatch)
    ref = make_replica_batch(graph, ref_fleets, backend="list")
    got = engine.run(max_rounds=max_rounds, stop_on_gather=stop_on_gather)
    want = ref.run(max_rounds=max_rounds, stop_on_gather=stop_on_gather)
    for j, (a, b) in enumerate(zip(got, want)):
        assert outcome_snap(a) == outcome_snap(b), f"replica {j} diverged"
    assert replace(engine.summary, backend="x") == replace(ref.summary, backend="x")
    return engine


# ---------------------------------------------------------------------------
# Dispatch and registration
# ---------------------------------------------------------------------------


def test_make_replica_batch_dispatch():
    graph = gg.ring(8)
    fleets = [rotor_fleet(graph, 2, 1)]
    assert isinstance(make_replica_batch(graph, fleets, backend="numpy2d"),
                      Replica2DBatch)
    plain = make_replica_batch(graph, fleets, backend="list")
    assert type(plain) is ReplicaBatch
    with pytest.raises(ValueError, match="unknown batch backend"):
        make_replica_batch(graph, fleets, backend="cuda")


def test_engine_registered_with_numpy2d_backend():
    assert "batch-numpy2d" in list_engines()
    cls = get_engine("batch-numpy2d")
    assert cls.capabilities.supports_batch
    assert cls.batch_backend == "numpy2d"


def test_plan_is_memoized_per_graph():
    graph = gg.ring(12)
    p1 = plan_for(graph, RotorWalkKernel, (30,))
    p2 = plan_for(graph, RotorWalkKernel, (30,))
    assert p1 is p2 and p1 is not None
    assert plan_for(graph, RotorWalkKernel, (31,)) is not p1


# ---------------------------------------------------------------------------
# Hot path: bit-identity across graphs, fleet sizes, and wake offsets
# ---------------------------------------------------------------------------

REGULAR_GRAPHS = [
    ("ring-32", lambda: gg.ring(32)),
    ("torus-4x6", lambda: gg.torus(4, 6)),
    ("hypercube-3", lambda: gg.hypercube(3)),
    ("random-regular-20-3", lambda: gg.random_regular(20, 3, seed=1)),
]


@pytest.mark.parametrize("k", [1, 2, 3])
@pytest.mark.parametrize("gname,build", REGULAR_GRAPHS, ids=[g[0] for g in REGULAR_GRAPHS])
def test_hot_replicas_bit_identical_to_scalar(gname, build, k):
    graph = build()
    replicas = 8
    # mixed per-replica wake offsets: delay=0 replicas never sleep, the
    # rest exercise the kernel's wake-frontier arithmetic
    delays = [r % 4 for r in range(replicas)]
    hot = [rotor_fleet(graph, k, r, rounds=50, delay=delays[r]) for r in range(replicas)]
    ref = [rotor_fleet(graph, k, r, rounds=50, delay=delays[r], hot=False)
           for r in range(replicas)]
    engine = assert_batches_identical(graph, hot, ref)
    assert engine.vector_stats == {"vectorized": replicas, "fallbacks": 0}


@pytest.mark.parametrize("rounds", [1, 2, 3, 9])
def test_hot_tiny_walks_bit_identical(rounds):
    # walk lengths at and around the prefix-doubling boundaries
    graph = gg.ring(10)
    hot = [rotor_fleet(graph, 2, r, rounds=rounds) for r in range(4)]
    ref = [rotor_fleet(graph, 2, r, rounds=rounds, hot=False) for r in range(4)]
    assert_batches_identical(graph, hot, ref)


def test_colocated_fleet_under_delay_detects_round_zero_gather():
    # the sleep round commits with both robots still on the shared start:
    # the scalar path records first_gather_round=0 before any move — the
    # kernel must too (and must NOT for delay=0, where round 0 moves first)
    graph = gg.ring(16)
    for delay in (0, 3):
        prog = rotor_walk_program(20, 9, delay)
        hot = [[RobotSpec(label=1, start=5, factory=prog),
                RobotSpec(label=2, start=5, factory=prog)]]
        twin = rotor_walk_factory(20, 9, delay)
        ref = [[RobotSpec(label=1, start=5, factory=twin),
                RobotSpec(label=2, start=5, factory=twin)]]
        engine = assert_batches_identical(graph, hot, ref)
        assert engine.vector_stats["vectorized"] == 1


# ---------------------------------------------------------------------------
# Cold regimes: every fallback is silent, counted, and bit-identical
# ---------------------------------------------------------------------------


def test_mixed_hot_and_cold_fleets_in_one_batch():
    """Hot rotor fleets interleaved with scripted sleep/meet/card fleets and
    a failing construction — outcomes all match batch-list, in order."""
    graph = gg.ring(16)
    cold_scripts = [
        [("move", 1), ("sleep", 2), ("move", 0), ("stay",)],
        [("sleep_meet", 5), ("move", 1), ("card", 3)],
    ]

    def fleets(hot):
        out = []
        for r in range(6):
            if r % 2 == 0:
                out.append(rotor_fleet(graph, 2, r, rounds=30, delay=r % 3, hot=hot))
            else:
                sc = cold_scripts[(r // 2) % len(cold_scripts)]
                out.append([
                    RobotSpec(label=1, start=r, factory=scripted_factory(sc)),
                    RobotSpec(label=2, start=(r + 5) % graph.n,
                              factory=scripted_factory(list(reversed(sc)))),
                ])
        # a construction failure (duplicate labels) must stay isolated
        out.append([
            RobotSpec(label=7, start=0, factory=scripted_factory([("stay",)])),
            RobotSpec(label=7, start=1, factory=scripted_factory([("stay",)])),
        ])
        return out

    engine = assert_batches_identical(graph, fleets(True), fleets(False))
    assert engine.vector_stats == {"vectorized": 3, "fallbacks": 0}


def test_fallback_on_irregular_graph():
    # star/path graphs are not regular: the kernel must decline and the
    # scalar drive must produce exactly the batch-list results
    for graph in (gg.star(7), gg.path(6)):
        hot = [rotor_fleet(graph, 2, r, rounds=12) for r in range(4)]
        ref = [rotor_fleet(graph, 2, r, rounds=12, hot=False) for r in range(4)]
        engine = assert_batches_identical(graph, hot, ref)
        assert engine.vector_stats == {"vectorized": 0, "fallbacks": 4}


def test_fallback_on_stop_on_gather():
    graph = gg.ring(12)
    hot = [rotor_fleet(graph, 2, r, rounds=40) for r in range(4)]
    ref = [rotor_fleet(graph, 2, r, rounds=40, hot=False) for r in range(4)]
    engine = assert_batches_identical(graph, hot, ref, stop_on_gather=True)
    assert engine.vector_stats == {"vectorized": 0, "fallbacks": 4}


def test_fallback_timeout_parity():
    """Walks that overrun max_rounds are declined by accepts() and must
    time out through the scalar path with the identical error string —
    both for long walks and for delays that push past the bound."""
    graph = gg.ring(8)
    cases = [
        {"rounds": 200, "delay": 0},   # walk alone overruns
        {"rounds": 40, "delay": 80},   # the wake offset overruns
    ]
    for case in cases:
        prog = rotor_walk_program(case["rounds"], 3, case["delay"])
        hot = [[RobotSpec(label=1, start=0, factory=prog)]]
        twin = rotor_walk_factory(case["rounds"], 3, case["delay"])
        ref = [[RobotSpec(label=1, start=0, factory=twin)]]
        engine = make_replica_batch(graph, hot, backend="numpy2d")
        a = engine.run(max_rounds=100)[0]
        b = make_replica_batch(graph, ref, backend="list").run(max_rounds=100)[0]
        assert not a.ok and not b.ok
        assert (a.error, a.error_type) == (b.error, b.error_type)
        assert a.error_type == "SimulationTimeout"
        assert engine.vector_stats == {"vectorized": 0, "fallbacks": 1}


def test_fallback_on_unacceptable_params_and_shared():
    graph = gg.ring(8)
    # params the kernel cannot prove (non-int seed) and a shared tuple it
    # rejects (rounds < 1): both run scalar, bit-identical to the twin
    bad = [
        VectorProgram(rotor_walk_factory(10, 2), RotorWalkKernel,
                      shared=(10,), params={"seed": "two"}),
        VectorProgram(rotor_walk_factory(10, 2), RotorWalkKernel,
                      shared=("ten",), params={"seed": 2}),
    ]
    for prog in bad:
        hot = [[RobotSpec(label=1, start=0, factory=prog),
                RobotSpec(label=2, start=3, factory=prog)]]
        twin = rotor_walk_factory(10, 2)
        ref = [[RobotSpec(label=1, start=0, factory=twin),
                RobotSpec(label=2, start=3, factory=twin)]]
        engine = assert_batches_identical(graph, hot, ref)
        assert engine.vector_stats == {"vectorized": 0, "fallbacks": 1}


def test_mixed_factory_fleet_is_not_a_hot_candidate():
    # one robot on the VectorProgram, one on a plain factory: the fleet
    # must run scalar (and is not a "fallback" — it never declared itself)
    graph = gg.ring(8)
    prog = rotor_walk_program(15, 1)
    twin = rotor_walk_factory(15, 1)
    hot = [[RobotSpec(label=1, start=0, factory=prog),
            RobotSpec(label=2, start=4, factory=twin)]]
    ref = [[RobotSpec(label=1, start=0, factory=twin),
            RobotSpec(label=2, start=4, factory=twin)]]
    engine = assert_batches_identical(graph, hot, ref)
    assert engine.vector_stats == {"vectorized": 0, "fallbacks": 0}


# ---------------------------------------------------------------------------
# Runtime dispatch: engine="batch-numpy2d" through execute()
# ---------------------------------------------------------------------------

PROBE = "test-batch2d-rotor"


def _probe_builder(opts):
    return rotor_walk_program(opts.get("rounds", 40), opts.get("seed", 0))


def test_runtime_records_byte_identical_across_engines():
    register_algorithm(PROBE, _probe_builder, uses_uxs=False, detects=True)
    try:
        base = RunSpec(algorithm=PROBE, family="ring", graph={"n": 32},
                       placement="dispersed", k=2,
                       algorithm_args={"rounds": 40}, uses_uxs=False)
        specs = replicate_spec(base, 10)
        results = {}
        for engine in ("batch-numpy2d", "batch-list", None):
            kwargs = {"engine": engine} if engine else {}
            res = execute(specs, executor=SerialExecutor(), **kwargs)
            assert all(o.ok for o in res.outcomes)
            results[engine] = [o.run.to_dict() for o in res.outcomes]
        assert results["batch-numpy2d"] == results["batch-list"]
        assert results["batch-numpy2d"] == results[None]
    finally:
        unregister_algorithm(PROBE)


# ---------------------------------------------------------------------------
# Property: arbitrary mixes of hot and scripted fleets stay bit-identical
# ---------------------------------------------------------------------------

hot_fleet_params = st.fixed_dictionaries({
    "kind": st.just("hot"),
    "rounds": st.integers(min_value=1, max_value=12),
    "seed": st.integers(min_value=0, max_value=30),
    "delay": st.integers(min_value=0, max_value=4),
    "start_a": st.integers(min_value=0, max_value=5),
    "start_b": st.integers(min_value=0, max_value=5),
})

cold_fleet_params = st.fixed_dictionaries({
    "kind": st.just("cold"),
    "script_a": scripts(max_size=6),
    "script_b": scripts(max_size=6),
    "start_a": st.integers(min_value=0, max_value=5),
    "start_b": st.integers(min_value=0, max_value=5),
})


def _property_fleets(batch_params, hot):
    fleets = []
    for p in batch_params:
        if p["kind"] == "hot":
            if hot:
                fac_a = fac_b = rotor_walk_program(p["rounds"], p["seed"], p["delay"])
            else:
                fac_a = fac_b = rotor_walk_factory(p["rounds"], p["seed"], p["delay"])
        else:
            fac_a = scripted_factory(p["script_a"])
            fac_b = scripted_factory(p["script_b"])
        fleets.append([
            RobotSpec(label=1, start=p["start_a"], factory=fac_a),
            RobotSpec(label=2, start=p["start_b"], factory=fac_b),
        ])
    return fleets


@settings(max_examples=scaled_examples(30), deadline=None)
@given(batch_params=st.lists(st.one_of(hot_fleet_params, cold_fleet_params),
                             min_size=1, max_size=6))
def test_property_mixed_regime_batches_bit_identical(batch_params):
    graph = gg.ring(6)
    engine = make_replica_batch(graph, _property_fleets(batch_params, True),
                                backend="numpy2d")
    got = engine.run(max_rounds=500)
    want = make_replica_batch(graph, _property_fleets(batch_params, False),
                              backend="list").run(max_rounds=500)
    for j, (a, b) in enumerate(zip(got, want)):
        assert outcome_snap(a) == outcome_snap(b), f"replica {j} diverged"
    n_hot = sum(1 for p in batch_params if p["kind"] == "hot")
    stats = engine.vector_stats
    assert stats["vectorized"] + stats["fallbacks"] == n_hot
