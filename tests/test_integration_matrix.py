"""Cross-family × algorithm integration matrix.

The broadest correctness sweep in the suite: every algorithm on every graph
family shape it can afford, with seeded-random port numbering (the
anonymity stress) and mixed placements.  Every cell must gather; every
detecting algorithm must detect.
"""

import pytest

from repro.analysis.placement import (
    assign_labels,
    dispersed_random,
    undispersed_placement,
)
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from tests.conftest import run_world


FAMILY_INSTANCES = [
    ("ring", gg.ring(9, numbering="random", seed=1)),
    ("path", gg.path(8, numbering="random", seed=2)),
    ("grid", gg.grid(3, 3, numbering="random", seed=3)),
    ("star", gg.star(8, numbering="random", seed=4)),
    ("complete", gg.complete(7, numbering="random", seed=5)),
    ("binary_tree", gg.binary_tree(8, numbering="random", seed=6)),
    ("caterpillar", gg.caterpillar(9, numbering="random", seed=7)),
    ("lollipop", gg.lollipop(8, numbering="random", seed=8)),
    ("barbell", gg.barbell(9, numbering="random", seed=9)),
    ("wheel", gg.wheel(8, numbering="random", seed=10)),
    ("complete_bipartite", gg.complete_bipartite(3, 5, numbering="random", seed=11)),
    ("broom", gg.broom(9, numbering="random", seed=12)),
    ("hypercube", gg.hypercube(3, numbering="random", seed=13)),
    ("erdos_renyi", gg.erdos_renyi(9, seed=14, numbering="random")),
    ("torus", gg.torus(3, 3, numbering="random", seed=15)),
    ("cycle_with_chords", gg.cycle_with_chords(9, numbering="random", seed=16)),
]

IDS = [name for name, _ in FAMILY_INSTANCES]


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_undispersed_gathering_matrix(name, graph):
    starts = undispersed_placement(graph, 4, seed=42)
    labels = assign_labels(4, graph.n, seed=42)
    res = run_world(graph, starts, labels, undispersed_gathering_program())
    assert res.gathered, name
    assert res.detected, name


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_uxs_gathering_matrix(name, graph):
    starts = dispersed_random(graph, 3, seed=43)
    labels = assign_labels(3, graph.n, seed=43)
    res = run_world(graph, starts, labels, uxs_gathering_program())
    assert res.gathered, name
    assert res.detected, name


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_faster_gathering_matrix(name, graph):
    # many robots: the n^3 regime everywhere
    k = graph.n // 2 + 1
    starts = dispersed_random(graph, k, seed=44)
    labels = assign_labels(k, graph.n, seed=44)
    res = run_world(graph, starts, labels, faster_gathering_program())
    assert res.gathered, name
    assert res.detected, name


@pytest.mark.parametrize("scheme", ["compact", "random", "adversarial_long"])
@pytest.mark.parametrize("algo_name,factory_fn", [
    ("undispersed", undispersed_gathering_program),
    ("uxs", uxs_gathering_program),
    ("faster", faster_gathering_program),
])
def test_label_scheme_matrix(scheme, algo_name, factory_fn):
    """Every algorithm under every label scheme, incl. the worst case of
    maximal equal-length IDs."""
    g = gg.erdos_renyi(9, seed=21)
    k = 4
    if algo_name == "undispersed":
        starts = undispersed_placement(g, k, seed=5)
    else:
        starts = dispersed_random(g, k, seed=5)
    labels = assign_labels(k, g.n, scheme=scheme, seed=5)
    res = run_world(g, starts, labels, factory_fn())
    assert res.gathered, (algo_name, scheme)
    assert res.detected, (algo_name, scheme)
