"""Engine conformance harness: every registered backend vs. the oracle.

The engine registry (:mod:`repro.sim.engines`) promises that all conforming
backends are interchangeable: same results, same errors, same cache
entries.  This suite is that promise, executable — it discovers the
registered backends at collection time and runs each one against the
``reference`` engine (the seed scheduler, the executable spec) over

* the integration-matrix graph instances × the real algorithms
  (results, positions, metrics, per-robot stats — bit-identical),
* the stepwise protocol (``step``/``sync_state``/``positions`` lockstep),
* instrumentation (traces, replays) and activation models — identical
  output when a capability is claimed, a typed
  :class:`~repro.sim.engine.UnsupportedFeature` when it is not,
* failure modes (timeout, deadlock, protocol violation): identical
  exception types *and* messages,
* the runtime (``execute(engine=...)``): identical records and identical
  cache keys, so engine choice can never fork the cache.

A new backend passes by registering and claiming honest capabilities —
no test edits needed.  Run one backend in isolation with::

    PYTHONPATH=src python -m pytest tests/test_engine_conformance.py -q -k batch_list

(ids use underscores, so ``-k`` never splits on a hyphen).
"""

import pytest

from repro.analysis.placement import (
    assign_labels,
    dispersed_random,
    undispersed_placement,
)
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from repro.runtime import (
    ResultCache,
    RunSpec,
    SerialExecutor,
    execute,
    materialize,
    replicate_spec,
)
from repro.sim.actions import Action
from repro.sim.activation import build_activation
from repro.sim.batch import HAVE_NUMPY
from repro.sim.engine import (
    Engine,
    EngineCapabilities,
    EngineRequest,
    UnsupportedFeature,
)
from repro.sim.engines import (
    DEFAULT_ENGINE,
    get_engine,
    list_engines,
    register_engine,
    unregister_engine,
)
from repro.sim.replay import ReplayRecorder
from repro.sim.robot import RobotSpec
from repro.sim.trace import TraceRecorder
from repro.sim.world import DEFAULT_MAX_ROUNDS, World, package_result
from tests.test_fastpath_differential import ReferenceWithActivation
from tests.test_integration_matrix import FAMILY_INSTANCES

ORACLE = "reference"

#: Snapshot of the registry at collection time.  Ids replace hyphens with
#: underscores so ``-k batch_list`` selects exactly one backend (pytest's
#: ``-k`` expression language would split ``batch-list`` at the hyphen).
ENGINES = list_engines()
ENGINE_IDS = [name.replace("-", "_") for name in ENGINES]

# The conformance matrix: every integration-matrix graph instance, with the
# three real algorithms rotated across them (every algorithm still meets
# every graph *family shape* it needs; running all 3 × 16 per backend would
# triple the cost for no new machinery coverage).
_ALGORITHMS = [
    ("undispersed", undispersed_gathering_program, undispersed_placement, 4),
    ("uxs", uxs_gathering_program, dispersed_random, 3),
    ("faster", faster_gathering_program, dispersed_random, 3),
]

MATRIX = []
for _i, (_gname, _graph) in enumerate(FAMILY_INSTANCES):
    _aname, _factory_fn, _place, _k = _ALGORITHMS[_i % len(_ALGORITHMS)]
    MATRIX.append((f"{_gname}-{_aname}", _graph, _factory_fn, _place, _k))
MATRIX_IDS = [case[0] for case in MATRIX]


def make_fleet(graph, factory_fn, place, k, seed=21):
    """A fresh fleet for one run (programs are stateful generators)."""
    starts = place(graph, k, seed=seed)
    labels = assign_labels(len(starts), graph.n, seed=seed)
    factory = factory_fn()
    return [
        RobotSpec(label=lab, start=s, factory=factory)
        for lab, s in zip(labels, starts)
    ]


def run_engine(
    name,
    graph,
    fleet,
    *,
    trace=None,
    replay=None,
    activation=None,
    max_rounds=DEFAULT_MAX_ROUNDS,
    stop_on_gather=False,
    strict=False,
):
    request = EngineRequest(
        graph=graph,
        robots=fleet,
        strict=strict,
        trace=trace,
        replay=replay,
        activation=activation,
    )
    return get_engine(name)(request).run(
        max_rounds=max_rounds, stop_on_gather=stop_on_gather
    )


def digest(result):
    """Everything a RunResult exposes, as one comparable structure."""
    m = result.metrics
    return {
        "gathered": result.gathered,
        "detected": result.detected,
        "final_node": result.final_node,
        "positions": dict(result.positions),
        "stats": result.stats,
        "metrics": {
            **m.as_dict(),
            "moves_by_robot": m.moves_by_robot,
            "active_rounds_by_robot": m.active_rounds_by_robot,
            "max_card_bits": m.max_card_bits,
        },
    }


#: Oracle digests, memoized per matrix case — the reference runs once per
#: case, not once per (case, backend) pair.
_ORACLE_DIGESTS = {}


def oracle_digest(case_id, graph, factory_fn, place, k):
    if case_id not in _ORACLE_DIGESTS:
        fleet = make_fleet(graph, factory_fn, place, k)
        _ORACLE_DIGESTS[case_id] = digest(run_engine(ORACLE, graph, fleet))
    return _ORACLE_DIGESTS[case_id]


# ---------------------------------------------------------------------------
# Results: bit-identical across the matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_id,graph,factory_fn,place,k", MATRIX, ids=MATRIX_IDS)
@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_matrix_results_bit_identical(engine, case_id, graph, factory_fn, place, k):
    fleet = make_fleet(graph, factory_fn, place, k)
    got = digest(run_engine(engine, graph, fleet))
    assert got == oracle_digest(case_id, graph, factory_fn, place, k), case_id


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_stop_on_gather_bit_identical(engine):
    case_id, graph, factory_fn, place, k = MATRIX[2]
    got = digest(
        run_engine(engine, graph, make_fleet(graph, factory_fn, place, k),
                   stop_on_gather=True)
    )
    ref = digest(
        run_engine(ORACLE, graph, make_fleet(graph, factory_fn, place, k),
                   stop_on_gather=True)
    )
    assert got == ref, case_id


# ---------------------------------------------------------------------------
# The stepwise protocol
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_stepwise_protocol_matches_run(engine):
    """Driving step/sync_state/positions by hand reaches the oracle result.

    Round-granular backends are held in lockstep with a reference engine —
    positions and round counters must agree after every step.  Coarse
    backends (``supports_batch``: the replica engine retires whole slices)
    only promise progress per step and a conforming final state.
    """
    case_id, graph, factory_fn, place, k = MATRIX[0]
    cls = get_engine(engine)
    eng = cls(EngineRequest(graph=graph, robots=make_fleet(graph, factory_fn, place, k)))
    coarse = cls.capabilities.supports_batch

    ref = None
    if not coarse:
        ref = get_engine(ORACLE)(
            EngineRequest(graph=graph, robots=make_fleet(graph, factory_fn, place, k))
        )

    guard = 0
    while not eng.done:
        before = eng.rounds
        eng.step()
        eng.sync_state()
        assert eng.rounds > before, "step must advance by at least one round"
        if ref is not None:
            ref.step()
            ref.sync_state()
            assert eng.rounds == ref.rounds
            assert eng.positions() == ref.positions()
        guard += 1
        assert guard < 1_000_000, "stepwise run did not terminate"

    got = digest(eng.finalize())
    assert got == oracle_digest(case_id, graph, factory_fn, place, k)


# ---------------------------------------------------------------------------
# Instrumentation: identical when claimed, typed refusal when not
# ---------------------------------------------------------------------------

_TRACE_CASES = [MATRIX[0], MATRIX[4], MATRIX[8]]


@pytest.mark.parametrize(
    "case_id,graph,factory_fn,place,k", _TRACE_CASES, ids=[c[0] for c in _TRACE_CASES]
)
@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_trace_conformance(engine, case_id, graph, factory_fn, place, k):
    caps = get_engine(engine).capabilities
    if not caps.supports_tracing:
        with pytest.raises(UnsupportedFeature) as ei:
            run_engine(engine, graph, make_fleet(graph, factory_fn, place, k),
                       trace=TraceRecorder())
        assert ei.value.engine == engine
        return
    tr = TraceRecorder()
    got = digest(
        run_engine(engine, graph, make_fleet(graph, factory_fn, place, k), trace=tr)
    )
    ref_tr = TraceRecorder()
    ref = digest(
        run_engine(ORACLE, graph, make_fleet(graph, factory_fn, place, k), trace=ref_tr)
    )
    assert tr.events == ref_tr.events, "trace divergence"
    assert got == ref


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_replay_conformance(engine):
    case_id, graph, factory_fn, place, k = MATRIX[1]
    caps = get_engine(engine).capabilities
    if not caps.supports_replay:
        with pytest.raises(UnsupportedFeature) as ei:
            run_engine(engine, graph, make_fleet(graph, factory_fn, place, k),
                       replay=ReplayRecorder())
        assert ei.value.engine == engine
        return
    rec = ReplayRecorder()
    got = digest(
        run_engine(engine, graph, make_fleet(graph, factory_fn, place, k), replay=rec)
    )
    ref_rec = ReplayRecorder()
    ref = digest(
        run_engine(ORACLE, graph, make_fleet(graph, factory_fn, place, k),
                   replay=ref_rec)
    )
    assert rec.frames == ref_rec.frames, "replay divergence"
    assert got == ref


#: Activation runs use the schedule-free random-walk baseline: the paper's
#: oblivious schedules deliberately abort under any non-synchronous
#: activation (see the ``adversarial-activation`` scenario), so a walker
#: fleet is the instance that actually exercises the models end to end.
_ACTIVATION_SPEC = RunSpec(
    algorithm="random_walk",
    family="ring",
    graph={"n": 8},
    placement="dispersed",
    k=3,
    placement_args={"seed": 3},
    labels_args={"seed": 3},
    algorithm_args={"seed": 3},
    uses_uxs=False,
)


def _activation_fleet():
    graph, starts, labels, factory_for = materialize(_ACTIVATION_SPEC)
    factory = factory_for()
    return graph, [
        RobotSpec(label=lab, start=s, factory=factory)
        for lab, s in zip(labels, starts)
    ]


@pytest.mark.parametrize(
    "model_name,model_args",
    [("round-robin", {"groups": 2}), ("adversarial", {"budget": 1})],
)
@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_activation_conformance(engine, model_name, model_args):
    """Activation oracle: the seed scheduler plus the documented wake filter.

    The seed predates activation models, so the oracle here is the
    test-only :class:`ReferenceWithActivation` shim — the same one the
    differential suite uses.  Models are stateful: every run gets a fresh
    one.
    """
    caps = get_engine(engine).capabilities
    if not caps.supports_activation:
        graph, fleet = _activation_fleet()
        with pytest.raises(UnsupportedFeature) as ei:
            run_engine(engine, graph, fleet,
                       activation=build_activation(model_name, dict(model_args)))
        assert ei.value.engine == engine
        return
    graph, fleet = _activation_fleet()
    got = digest(
        run_engine(engine, graph, fleet, stop_on_gather=True, max_rounds=500_000,
                   activation=build_activation(model_name, dict(model_args)))
    )
    graph, fleet = _activation_fleet()
    sched = ReferenceWithActivation(
        graph, fleet, activation=build_activation(model_name, dict(model_args))
    )
    sched.run(max_rounds=500_000, stop_on_gather=True)
    assert got == digest(package_result(sched))


# ---------------------------------------------------------------------------
# Failure modes: identical exception types and messages
# ---------------------------------------------------------------------------


def _sleep_forever(ctx):
    obs = yield  # noqa: F841 — prime the generator
    obs = yield Action.sleep(None, wake_on_meet=True)
    yield Action.terminate()


def _bad_port(ctx):
    obs = yield
    obs = yield Action.move(obs.degree + 3)
    yield Action.terminate()


def _error_case(kind):
    """(graph, fresh fleet, run kwargs) provoking one failure mode."""
    if kind == "timeout":
        _, graph, factory_fn, place, k = MATRIX[2]
        return graph, make_fleet(graph, factory_fn, place, k), {"max_rounds": 50}
    if kind == "deadlock":
        return gg.path(3), [RobotSpec(label=1, start=0, factory=_sleep_forever)], {}
    if kind == "bad_port":
        return gg.path(3), [RobotSpec(label=1, start=0, factory=_bad_port)], {}
    raise AssertionError(kind)


def _failure_signature(engine, kind):
    graph, fleet, kwargs = _error_case(kind)
    try:
        run_engine(engine, graph, fleet, **kwargs)
    except Exception as exc:  # noqa: BLE001 — the signature IS the test
        return type(exc).__name__, str(exc)
    pytest.fail(f"{engine}: expected {kind} failure, run completed")


_ORACLE_FAILURES = {}


@pytest.mark.parametrize("kind", ["timeout", "deadlock", "bad_port"])
@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_failure_conformance(engine, kind):
    if kind not in _ORACLE_FAILURES:
        _ORACLE_FAILURES[kind] = _failure_signature(ORACLE, kind)
    assert _failure_signature(engine, kind) == _ORACLE_FAILURES[kind]


# ---------------------------------------------------------------------------
# Runtime dispatch: identical records, identical cache keys
# ---------------------------------------------------------------------------


def _runtime_specs():
    spec = RunSpec("faster", "ring", {"n": 8}, k=3, seed=5)
    return replicate_spec(spec, 3, root_seed=9)


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_runtime_records_and_cache_keys_identical(engine, tmp_path):
    """``execute(engine=...)`` forks neither records nor the cache.

    The engine is an execution parameter: a cache populated under any
    backend must be a 100% hit under any other, because the key hashes the
    spec alone.
    """
    specs = _runtime_specs()
    cache = ResultCache(tmp_path / "cache")
    result = execute(specs, executor=SerialExecutor(), cache=cache, engine=engine)
    records = [o.run_or_raise() for o in result.outcomes]

    oracle = execute(specs, executor=SerialExecutor(), engine=ORACLE)
    assert records == [o.run_or_raise() for o in oracle.outcomes]

    if get_engine(engine).capabilities.supports_batch:
        assert result.stats.batched == len(specs)
    else:
        assert result.stats.batched == 0

    rerun = execute(specs, executor=SerialExecutor(), cache=cache, engine=ORACLE)
    assert rerun.stats.cache_hits == len(specs)
    assert rerun.stats.executed == 0
    assert [o.run_or_raise() for o in rerun.outcomes] == records


def test_legacy_batch_flag_maps_to_engine_and_warns():
    specs = _runtime_specs()
    with pytest.warns(DeprecationWarning, match="engine='batch-numpy'"):
        legacy = execute(specs, executor=SerialExecutor(), batch=True)
    name = "batch-numpy" if HAVE_NUMPY else "batch-list"
    current = execute(specs, executor=SerialExecutor(), engine=name)
    assert [o.run_or_raise() for o in legacy.outcomes] == [
        o.run_or_raise() for o in current.outcomes
    ]
    assert legacy.stats.batched == current.stats.batched == len(specs)


def test_world_run_default_is_the_default_engine():
    case_id, graph, factory_fn, place, k = MATRIX[0]
    implicit = World(graph, make_fleet(graph, factory_fn, place, k)).run()
    explicit = World(graph, make_fleet(graph, factory_fn, place, k)).run(
        engine=DEFAULT_ENGINE
    )
    assert digest(implicit) == digest(explicit)
    assert digest(implicit) == oracle_digest(case_id, graph, factory_fn, place, k)


# ---------------------------------------------------------------------------
# The registry itself
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_registered_name_and_capabilities_are_honest_declarations(engine):
    cls = get_engine(engine)
    assert cls.name == engine
    assert isinstance(cls.capabilities, EngineCapabilities)
    if cls.capabilities.supports_batch:
        assert cls.batch_backend in ("list", "numpy", "numpy2d")


def test_expected_backends_present():
    assert {"reference", "incremental", "soa", "batch-list"} <= set(ENGINES)
    assert ("batch-numpy" in ENGINES) == HAVE_NUMPY
    assert ("batch-numpy2d" in ENGINES) == HAVE_NUMPY
    assert DEFAULT_ENGINE in ENGINES


def test_unknown_engine_raises_with_full_listing():
    with pytest.raises(ValueError) as ei:
        get_engine("warp-drive")
    message = str(ei.value)
    assert "warp-drive" in message
    for known in list_engines():
        assert known in message


def test_double_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_engine(get_engine(DEFAULT_ENGINE))


def test_register_replace_unregister_roundtrip():
    class DummyEngine(Engine):
        name = "conformance-dummy"
        capabilities = EngineCapabilities()

    try:
        register_engine(DummyEngine)
        assert "conformance-dummy" in list_engines()
        with pytest.raises(ValueError, match="already registered"):
            register_engine(DummyEngine)
        assert register_engine(DummyEngine, replace=True) is DummyEngine
    finally:
        unregister_engine("conformance-dummy")
    assert "conformance-dummy" not in list_engines()


def test_registration_validates_name_and_capabilities():
    class NoName(Engine):
        capabilities = EngineCapabilities()

    class NoCaps(Engine):
        name = "conformance-no-caps"
        capabilities = None

    with pytest.raises(ValueError, match="name"):
        register_engine(NoName)
    with pytest.raises(ValueError, match="EngineCapabilities"):
        register_engine(NoCaps)


def test_listing_is_sorted_and_stable():
    names = list_engines()
    assert names == sorted(names)
    assert list_engines() == names
