"""Property-based tests (hypothesis) on core structures and invariants.

Strategy: generate random connected port graphs (via seeded family
generators plus random port numberings), random placements and random label
sets, and assert the library-wide invariants:

* port involution and numbering validity for every generated graph;
* Euler tours always cover and return;
* UXS walks are degree-safe;
* Lemma 15's bound on arbitrary placements (not just the scatterer's);
* gathering-with-detection never misdetects on random configurations.
"""


from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.placement import min_pairwise_distance
from repro.core import bounds
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg
from repro.graphs.traversal import euler_tour_ports, walk
from repro.uxs.generators import splitmix_offsets
from repro.uxs.sequence import exploration_walk
# ``random_port_graph`` is the shared strategy from repro.testing.strategies
from tests.conftest import random_port_graph, run_world


@given(random_port_graph())
@settings(max_examples=60, deadline=None)
def test_port_involution_invariant(g):
    for v in g.nodes():
        assert set(g.ports(v)) == set(range(g.degree(v)))
        for p in g.ports(v):
            u, q = g.traverse(v, p)
            assert u != v
            assert g.traverse(u, q) == (v, p)


@given(random_port_graph(), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_euler_tour_invariant(g, root_seed):
    root = root_seed % g.n
    ports = euler_tour_ports(g, root)
    assert len(ports) == 2 * (g.n - 1)
    nodes = walk(g, root, ports)
    assert nodes[0] == nodes[-1] == root
    assert set(nodes) == set(g.nodes())


@given(random_port_graph(), st.integers(0, 10**6), st.integers(1, 200))
@settings(max_examples=40, deadline=None)
def test_uxs_walk_never_crashes(g, start_seed, length):
    start = start_seed % g.n
    offsets = splitmix_offsets(g.n, length)
    visited = exploration_walk(g, offsets, start)
    assert len(visited) == length + 1
    assert all(0 <= v < g.n for v in visited)


@given(random_port_graph(min_n=6, max_n=14), st.integers(2, 4), st.data())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_lemma15_on_arbitrary_placements(g, c, data):
    """Lemma 15 quantifies over ALL placements, so random ones must obey it."""
    n = g.n
    k = n // c + 1
    if k < 2:
        return
    starts = data.draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
        if k <= n
        else st.just(list(range(n))),
    )
    d = min_pairwise_distance(g, starts)
    assert d <= 2 * c - 2


@given(
    random_port_graph(min_n=5, max_n=9),
    st.integers(2, 4),
    st.integers(0, 10**6),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_undispersed_gathering_never_misdetects(g, k, seed):
    """Random undispersed configs: always gathered + correctly detected."""
    import random as _random

    rng = _random.Random(seed)
    hub = rng.randrange(g.n)
    starts = [hub, hub] + [rng.randrange(g.n) for _ in range(k - 2)]
    cap = bounds.max_label(g.n)
    labels = rng.sample(range(1, cap + 1), k)
    res = run_world(g, starts, labels, undispersed_gathering_program())
    assert res.gathered
    assert res.detected


@given(
    st.integers(0, 10**6),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_faster_gathering_random_configs(seed):
    """Randomized end-to-end: any placement, any labels — detection holds.

    Kept to nearby-pair configurations so the property check stays fast
    (the far-apart UXS path is exercised by dedicated tests)."""
    import random as _random

    rng = _random.Random(seed)
    n = rng.randrange(6, 10)
    g = gg.erdos_renyi(n, seed=seed % 97)
    k = rng.randrange(2, n // 2 + 2)
    # bias towards configurations with a nearby pair: place first two close
    first = rng.randrange(n)
    starts = [first, (first + 1) % n] + rng.sample(range(n), k - 2)
    cap = bounds.max_label(n)
    labels = rng.sample(range(1, cap + 1), k)
    res = run_world(g, starts, labels, faster_gathering_program())
    assert res.gathered
    assert res.detected


@given(st.integers(1, 10**6))
@settings(max_examples=50, deadline=None)
def test_id_bits_roundtrip(label):
    bits = bounds.id_bits_lsb_first(label)
    assert bits[-1] == 1  # no leading zeros
    value = sum(b << i for i, b in enumerate(bits))
    assert value == label


@given(st.integers(2, 64), st.integers(2, 64))
@settings(max_examples=60, deadline=None)
def test_longer_ids_are_larger(a, b):
    """The UXS algorithm's Lemma 1 relies on: more bits => larger value."""
    la = len(bounds.id_bits_lsb_first(a))
    lb = len(bounds.id_bits_lsb_first(b))
    if la > lb:
        assert a > b
