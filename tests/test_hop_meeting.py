"""Tests for ``i-Hop-Meeting`` (Lemmas 9-10, Remark 14)."""

import pytest

from repro.core import bounds
from repro.core.hop_meeting import hop_meeting_program
from repro.graphs import generators as gg
from repro.analysis.placement import dispersed_with_pair_distance
from tests.conftest import run_world


def ends_undispersed(result) -> bool:
    nodes = list(result.positions.values())
    return len(set(nodes)) < len(nodes)


class TestOneHop:
    @pytest.mark.parametrize("labels", [(1, 2), (2, 1), (5, 6), (37, 54)])
    def test_adjacent_robots_assemble(self, labels):
        g = gg.ring(8)
        res = run_world(g, [0, 1], labels, hop_meeting_program(1))
        assert ends_undispersed(res)

    def test_same_length_ids_with_differing_bit(self):
        g = gg.path(6)
        # 5=101, 6=110 differ at bit 0: 5 explores, 6 waits
        res = run_world(g, [2, 3], [5, 6], hop_meeting_program(1))
        assert ends_undispersed(res)

    def test_schedule_length_matches_bounds(self):
        g = gg.ring(8)
        res = run_world(g, [0, 1], [3, 9], hop_meeting_program(1))
        expected_end = bounds.hop_meeting_phase_length(1, 8)
        assert res.rounds == expected_end + 1  # terminate at phase end

    def test_non_adjacent_pair_no_guarantee_but_home(self):
        """Distance-3 robots running 1-hop-meeting: no meeting is required;
        robots must end back at their start nodes (cycles return home)."""
        g = gg.ring(10)
        res = run_world(g, [0, 5], [3, 9], hop_meeting_program(1))
        # distance 5 on a 10-ring: the radius-1 balls are disjoint
        assert res.positions[3] == 0
        assert res.positions[9] == 5


class TestIHop:
    @pytest.mark.parametrize("i", [1, 2, 3])
    def test_pair_at_distance_i_assembles(self, i):
        g = gg.ring(12)
        starts = [0, i]
        res = run_world(g, starts, [6, 9], hop_meeting_program(i))
        assert ends_undispersed(res), f"no assembly for i={i}"

    @pytest.mark.parametrize("i", [2, 3])
    def test_works_on_trees(self, i):
        g = gg.binary_tree(9)
        starts = dispersed_with_pair_distance(g, 2, i, seed=1)
        res = run_world(g, starts, [5, 10], hop_meeting_program(i))
        assert ends_undispersed(res)

    def test_many_robots_at_least_one_pair(self):
        g = gg.ring(12)
        starts = [0, 2, 4, 6, 8, 10]
        labels = [3, 5, 8, 12, 20, 33]
        res = run_world(g, starts, labels, hop_meeting_program(2))
        assert ends_undispersed(res)

    def test_all_robots_on_one_node_merge_immediately(self):
        g = gg.ring(6)
        res = run_world(g, [2, 2, 2], [3, 5, 9], hop_meeting_program(1))
        assert len(set(res.positions.values())) == 1


class TestKnownDegreeAblation:
    def test_delta_aware_schedule_is_shorter(self):
        g = gg.ring(10)  # max degree 2
        res_plain = run_world(g, [0, 2], [5, 9], hop_meeting_program(2))
        res_delta = run_world(
            g, [0, 2], [5, 9], hop_meeting_program(2, max_degree=2)
        )
        assert ends_undispersed(res_plain) and ends_undispersed(res_delta)
        assert res_delta.rounds < res_plain.rounds

    def test_delta_budget_respected(self):
        # DFS on a degree-Δ graph must fit in the Δ-aware cycle
        g = gg.random_regular(10, 3, seed=4)
        res = run_world(g, [0, 1], [5, 9], hop_meeting_program(2, max_degree=3))
        assert ends_undispersed(res)


class TestMoveBudget:
    @pytest.mark.parametrize("i", [1, 2])
    def test_dfs_moves_within_cycle_budget(self, i):
        """The radius-i DFS never exceeds the padded cycle length."""
        g = gg.complete(6)  # worst case: degree n-1 everywhere
        res = run_world(g, [0, 1], [2, 3], hop_meeting_program(i))
        cycle = bounds.hop_cycle_length(i, 6)
        cycles = bounds.schedule_bits(6)
        assert res.metrics.max_moves <= cycle * cycles

    def test_single_robot_runs_and_terminates(self):
        g = gg.ring(6)
        res = run_world(g, [0], [5], hop_meeting_program(2))
        assert res.positions[5] == 0  # returned home
