"""Tests for the shared schedule arithmetic."""

import pytest

from repro.core import bounds


class TestLabels:
    def test_max_label(self):
        assert bounds.max_label(10) == 100
        assert bounds.max_label(10, exponent=1) == 10

    def test_max_label_respects_cap(self):
        with pytest.raises(ValueError, match="must be <"):
            bounds.max_label(10, exponent=3)

    def test_id_bits_lsb_first(self):
        assert bounds.id_bits_lsb_first(1) == [1]
        assert bounds.id_bits_lsb_first(6) == [0, 1, 1]
        assert bounds.id_bits_lsb_first(8) == [0, 0, 0, 1]

    def test_id_bits_rejects_zero(self):
        with pytest.raises(ValueError):
            bounds.id_bits_lsb_first(0)

    def test_schedule_bits_cover_all_admissible_labels(self):
        for n in (2, 3, 5, 10, 33, 100):
            budget = bounds.schedule_bits(n)
            worst = bounds.max_label(n)  # n^2 < n^a budget
            assert len(bounds.id_bits_lsb_first(worst)) <= budget

    def test_schedule_bits_monotone(self):
        vals = [bounds.schedule_bits(n) for n in range(2, 64)]
        assert all(a <= b for a, b in zip(vals, vals[1:]))


class TestHopCycles:
    def test_cycle_length_formula(self):
        # T(i) = sum 2(n-1)^j
        assert bounds.hop_cycle_length(1, 5) == 2 * 4
        assert bounds.hop_cycle_length(2, 5) == 2 * 4 + 2 * 16
        assert bounds.hop_cycle_length(3, 3) == 2 * 2 + 2 * 4 + 2 * 8

    def test_cycle_length_with_known_degree(self):
        # Remark 14: degree-aware cycles
        assert bounds.hop_cycle_length(2, 100, max_degree=2) == 2 * 2 + 2 * 4

    def test_cycle_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            bounds.hop_cycle_length(0, 5)

    def test_meeting_rounds_scale(self):
        assert bounds.hop_meeting_rounds(1, 8) == bounds.hop_cycle_length(
            1, 8
        ) * bounds.schedule_bits(8)

    def test_phase_length_has_publish_round(self):
        assert bounds.hop_meeting_phase_length(1, 8) == 1 + bounds.hop_meeting_rounds(1, 8)


class TestPhaseBudgets:
    def test_phase1_cubic_shape(self):
        # dominated by the n^3 term
        assert bounds.phase1_rounds(100) < 7 * 100**3
        assert bounds.phase1_rounds(100) > 6 * 100**3

    def test_undispersed_layout(self):
        n = 9
        assert bounds.undispersed_rounds(n) == 1 + bounds.phase1_rounds(n) + 2 * n

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            bounds.phase1_rounds(0)
        with pytest.raises(ValueError):
            bounds.schedule_bits(0)


class TestBoundaries:
    def test_six_boundaries_increasing(self):
        b = bounds.faster_gathering_boundaries(10)
        assert len(b) == 6
        assert all(x < y for x, y in zip(b, b[1:]))

    def test_first_boundary_is_undispersed(self):
        assert bounds.faster_gathering_boundaries(10)[0] == bounds.undispersed_rounds(10)

    def test_boundary_structure(self):
        n = 8
        b = bounds.faster_gathering_boundaries(n)
        r = bounds.undispersed_rounds(n)
        for step in range(2, 7):
            expected = b[step - 2] + bounds.hop_meeting_phase_length(step - 1, n) + r
            assert b[step - 1] == expected

    def test_known_degree_shrinks_boundaries(self):
        slow = bounds.faster_gathering_boundaries(12)
        fast = bounds.faster_gathering_boundaries(12, max_degree=2)
        assert fast[-1] < slow[-1]

    def test_growth_dominated_by_last_hop(self):
        # E6 boundary grows like n^5 (the 5-hop cycle term)
        b16 = bounds.faster_gathering_boundaries(16)[-1]
        b32 = bounds.faster_gathering_boundaries(32)[-1]
        ratio = b32 / b16
        assert 2**4.5 < ratio < 2**5.5
