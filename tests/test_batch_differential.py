"""The batched replica engine is bit-identical to scalar execution.

:mod:`repro.sim.batch` runs R seed-replicas in lockstep with a fused hot
loop (plus a specialized two-robot slice); :mod:`repro.runtime` groups
differ-only-by-seed specs into :class:`BatchRunSpec` units.  This module
pins, for both bookkeeping backends (NumPy and the pure-list fallback):

* engine-level identity — positions, statuses, rounds, and every
  :class:`~repro.sim.metrics.RunMetrics` field against scalar
  ``World.run`` on real algorithms over the integration-matrix instances;
* runtime-level identity — ``execute(batch=...)`` records (including the
  memoized pair-distance column) byte-equal to scalar records, cache keys
  interchangeable in both directions;
* failure parity — timeouts and poisoned replicas produce the scalar
  path's exact error strings, isolated per replica;
* grouping rules — what batches, what stays scalar, and why;
* hypothesis — random scripted robots (sleeps, meets, cards, follows are
  exercised through the engine's cold path) bit-identical per seed.

``REPRO_DIFF_SCALE`` (set by the nightly workflow) multiplies replica
counts for the full-size matrix.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.placement import assign_labels, dispersed_random
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg
from repro.runtime import (
    BatchRunSpec,
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    batch_key,
    execute,
    execute_batch_spec,
    group_into_batches,
    replicate_spec,
)
from repro.sim.batch import (
    BACKENDS,
    HAVE_NUMPY,
    make_replica_batch,
    resolve_backend,
)
from repro.sim.robot import RobotSpec
from repro.sim.world import World
from tests.conftest import scaled_examples, scripted_factory, scripts
from tests.test_integration_matrix import FAMILY_INSTANCES

#: Nightly knob: multiplies replica counts (full-size differential matrix).
DIFF_SCALE = max(1, int(os.environ.get("REPRO_DIFF_SCALE", "1")))

BACKEND_NAMES = sorted(BACKENDS)


def metrics_dict(m):
    return {
        **m.as_dict(),
        "moves_by_robot": m.moves_by_robot,
        "active_rounds_by_robot": m.active_rounds_by_robot,
        "max_card_bits": m.max_card_bits,
    }


# ---------------------------------------------------------------------------
# Engine-level: ReplicaBatch vs World.run on real algorithms
# ---------------------------------------------------------------------------


ENGINE_CASES = [
    ("faster-k2", faster_gathering_program, 2),   # the specialized pair slice
    ("faster-k4", faster_gathering_program, 4),   # the general slice
    ("undispersed-k3", undispersed_gathering_program, 3),
]


def _fleet(graph, prog, k, seed):
    starts = dispersed_random(graph, min(k, graph.n), seed=seed)
    labels = assign_labels(len(starts), graph.n, scheme="random", seed=seed)
    factory = prog()
    return [
        RobotSpec(label=l, start=s, factory=factory)
        for l, s in zip(labels, starts)
    ]


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("case,prog,k", ENGINE_CASES, ids=[c[0] for c in ENGINE_CASES])
@pytest.mark.parametrize(
    "name,graph", FAMILY_INSTANCES, ids=[name for name, _ in FAMILY_INSTANCES]
)
def test_engine_bit_identical_on_matrix(name, graph, case, prog, k, backend):
    """Every replica's positions/statuses/metrics equal a scalar run with
    the same seed, over the full integration-matrix graph battery."""
    replicas = 3 * DIFF_SCALE
    batch = make_replica_batch(
        graph, [_fleet(graph, prog, k, s) for s in range(replicas)],
        strict=True, backend=backend,
    )
    outcomes = batch.run(max_rounds=500_000)
    assert batch.summary.backend == backend
    assert batch.summary.completed + batch.summary.failed == replicas
    for seed, outcome in enumerate(outcomes):
        try:
            scalar = World(graph, _fleet(graph, prog, k, seed), strict=True).run(
                max_rounds=500_000
            )
        except Exception as exc:
            # a seed the scalar path cannot finish (e.g. an adversarial
            # placement timing out) must fail the replica identically
            assert not outcome.ok, (name, seed)
            assert outcome.error_type == type(exc).__name__, (name, seed)
            assert outcome.error == str(exc), (name, seed)
            continue
        assert outcome.ok, (name, seed, outcome.error_type, outcome.error)
        assert outcome.result.positions == scalar.positions, (name, seed)
        assert metrics_dict(outcome.result.metrics) == metrics_dict(scalar.metrics), (
            name,
            seed,
        )
        assert outcome.result.gathered == scalar.gathered
        assert outcome.result.detected == scalar.detected
        assert outcome.result.stats == scalar.stats


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_backends_agree_exactly(backend):
    """Both backends produce identical outcomes and summaries (ints only)."""
    graph = gg.ring(10)

    def mk():
        return [_fleet(graph, faster_gathering_program, 3, s) for s in range(4)]

    ref = make_replica_batch(graph, mk(), strict=True, backend="list")
    ref_out = ref.run()
    other = make_replica_batch(graph, mk(), strict=True, backend=backend)
    other_out = other.run()
    for a, b in zip(ref_out, other_out):
        assert a.result.positions == b.result.positions
        assert metrics_dict(a.result.metrics) == metrics_dict(b.result.metrics)
    assert replace(ref.summary, backend="x") == replace(other.summary, backend="x")


def test_resolve_backend():
    assert resolve_backend("list").name == "list"
    assert resolve_backend("auto").name == ("numpy" if HAVE_NUMPY else "list")
    if HAVE_NUMPY:
        assert resolve_backend("numpy2d").name == "numpy2d"
    with pytest.raises(ValueError, match="unknown batch backend"):
        resolve_backend("cuda")


def test_engine_isolates_construction_failures():
    """A fleet with duplicate labels fails alone; siblings still run."""
    graph = gg.ring(8)
    good = _fleet(graph, undispersed_gathering_program, 3, 1)
    bad = [
        RobotSpec(label=5, start=0, factory=undispersed_gathering_program()),
        RobotSpec(label=5, start=1, factory=undispersed_gathering_program()),
    ]
    batch = make_replica_batch(graph, [good, bad, _fleet(graph, undispersed_gathering_program, 3, 2)])
    outcomes = batch.run(max_rounds=500_000)
    assert outcomes[0].ok and outcomes[2].ok
    assert not outcomes[1].ok
    assert outcomes[1].error_type == "ValueError"
    assert "labels must be unique" in outcomes[1].error
    assert batch.summary.failed == 1


# ---------------------------------------------------------------------------
# Runtime-level: execute(batch=...) vs scalar execute
# ---------------------------------------------------------------------------


def _campaign_specs(replicas=None):
    replicas = replicas if replicas is not None else 4 * DIFF_SCALE
    base = RunSpec(
        algorithm="faster", family="ring", graph={"n": 12},
        placement="dispersed", k=4,
    )
    return [replace(base, seed=s) for s in range(replicas)]


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_runtime_records_byte_identical(backend):
    specs = _campaign_specs()
    scalar = execute(specs, executor=SerialExecutor())
    batched = execute(specs, executor=SerialExecutor(), batch=backend)
    assert batched.stats.batched == len(specs)
    assert scalar.stats.batched == 0
    for a, b in zip(scalar.outcomes, batched.outcomes):
        assert a.spec == b.spec
        assert b.batched and not a.batched
        assert a.run.to_dict() == b.run.to_dict()


def test_cache_keys_interchangeable_both_directions(tmp_path):
    """Batched results hit a scalar-written cache and vice versa — the
    per-replica SHA-256 identity is unchanged by batching."""
    specs = _campaign_specs(4)
    scalar_dir, batch_dir = tmp_path / "scalar", tmp_path / "batch"
    execute(specs, cache=ResultCache(scalar_dir))
    execute(specs, cache=ResultCache(batch_dir), batch=True)
    from_scalar = execute(specs, cache=ResultCache(scalar_dir), batch=True)
    assert from_scalar.stats.cache_hits == len(specs)
    from_batch = execute(specs, cache=ResultCache(batch_dir))
    assert from_batch.stats.cache_hits == len(specs)
    for a, b in zip(from_scalar.outcomes, from_batch.outcomes):
        assert a.run.to_dict() == b.run.to_dict()


def test_parallel_batched_execution_matches_serial(tmp_path):
    """Whole batches dispatched to worker processes return the same
    outcomes as in-process batching."""
    specs = _campaign_specs(4) + [
        replace(_campaign_specs(1)[0], graph={"n": 10}, seed=s) for s in range(4)
    ]
    serial = execute(specs, executor=SerialExecutor(), batch=True)
    parallel = execute(
        specs, executor=ParallelExecutor(workers=2, mp_context="fork"), batch=True
    )
    for a, b in zip(serial.outcomes, parallel.outcomes):
        assert a.spec == b.spec
        assert a.run.to_dict() == b.run.to_dict()


def test_timeout_error_parity():
    specs = [replace(s, max_rounds=5) for s in _campaign_specs(3)]
    scalar = execute(specs, executor=SerialExecutor())
    batched = execute(specs, executor=SerialExecutor(), batch=True)
    assert scalar.stats.failures == batched.stats.failures == 3
    for a, b in zip(scalar.outcomes, batched.outcomes):
        assert not a.ok and not b.ok
        assert (a.error_type, a.error) == (b.error_type, b.error)


def test_stop_on_gather_parity():
    base = RunSpec(
        algorithm="tz", family="ring", graph={"n": 10}, placement="dispersed",
        k=2, uses_uxs=False, stop_on_gather=True, max_rounds=50_000,
    )
    specs = [replace(base, seed=s) for s in range(4)]
    scalar = execute(specs, executor=SerialExecutor())
    batched = execute(specs, executor=SerialExecutor(), batch=True)
    for a, b in zip(scalar.outcomes, batched.outcomes):
        assert a.run.to_dict() == b.run.to_dict()
        assert b.run.first_gather_round is not None


def test_batch_level_failure_hits_every_replica_identically():
    base = RunSpec(algorithm="no-such-algo", family="ring", graph={"n": 8})
    specs = [replace(base, seed=s) for s in range(3)]
    scalar = execute(specs, executor=SerialExecutor())
    batched = execute(specs, executor=SerialExecutor(), batch=True)
    for a, b in zip(scalar.outcomes, batched.outcomes):
        assert (a.error_type, a.error) == (b.error_type, b.error)


# ---------------------------------------------------------------------------
# Grouping rules
# ---------------------------------------------------------------------------


class TestGrouping:
    def test_differ_only_by_seed_groups(self):
        specs = _campaign_specs(4)
        batches, singles = group_into_batches(specs)
        assert len(batches) == 1 and not singles
        indices, bspec = batches[0]
        assert indices == [0, 1, 2, 3]
        assert [s.seed for s in bspec.specs()] == [0, 1, 2, 3]
        assert bspec.specs() == specs

    def test_non_clean_specs_stay_scalar(self):
        spec = replace(_campaign_specs(1)[0], activation="round-robin")
        assert batch_key(spec) is None
        batches, singles = group_into_batches([spec, replace(spec, seed=9)])
        assert not batches and len(singles) == 2

    def test_faulted_specs_stay_scalar(self):
        spec = replace(_campaign_specs(1)[0], faults={"crash": {0: 3}})
        assert batch_key(spec) is None

    def test_singletons_stay_scalar(self):
        a = _campaign_specs(1)[0]
        b = replace(a, graph={"n": 16})  # different shape: its own group of 1
        batches, singles = group_into_batches([a, b])
        assert not batches and [i for i, _ in singles] == [0, 1]

    def test_mixed_batch_preserves_submission_order(self):
        specs = _campaign_specs(3)
        odd = replace(specs[0], activation="round-robin", seed=77)
        mixed = [specs[0], odd, specs[1], specs[2]]
        result = execute(mixed, executor=SerialExecutor(), batch=True)
        assert [o.spec for o in result.outcomes] == mixed
        assert [o.batched for o in result.outcomes] == [True, False, True, True]

    def test_from_specs_rejects_mismatched_shapes(self):
        specs = _campaign_specs(2)
        with pytest.raises(ValueError, match="batchable identity"):
            BatchRunSpec.from_specs([specs[0], replace(specs[1], k=3)])
        with pytest.raises(ValueError, match="at least one"):
            BatchRunSpec.from_specs([])

    def test_pinned_scheme_seeds_still_group(self):
        """Per-scheme pinned seeds are part of the shared shape; the spec
        seed is the only thing allowed to differ."""
        base = replace(_campaign_specs(1)[0], placement_args={"seed": 3})
        group = [replace(base, seed=s) for s in range(3)]
        batches, singles = group_into_batches(group)
        assert len(batches) == 1 and not singles

    def test_replicate_spec_shape(self):
        base = replace(
            _campaign_specs(1)[0],
            placement_args={"seed": 3},
            labels_args={"seed": 4},
        )
        reps = replicate_spec(base, 4, root_seed=11)
        assert reps[0] == base  # replica 0 untouched (same cache key)
        for r in reps[1:]:
            assert r.seed is not None and r.seed != base.seed
            assert "seed" not in r.placement_args
            assert "seed" not in r.labels_args
        # siblings 1.. group together (replica 0 pins scheme seeds)
        batches, singles = group_into_batches(reps)
        assert len(batches) == 1 and len(batches[0][0]) == 3
        assert [i for i, _ in singles] == [0]
        with pytest.raises(ValueError, match="replicas"):
            replicate_spec(base, 0)

    def test_execute_batch_spec_outcome_order_and_flags(self):
        bspec = BatchRunSpec.from_specs(_campaign_specs(3))
        outcomes = execute_batch_spec(bspec)
        assert [o.spec.seed for o in outcomes] == [0, 1, 2]
        assert all(o.ok and o.batched for o in outcomes)


# ---------------------------------------------------------------------------
# Hypothesis: random scripted robots, batched vs scalar, per seed
# (shared generators from repro.testing.strategies, via conftest; this
# module keeps its historical shorter script shape)
# ---------------------------------------------------------------------------

script_strategy = scripts(max_size=8)


@given(
    st.integers(0, 3),
    st.lists(st.lists(script_strategy, min_size=2, max_size=4), min_size=2, max_size=4),
    st.data(),
)
@settings(max_examples=scaled_examples(60), deadline=None)
def test_scripted_replicas_bit_identical(graph_pick, replica_scripts, data):
    """Each replica (its own random script set + starts) matches a scalar
    run bit-for-bit, under both backends, through every cold path the
    scripts can reach (sleeps, meets, cards, terminations)."""
    graph = [gg.ring(6), gg.path(5), gg.star(6), gg.erdos_renyi(7, seed=3)][graph_pick]
    starts = [
        [
            data.draw(st.integers(0, graph.n - 1), label=f"r{r}s{i}")
            for i in range(len(scripts))
        ]
        for r, scripts in enumerate(replica_scripts)
    ]

    def fleet(r):
        return [
            RobotSpec(label=i + 1, start=s, factory=scripted_factory(sc))
            for i, (s, sc) in enumerate(zip(starts[r], replica_scripts[r]))
        ]

    scalar = [
        World(graph, fleet(r)).run(max_rounds=10_000)
        for r in range(len(replica_scripts))
    ]
    for backend in BACKEND_NAMES:
        batch = make_replica_batch(
            graph, [fleet(r) for r in range(len(replica_scripts))], backend=backend
        )
        outcomes = batch.run(max_rounds=10_000)
        for r, (outcome, ref) in enumerate(zip(outcomes, scalar)):
            assert outcome.ok, (r, outcome.error_type, outcome.error)
            assert outcome.result.positions == ref.positions, r
            assert metrics_dict(outcome.result.metrics) == metrics_dict(ref.metrics), r
