"""Edge cases of the experiment harness and scheduler not covered elsewhere."""

import pytest

from repro.analysis.experiments import run_gathering, verify_uxs_for_graph
from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg
from repro.sim.actions import Action
from repro.sim.errors import SimulationTimeout
from repro.sim.robot import RobotSpec
from repro.sim.world import World
from repro.uxs.sequence import UxsPlan
from repro.uxs.verify import UxsCertificationError


class TestUxsVerificationGate:
    def test_rejects_uncovered_graph(self, monkeypatch):
        """The harness must refuse to report results when the plan's
        coverage property is broken (DESIGN.md S1's honesty mechanism)."""
        import repro.analysis.experiments as exps

        bogus = UxsPlan(8, (0, 0, 0), provenance="fixed")  # cannot cover a ring
        monkeypatch.setattr(exps, "practical_plan", lambda n: bogus)
        with pytest.raises(UxsCertificationError):
            verify_uxs_for_graph(gg.ring(8))

    def test_skip_for_non_uxs_algorithms(self, monkeypatch):
        import repro.analysis.experiments as exps

        bogus = UxsPlan(8, (0,), provenance="fixed")
        monkeypatch.setattr(exps, "practical_plan", lambda n: bogus)
        # uses_uxs=False: no gate, run proceeds
        rec = run_gathering(
            "undispersed", gg.ring(8), [0, 0], [3, 9],
            lambda: undispersed_gathering_program(), uses_uxs=False,
        )
        assert rec.gathered


class TestWorldOptions:
    def test_max_rounds_passthrough(self):
        def spinner(ctx):
            obs = yield
            while True:
                obs = yield Action.stay()

        w = World(gg.ring(5), [RobotSpec(1, 0, spinner)])
        with pytest.raises(SimulationTimeout):
            w.run(max_rounds=25)

    def test_stop_on_gather_skips_termination(self):
        def spinner(ctx):
            obs = yield
            while True:
                obs = yield Action.stay()

        w = World(gg.ring(5), [RobotSpec(1, 0, spinner), RobotSpec(2, 0, spinner)])
        res = w.run(stop_on_gather=True)
        assert res.metrics.first_gather_round == 0
        assert not res.detected


class TestFollowWhileLeaderSleeps:
    def test_follower_of_sleeper_stays(self):
        woke = {}

        def sleeper(ctx):
            obs = yield
            obs = yield Action.sleep(20)
            yield Action.terminate()

        def follower(ctx):
            obs = yield
            obs = yield Action.follow(2, until_round=10, on_leader_terminate="wake")
            woke["round"] = obs.round
            yield Action.terminate()

        w = World(gg.ring(5), [RobotSpec(2, 0, sleeper), RobotSpec(1, 0, follower)])
        res = w.run()
        assert woke["round"] == 10
        assert res.metrics.moves_by_robot[1] == 0

    def test_fast_forward_respects_follower_until(self):
        """With only a sleeper and a persistent follower, the jump must not
        overshoot the follower's resume round."""
        seen = {}

        def sleeper(ctx):
            obs = yield
            obs = yield Action.sleep(100)
            yield Action.terminate()

        def follower(ctx):
            obs = yield
            obs = yield Action.follow(2, until_round=30, on_leader_terminate="wake")
            seen["resume"] = obs.round
            obs = yield Action.sleep(200)
            yield Action.terminate()

        w = World(gg.ring(5), [RobotSpec(2, 0, sleeper), RobotSpec(1, 0, follower)])
        w.run()
        assert seen["resume"] == 30


class TestCardEdgeCases:
    def test_none_card_keeps_previous(self):
        seen = []

        def publisher(ctx):
            obs = yield
            obs = yield Action.stay(card={"v": 7})
            obs = yield Action.stay()  # card=None: keep
            obs = yield Action.stay()
            yield Action.terminate()

        def reader(ctx):
            obs = yield
            for _ in range(4):
                card = next((c for c in obs.cards if c["id"] == 1), None)
                seen.append(card.get("v") if card else None)
                obs = yield Action.stay()
            yield Action.terminate()

        World(gg.ring(5), [RobotSpec(1, 0, publisher), RobotSpec(2, 0, reader)]).run()
        assert seen == [None, 7, 7, 7]

    def test_card_replaced_not_merged(self):
        seen = {}

        def publisher(ctx):
            obs = yield
            obs = yield Action.stay(card={"a": 1, "b": 2})
            obs = yield Action.stay(card={"a": 9})  # b must vanish
            yield Action.terminate()

        def reader(ctx):
            obs = yield
            obs = yield Action.stay()
            obs = yield Action.stay()
            card = next(c for c in obs.cards if c["id"] == 1)
            seen["keys"] = set(card.keys())
            yield Action.terminate()

        World(gg.ring(5), [RobotSpec(1, 0, publisher), RobotSpec(2, 0, reader)]).run()
        assert seen["keys"] == {"id", "a"}
