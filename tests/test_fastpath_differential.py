"""The fast path is bit-identical to the seed scheduler.

:mod:`repro.sim.scheduler` rewrote the round hot loop (incremental
occupancy, card-tuple caching, iterative follow resolution, single-pass
cascade, hoisted tracing).  This module runs the optimized
:class:`~repro.sim.scheduler.Scheduler` and the seed
:class:`~repro.sim.reference.ReferenceScheduler` side by side and asserts
**exact** equality of

* the full trace event list (every kind, every payload, every order),
* final positions and per-robot statuses,
* every :class:`~repro.sim.metrics.RunMetrics` field,

over the real algorithms on the integration-matrix graph instances, over
hand-built follow/cascade/jump scenarios that target the rewritten
machinery specifically, and over hypothesis-generated robot scripts.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.placement import (
    assign_labels,
    dispersed_random,
    undispersed_placement,
)
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.ext.faults import FaultPlan
from repro.graphs import generators as gg
from repro.runtime.spec import materialize
from repro.scenarios import get_scenario, scenario_names
from repro.sim.activation import build_activation
from repro.sim.actions import Action
from repro.sim.errors import ProtocolViolation
from repro.sim.reference import ReferenceScheduler
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder
from tests.conftest import (
    fault_plan_strategy,
    scaled_examples,
    script_strategy,
    scripted_factory,
)
from tests.test_integration_matrix import FAMILY_INSTANCES


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def _metrics_dict(sched):
    m = sched.metrics
    return {
        **m.as_dict(),
        "moves_by_robot": m.moves_by_robot,
        "active_rounds_by_robot": m.active_rounds_by_robot,
        "max_card_bits": m.max_card_bits,
    }


class ReferenceWithActivation(ReferenceScheduler):
    """The seed scheduler plus the activation hook, for scenario parity.

    The seed predates activation models, so its ``_step`` never consults
    one; this test-only subclass inserts the same post-wake filter the
    fast path applies, letting activation scenarios run differentially.
    """

    def _wake_due(self):
        active = super()._wake_due()
        if self.activation is not None and active:
            selected = self.activation.select(active, self.round)
            if not selected:
                raise ProtocolViolation(
                    f"activation model {self.activation.describe()!r} selected "
                    f"no robot at round {self.round} with {len(active)} due"
                )
            return selected
        return active


def _state_digest(sched):
    return (
        sched.positions(),
        sched.round,
        {r.label: r.status for r in sched.robots},
        _metrics_dict(sched),
    )


def run_both(graph, make_specs, max_rounds=200_000, stop_on_gather=False):
    """Run fast and seed schedulers on identical specs; assert bit-identity.

    Returns the fast scheduler for scenario-specific extra assertions.
    """
    results = []
    for cls in (Scheduler, ReferenceScheduler):
        trace = TraceRecorder()
        sched = cls(graph, make_specs(), trace=trace)
        sched.run(max_rounds=max_rounds, stop_on_gather=stop_on_gather)
        results.append((sched, trace))
    (fast, fast_trace), (ref, ref_trace) = results

    assert fast_trace.events == ref_trace.events, "trace divergence"
    assert fast.positions() == ref.positions(), "position divergence"
    assert fast.round == ref.round, "round-counter divergence"
    assert {r.label: r.status for r in fast.robots} == {
        r.label: r.status for r in ref.robots
    }, "status divergence"
    assert _metrics_dict(fast) == _metrics_dict(ref), "metrics divergence"
    return fast


def run_both_untraced(
    graph,
    make_specs,
    max_rounds=200_000,
    stop_on_gather=False,
    strict=False,
    activation="sync",
    activation_args=None,
):
    """Differential run with ``trace=None`` — the SoA hot-loop regime.

    Tracing forces the general path, so :func:`run_both` alone would never
    execute the struct-of-arrays sweep; this variant compares everything
    *except* traces (positions, round counter, statuses, full metrics).
    Activation models are stateful, so each scheduler gets a fresh one.
    """
    digests = []
    for cls in (Scheduler, ReferenceWithActivation):
        model = build_activation(activation, dict(activation_args or {}))
        sched = cls(graph, make_specs(), strict=strict, activation=model)
        sched.run(max_rounds=max_rounds, stop_on_gather=stop_on_gather)
        digests.append((_state_digest(sched), sched))
    (fast_digest, fast), (ref_digest, _) = digests
    assert fast_digest == ref_digest, "untraced state divergence"
    return fast


# ---------------------------------------------------------------------------
# Real algorithms on the full integration matrix
# ---------------------------------------------------------------------------

IDS = [name for name, _ in FAMILY_INSTANCES]


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_matrix_undispersed(name, graph):
    starts = undispersed_placement(graph, 4, seed=42)
    labels = assign_labels(4, graph.n, seed=42)

    def make_specs():
        return [
            RobotSpec(label=l, start=s, factory=undispersed_gathering_program())
            for l, s in zip(labels, starts)
        ]

    fast = run_both(graph, make_specs)
    assert fast.all_terminated(), name


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_matrix_uxs(name, graph):
    starts = dispersed_random(graph, 3, seed=43)
    labels = assign_labels(3, graph.n, seed=43)

    def make_specs():
        return [
            RobotSpec(label=l, start=s, factory=uxs_gathering_program())
            for l, s in zip(labels, starts)
        ]

    fast = run_both(graph, make_specs)
    assert fast.all_terminated(), name


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_matrix_faster(name, graph):
    k = graph.n // 2 + 1
    starts = dispersed_random(graph, k, seed=44)
    labels = assign_labels(k, graph.n, seed=44)

    def make_specs():
        return [
            RobotSpec(label=l, start=s, factory=faster_gathering_program())
            for l, s in zip(labels, starts)
        ]

    fast = run_both(graph, make_specs)
    assert fast.all_terminated(), name


# ---------------------------------------------------------------------------
# Targeted scenarios for the rewritten machinery
# ---------------------------------------------------------------------------


def _spec(label, start, gen_fn):
    return RobotSpec(label=label, start=start, factory=gen_fn)


def test_follow_chain_and_branching_cascade():
    """Deep follow chain + branches; leader terminates -> ordered cascade.

    Labels are deliberately arranged so the cascade's iterated label-order
    passes differ from naive BFS order (follower with a *smaller* label
    than its leader joins a later pass) — pinning the single-pass rewrite
    to the seed's exact trace order.
    """
    g = gg.ring(8)

    def leader(ctx):
        obs = yield
        obs = yield Action.move(0)
        obs = yield Action.move(0)
        yield Action.terminate()

    def follower(target):
        def prog(ctx):
            obs = yield
            yield Action.follow(target, on_leader_terminate="terminate")
            return

        return prog

    def waker(target):
        def prog(ctx):
            obs = yield
            obs = yield Action.follow(target, on_leader_terminate="wake")
            yield Action.terminate()

        return prog

    def make_specs():
        return [
            _spec(5, 0, leader),
            _spec(7, 0, follower(5)),   # larger label than leader: pass 1
            _spec(3, 0, follower(5)),   # smaller label than leader: pass 2
            _spec(2, 0, follower(7)),   # chain through 7
            _spec(6, 0, waker(3)),      # wake-mode: blocks propagation
            _spec(1, 0, follower(6)),   # leader never terminates by cascade
        ]

    fast = run_both(g, make_specs)
    assert fast.all_terminated()


def test_follow_cycle_and_once_chains():
    g = gg.path(4)

    def mover(ctx):
        obs = yield
        obs = yield Action.move(0)
        yield Action.terminate()

    def once(target):
        def prog(ctx):
            obs = yield
            obs = yield Action.follow_once(target)
            yield Action.terminate()

        return prog

    def cyclic(target):
        def prog(ctx):
            obs = yield
            obs = yield Action.follow_once(target)
            yield Action.terminate()

        return prog

    def make_specs():
        return [
            _spec(4, 1, mover),
            _spec(2, 1, once(4)),     # mirrors the mover
            _spec(1, 1, once(2)),     # chain: once -> once -> mover
            _spec(5, 2, cyclic(6)),   # 5 <-> 6 cycle: both stay
            _spec(6, 2, cyclic(5)),
        ]

    run_both(g, make_specs)


def test_wake_on_meet_and_jump_interleaving():
    """Sleepers (meet-wakeable and not) + a fast-forward jump + arrivals."""
    g = gg.path(5)

    def sleeper_meet(ctx):
        obs = yield
        obs = yield Action.sleep(None, wake_on_meet=True)
        yield Action.terminate()

    def sleeper_deep(ctx):
        obs = yield
        obs = yield Action.sleep(60)
        yield Action.terminate()

    def visitor(ctx):
        obs = yield
        obs = yield Action.sleep(40)
        obs = yield Action.move(0)  # arrives next to the meet-sleeper? no: onto it
        yield Action.terminate()

    def make_specs():
        return [
            _spec(1, 1, sleeper_meet),
            _spec(2, 4, sleeper_deep),
            _spec(3, 2, visitor),  # port 0 from node 2 leads to node 1
        ]

    run_both(g, make_specs)


def test_card_publication_timing_with_cache():
    """Co-located publishers: later robots must see start-of-round cards."""
    g = gg.star(5)

    def publisher(ctx):
        obs = yield
        for i in range(4):
            obs = yield Action.stay(card={"v": i})
        yield Action.terminate()

    def mover_publisher(ctx):
        obs = yield
        obs = yield Action.stay(card={"w": "a"})
        obs = yield Action.move(0, card={"w": "b"})
        obs = yield Action.stay(card={"w": "c"})
        obs = yield Action.stay()
        yield Action.terminate()

    def reader(ctx):
        obs = yield
        for _ in range(4):
            obs = yield Action.stay(card={"seen": sorted(
                (c.get("id"), c.get("v"), c.get("w")) for c in obs.cards
            )})
        yield Action.terminate()

    def make_specs():
        return [
            _spec(1, 0, publisher),
            _spec(2, 0, mover_publisher),
            _spec(3, 0, reader),
            _spec(4, 1, reader),
        ]

    run_both(g, make_specs)


def test_remote_follower_invalid_inherited_port_raises_like_seed():
    """Non-strict mode lets a follower track a non-co-located leader; if it
    inherits a port its own node lacks, both schedulers must raise
    PortGraphError (not walk another node's CSR slots, not IndexError)."""
    from repro.graphs.port_graph import PortGraphError

    g = gg.path(4)

    def leader(ctx):
        obs = yield
        obs = yield Action.move(1)  # node 1 has degree 2; port 1 exists
        yield Action.terminate()

    def follower(ctx):
        obs = yield
        obs = yield Action.follow_once(2)  # at node 0: degree 1, port 1 invalid
        yield Action.terminate()

    outcomes = []
    for cls in (Scheduler, ReferenceScheduler):
        trace = TraceRecorder()
        sched = cls(g, [_spec(2, 1, leader), _spec(1, 0, follower)], trace=trace)
        with pytest.raises(PortGraphError) as exc:
            sched.run(max_rounds=50)
        # the leader's move applies before the follower's raises, in both
        outcomes.append((str(exc.value), sched.positions(), trace.events))
    assert outcomes[0] == outcomes[1]
    message, positions, events = outcomes[0]
    assert "degree 1" in message and "port 1" in message
    assert positions == {1: 0, 2: 2}
    assert [e.kind for e in events] == ["move"]  # the leader's applied move


def test_stop_on_gather_runs_match():
    g = gg.ring(6)

    def walker(ctx):
        obs = yield
        obs = yield Action.move(0)
        while True:
            # rotor: keep moving around the ring instead of bouncing back
            obs = yield Action.move((obs.entry_port + 1) % obs.degree)

    def sitter(ctx):
        obs = yield
        while True:
            obs = yield Action.stay()

    def make_specs():
        return [_spec(1, 0, walker), _spec(2, 3, sitter)]

    fast = run_both(g, make_specs, max_rounds=100, stop_on_gather=True)
    assert fast.metrics.first_gather_round is not None


# ---------------------------------------------------------------------------
# Hypothesis: random scripted robots, both schedulers, exact trace equality
# (``step_strategy``/``script_strategy``/``scripted_factory`` are the shared
# generators from repro.testing.strategies, re-exported by conftest)
# ---------------------------------------------------------------------------


@given(
    st.integers(0, 3),
    st.lists(script_strategy, min_size=1, max_size=4),
    st.data(),
)
@settings(max_examples=scaled_examples(100), deadline=None)
def test_scripted_robots_bit_identical(graph_pick, scripts, data):
    graph = [gg.ring(6), gg.path(5), gg.star(6), gg.erdos_renyi(7, seed=3)][graph_pick]
    starts = [
        data.draw(st.integers(0, graph.n - 1), label=f"start{i}")
        for i in range(len(scripts))
    ]

    def make_specs():
        return [
            RobotSpec(label=i + 1, start=s, factory=scripted_factory(sc))
            for i, (s, sc) in enumerate(zip(starts, scripts))
        ]

    run_both(graph, make_specs, max_rounds=10_000)


# ---------------------------------------------------------------------------
# Untraced differential: the SoA hot loop on real algorithms
# ---------------------------------------------------------------------------
# Tracing forces the general path, so the matrix tests above never execute
# the struct-of-arrays sweep; these repeat representative workloads with
# trace=None and compare positions/statuses/round/metrics.


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_matrix_faster_untraced_soa(name, graph):
    k = graph.n // 2 + 1
    starts = dispersed_random(graph, k, seed=44)
    labels = assign_labels(k, graph.n, seed=44)

    def make_specs():
        return [
            RobotSpec(label=l, start=s, factory=faster_gathering_program())
            for l, s in zip(labels, starts)
        ]

    fast = run_both_untraced(graph, make_specs)
    assert fast.all_terminated(), name


@pytest.mark.parametrize("name,graph", FAMILY_INSTANCES, ids=IDS)
def test_matrix_uxs_untraced_soa(name, graph):
    starts = dispersed_random(graph, 3, seed=43)
    labels = assign_labels(3, graph.n, seed=43)

    def make_specs():
        return [
            RobotSpec(label=l, start=s, factory=uxs_gathering_program())
            for l, s in zip(labels, starts)
        ]

    fast = run_both_untraced(graph, make_specs)
    assert fast.all_terminated(), name


def test_follow_cascade_untraced_soa():
    """The SoA cold paths: follow mid-sweep (mover reconstruction),
    cascade, woken-early bookkeeping — without a trace forcing the
    general path."""
    g = gg.ring(8)

    def leader(ctx):
        obs = yield
        obs = yield Action.move(0)
        obs = yield Action.move(0)
        yield Action.terminate()

    def follower(target):
        def prog(ctx):
            obs = yield
            yield Action.follow(target, on_leader_terminate="terminate")
            return

        return prog

    def waker(target):
        def prog(ctx):
            obs = yield
            obs = yield Action.follow(target, on_leader_terminate="wake")
            yield Action.terminate()

        return prog

    def make_specs():
        return [
            RobotSpec(label=5, start=0, factory=leader),
            RobotSpec(label=7, start=0, factory=follower(5)),
            RobotSpec(label=3, start=0, factory=follower(5)),
            RobotSpec(label=2, start=0, factory=follower(7)),
            RobotSpec(label=6, start=0, factory=waker(3)),
            RobotSpec(label=1, start=0, factory=follower(6)),
        ]

    fast = run_both_untraced(g, make_specs)
    assert fast.all_terminated()


def test_meet_sleep_mid_sweep_untraced_soa():
    """A wake_on_meet sleep appearing mid-SoA-round must reconstruct this
    round's earlier inline movers for arrival detection."""
    g = gg.path(5)

    def early_mover(ctx):  # label 1: moves before the sleeper acts
        obs = yield
        obs = yield Action.move(0)  # node 2 -> node 1
        obs = yield Action.stay()
        yield Action.terminate()

    def meet_sleeper(ctx):  # label 2 at node 1: sleeps this same round
        obs = yield
        obs = yield Action.sleep(None, wake_on_meet=True)
        yield Action.terminate()

    def make_specs():
        return [
            RobotSpec(label=1, start=2, factory=early_mover),
            RobotSpec(label=2, start=1, factory=meet_sleeper),
        ]

    fast = run_both_untraced(g, make_specs)
    assert fast.all_terminated()


# ---------------------------------------------------------------------------
# The scenario registry, differentially (all 9 curated entries)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_scenario_registry_differential(scenario_name):
    """Every compiled spec of every registered scenario runs bit-identical
    (positions, statuses, round counter, metrics) on the SoA engine vs the
    seed scheduler — activation models via the test shim, fault plans via
    the same program wrappers both schedulers consume."""
    scenario = get_scenario(scenario_name)
    for spec in scenario.specs:
        graph, starts, labels, factory_for = materialize(spec)
        plan = spec.fault_plan()
        factory = factory_for()

        def make_specs():
            return [
                RobotSpec(
                    label=l,
                    start=s,
                    factory=plan.wrap(i, factory) if plan is not None else factory,
                    knowledge=dict(spec.knowledge),
                )
                for i, (l, s) in enumerate(zip(labels, starts))
            ]

        from repro.sim.world import DEFAULT_MAX_ROUNDS

        fast = run_both_untraced(
            graph,
            make_specs,
            max_rounds=spec.max_rounds if spec.max_rounds is not None else DEFAULT_MAX_ROUNDS,
            stop_on_gather=spec.stop_on_gather,
            strict=spec.strict,
            activation=spec.activation,
            activation_args=dict(spec.activation_args),
        )
        assert fast is not None


# ---------------------------------------------------------------------------
# Hypothesis: random fault plans over scripted robots, bit-identical
# ---------------------------------------------------------------------------

@given(
    st.integers(0, 3),
    st.lists(script_strategy, min_size=2, max_size=4),
    fault_plan_strategy,
    st.data(),
)
@settings(max_examples=scaled_examples(60), deadline=None)
def test_fault_plans_bit_identical(graph_pick, scripts, plan_dict, data):
    """Crash/delay campaigns (program-level wrappers) stay bit-identical
    across both schedulers — traced (general path) and untraced (SoA)."""
    graph = [gg.ring(6), gg.path(5), gg.star(6), gg.erdos_renyi(7, seed=3)][graph_pick]
    k = len(scripts)
    plan = FaultPlan.from_dict(
        {
            kind: {i: v for i, v in table.items() if i < k}
            for kind, table in plan_dict.items()
        }
    )
    starts = [
        data.draw(st.integers(0, graph.n - 1), label=f"start{i}")
        for i in range(k)
    ]

    def make_specs():
        return [
            RobotSpec(
                label=i + 1,
                start=s,
                factory=plan.wrap(i, scripted_factory(sc)),
            )
            for i, (s, sc) in enumerate(zip(starts, scripts))
        ]

    run_both(graph, make_specs, max_rounds=10_000)
    run_both_untraced(graph, make_specs, max_rounds=10_000)
