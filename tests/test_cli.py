"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInformational:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "ring" in out and "lollipop" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "R1(n)" in out and "Faster-Gathering E6" in out

    def test_bounds_with_delta(self, capsys):
        assert main(["bounds", "--n", "10", "--max-degree", "3"]) == 0
        assert "Δ=3" in capsys.readouterr().out

    def test_plan(self, capsys):
        assert main(["plan", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "length T" in out and "certified" in out


class TestRun:
    def test_run_faster_default(self, capsys):
        rc = main(["run", "--family", "ring", "--n", "10", "--k", "6",
                   "--placement", "scatter"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gathered" in out and "regime" in out

    def test_run_undispersed(self, capsys):
        rc = main(["run", "--family", "erdos_renyi", "--n", "9", "--k", "3",
                   "--algorithm", "undispersed", "--placement", "undispersed"])
        assert rc == 0

    def test_run_tz_reports_first_gather(self, capsys):
        rc = main(["run", "--family", "ring", "--n", "8", "--k", "2",
                   "--algorithm", "tz"])
        assert rc == 0
        assert "no detection" in capsys.readouterr().out

    def test_run_with_knowledge(self, capsys):
        rc = main(["run", "--family", "ring", "--n", "10", "--k", "2",
                   "--placement", "pair-distance", "--pair-distance", "2",
                   "--max-degree", "2", "--hop-distance", "2"])
        assert rc == 0

    def test_pair_distance_requires_value(self):
        with pytest.raises(SystemExit):
            main(["run", "--placement", "pair-distance"])


class TestSweep:
    def test_sweep_prints_slope(self, capsys):
        rc = main(["sweep", "--family", "ring", "--algorithm", "undispersed",
                   "--placement", "undispersed", "--k", "3",
                   "--ns", "8", "12"])
        assert rc == 0
        assert "log-log slope" in capsys.readouterr().out


class TestReplicaFlags:
    def test_sweep_replicas_aggregates_rows(self, capsys):
        rc = main(["sweep", "--ns", "8", "12", "--replicas", "3",
                   "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds_mean" in out and "× 3 replicas" in out
        assert "log-log slope" in out

    def test_sweep_batch_routes_through_engine(self, capsys):
        rc = main(["sweep", "--ns", "8", "--replicas", "3", "--batch",
                   "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        # replicas 1.. group and batch; replica 0 keeps its pinned seeds
        assert "(2 batched)" in out and "batch=on" in out

    def test_sweep_batched_rows_equal_scalar_rows(self, capsys):
        argv = ["sweep", "--ns", "8", "12", "--replicas", "3"]
        assert main(argv) == 0
        scalar_out = capsys.readouterr().out.splitlines()
        assert main(argv + ["--batch"]) == 0
        batched_out = capsys.readouterr().out.splitlines()
        # the table is identical; only the (optional) runtime line differs
        table = [l for l in scalar_out if "|" in l or "slope" in l]
        table_b = [l for l in batched_out if "|" in l or "slope" in l]
        assert table == table_b

    def test_scenarios_run_replicas(self, capsys):
        rc = main(["scenarios", "run", "clean-sync", "--replicas", "2",
                   "--batch", "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replica" in out  # the per-row replica column appears

    def test_sweep_scenario_honors_replica_flags(self, capsys):
        rc = main(["sweep", "--scenario", "clean-sync", "--replicas", "2",
                   "--batch"])
        assert rc == 0
        assert "replica" in capsys.readouterr().out

    def test_sweep_scenario_still_rejects_shape_flags(self):
        with pytest.raises(SystemExit, match="ignored"):
            main(["sweep", "--scenario", "clean-sync", "--k", "5"])


class TestEngineFlag:
    def test_sweep_engine_batch_rows_equal_legacy_batch_rows(self, capsys):
        argv = ["sweep", "--ns", "8", "--replicas", "3", "--workers", "1"]
        assert main(argv + ["--engine", "batch-list"]) == 0
        engine_out = capsys.readouterr().out.splitlines()
        assert main(argv + ["--batch"]) == 0
        legacy_out = capsys.readouterr().out.splitlines()
        table_e = [l for l in engine_out if "|" in l or "slope" in l]
        table_l = [l for l in legacy_out if "|" in l or "slope" in l]
        assert table_e == table_l
        assert any("(2 batched)" in l for l in engine_out)
        assert any("engine=batch-list" in l for l in engine_out)

    def test_sweep_scalar_engines_match_default(self, capsys):
        def table(lines):
            return [l for l in lines if "|" in l or "slope" in l]

        argv = ["sweep", "--ns", "8", "12", "--workers", "1"]
        assert main(argv) == 0
        default_table = table(capsys.readouterr().out.splitlines())
        for name in ("reference", "incremental", "soa"):
            assert main(argv + ["--engine", name]) == 0
            lines = capsys.readouterr().out.splitlines()
            assert table(lines) == default_table, name
            assert any(f"engine={name}" in l for l in lines), name

    def test_batch_flag_warns_deprecated_on_stderr(self, capsys):
        rc = main(["sweep", "--ns", "8", "--replicas", "2", "--batch",
                   "--workers", "1"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "--batch is deprecated" in err
        assert "--engine batch-numpy" in err

    def test_explicit_engine_wins_over_legacy_batch(self, capsys):
        rc = main(["sweep", "--ns", "8", "--replicas", "2", "--batch",
                   "--engine", "soa", "--workers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine=soa" in out
        assert "batched" not in out  # nothing routed through the replica engine

    def test_unknown_engine_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--ns", "8", "--engine", "warp-drive"])

    def test_scenarios_run_engine_flag(self, capsys):
        rc = main(["scenarios", "run", "clean-sync", "--replicas", "2",
                   "--engine", "batch-list", "--workers", "1"])
        assert rc == 0
        assert "replica" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "bogus"])
