"""Property: the radius-i ball DFS visits exactly the i-ball and returns.

`ball_dfs` is the engine of i-Hop-Meeting; Lemma 10's meeting guarantee
needs it to (a) visit every node within i hops, (b) return to its start,
(c) never exceed the padded cycle budget.  We drive a probe robot through
it and read the ground truth from a replay recording.
"""

import pytest

from repro.core import bounds
from repro.core.hop_meeting import ball_dfs
from repro.graphs import generators as gg
from repro.graphs.traversal import ball
from repro.sim.actions import Action
from repro.sim.replay import ReplayRecorder
from repro.sim.robot import RobotSpec
from repro.sim.world import World


def probe_factory(radius):
    def factory(ctx):
        def program(ctx=ctx):
            obs = yield
            obs, leader = yield from ball_dfs(obs, radius, ctx.label)
            assert leader is None  # probe runs alone
            yield Action.terminate()

        return program(ctx)

    return factory


GRAPHS = [
    ("ring", gg.ring(10)),
    ("path", gg.path(8)),
    ("star", gg.star(8)),
    ("grid", gg.grid(3, 4)),
    ("btree", gg.binary_tree(9)),
    ("er", gg.erdos_renyi(10, seed=4)),
    ("lollipop", gg.lollipop(9)),
    ("ring-rand", gg.ring(10, numbering="random", seed=6)),
]


@pytest.mark.parametrize("radius", [1, 2, 3])
@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_ball_dfs_visits_exactly_the_ball(name, graph, radius):
    for start in (0, graph.n // 2):
        rec = ReplayRecorder(changes_only=False)
        World(graph, [RobotSpec(5, start, probe_factory(radius))]).run(replay=rec)
        visited = {f.as_dict()[5] for f in rec}
        expected = set(ball(graph, start, radius))
        assert visited == expected, (name, radius, start)
        # returns home
        assert rec.frames[-1].as_dict()[5] == start


@pytest.mark.parametrize("radius", [1, 2])
def test_ball_dfs_moves_within_budget(radius):
    g = gg.complete(7)  # degree n-1 everywhere: the tight case
    rec = ReplayRecorder(changes_only=False)
    res = World(g, [RobotSpec(5, 0, probe_factory(radius))]).run(replay=rec)
    budget = bounds.hop_cycle_length(radius, g.n)
    assert res.metrics.total_moves <= budget


def test_ball_dfs_radius_zero_ball_is_start_only():
    g = gg.ring(6)
    rec = ReplayRecorder(changes_only=False)
    World(g, [RobotSpec(5, 2, probe_factory(0))]).run(replay=rec)
    assert {f.as_dict()[5] for f in rec} == {2}
