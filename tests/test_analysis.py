"""Tests for the experiment runner, fitting, and tables."""

import pytest

from repro.analysis.experiments import regime_for, run_gathering, verify_uxs_for_graph
from repro.analysis.fitting import loglog_slope, slope_within
from repro.analysis.tables import format_value, render_table
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg


class TestRegimes:
    def test_boundaries(self):
        n = 12
        assert regime_for(7, n) == "n3"       # >= 7
        assert regime_for(6, n) == "n4logn"   # 5..6
        assert regime_for(5, n) == "n4logn"
        assert regime_for(4, n) == "n5"

    def test_k_over_n(self):
        assert regime_for(20, 10) == "n3"


class TestRunGathering:
    def test_full_record(self):
        g = gg.ring(8)
        run = run_gathering(
            "faster", g, [0, 0, 4], [3, 7, 12], lambda: faster_gathering_program()
        )
        assert run.gathered and run.detected
        assert run.n == 8 and run.k == 3
        assert run.min_pair_distance == 0
        row = run.as_row()
        assert row["algorithm"] == "faster"
        assert row["rounds"] == run.rounds

    def test_misaligned_inputs(self):
        g = gg.ring(6)
        with pytest.raises(ValueError):
            run_gathering("x", g, [0, 1], [3], lambda: undispersed_gathering_program())

    def test_uxs_verification_runs(self):
        verify_uxs_for_graph(gg.ring(8))  # should not raise

    def test_knowledge_passed_through(self):
        g = gg.ring(10)
        run = run_gathering(
            "faster-hint", g, [0, 1], [3, 9],
            lambda: faster_gathering_program(),
            knowledge={"hop_distance": 1},
        )
        assert run.gathered and run.detected


class TestFitting:
    def test_exact_power_law(self):
        ns = [8, 16, 32, 64]
        ys = [n**3 for n in ns]
        assert abs(loglog_slope(ns, ys) - 3.0) < 1e-9

    def test_slope_within(self):
        ns = [8, 16, 32]
        ys = [2 * n**2 for n in ns]
        ok, s = slope_within(ns, ys, claimed=3.0)
        assert ok and abs(s - 2.0) < 1e-9
        ok, _ = slope_within(ns, ys, claimed=1.0, tol=0.4)
        assert not ok

    def test_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([2, 2], [1, 1])
        with pytest.raises(ValueError):
            loglog_slope([2, 4], [1, 2, 3])


class TestTables:
    def test_render_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": None}]
        out = render_table(rows, title="t")
        assert "t" in out and "22" in out and "-" in out

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = render_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(3.14159) == "3.14"
        assert format_value(1234567) == "1.23e+06"
        assert format_value(0.0) == "0"
