"""Tests for the pluggable activation models (repro.sim.activation).

Two obligations:

* the default path is untouched — ``activation=None`` and an explicit
  :class:`SynchronousActivation` are bit-identical (the full differential
  suite additionally pins ``None`` against the reference scheduler);
* the weaker models are deterministic, fair, and actually weaker — they
  activate fewer robots per round, never zero.
"""

import pytest

from repro.graphs import generators as gg
from repro.sim.activation import (
    ACTIVATION_MODELS,
    AdversarialActivation,
    BiasedActivation,
    RandomActivation,
    RoundRobinActivation,
    SynchronousActivation,
    activation_names,
    build_activation,
)
from repro.sim.actions import Action
from repro.sim.errors import ProtocolViolation
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder


def walker(steps: int):
    """A robot that moves through port 0 for ``steps`` activations, then
    terminates.  Progress is per-activation, not per-round, so activation
    scheduling is directly visible in the move counts."""

    def factory(ctx):
        def program():
            obs = yield
            for _ in range(steps):
                obs = yield Action.move(0)
            yield Action.terminate()

        return program()

    return factory


def make_specs(k=4, steps=6):
    return [RobotSpec(label=i + 1, start=i, factory=walker(steps)) for i in range(k)]


def run_sched(activation, k=4, steps=6, trace=None):
    sched = Scheduler(gg.ring(8), make_specs(k, steps), trace=trace, activation=activation)
    sched.run(max_rounds=10_000)
    return sched


class TestSynchronousEquivalence:
    def test_explicit_sync_model_is_bit_identical_to_none(self):
        t_none, t_sync = TraceRecorder(), TraceRecorder()
        a = run_sched(None, trace=t_none)
        b = run_sched(SynchronousActivation(), trace=t_sync)
        assert t_none.events == t_sync.events
        assert a.positions() == b.positions()
        assert a.round == b.round
        assert a.metrics.as_dict() == b.metrics.as_dict()

    def test_sync_registry_entry_builds_none(self):
        assert build_activation("sync") is None
        assert build_activation("sync", {}) is None


class TestRoundRobin:
    def test_groups_take_turns(self):
        sched = run_sched(RoundRobinActivation(groups=2), k=4, steps=5)
        # every robot got exactly its 5 moves + terminate, but spread over
        # ~2x the rounds of the synchronous run (6 rounds)
        assert all(r.moves == 5 for r in sched.robots)
        assert sched.round > 6

    def test_all_robots_eventually_finish(self):
        for groups in (1, 2, 3, 4, 7):
            sched = run_sched(RoundRobinActivation(groups=groups), k=4, steps=3)
            assert sched.all_terminated(), groups

    def test_groups_of_one_is_synchronous(self):
        t_rr, t_sync = TraceRecorder(), TraceRecorder()
        a = run_sched(RoundRobinActivation(groups=1), trace=t_rr)
        b = run_sched(None, trace=t_sync)
        assert t_rr.events == t_sync.events
        assert a.positions() == b.positions()

    def test_deterministic(self):
        a = run_sched(RoundRobinActivation(groups=3))
        b = run_sched(RoundRobinActivation(groups=3))
        assert a.positions() == b.positions()
        assert a.round == b.round

    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            RoundRobinActivation(groups=0)


class TestAdversarial:
    def test_one_activation_per_round(self):
        sched = run_sched(AdversarialActivation(budget=1), k=4, steps=5)
        # 4 robots x (5 moves + 1 terminate) = 24 activations, one per round
        assert sched.round == 24
        assert all(r.active_rounds == 6 for r in sched.robots)

    def test_fairness_no_robot_starves_forever(self):
        sched = run_sched(AdversarialActivation(budget=1), k=5, steps=4)
        assert sched.all_terminated()
        assert all(r.moves == 4 for r in sched.robots)

    def test_budget_caps_not_pads(self):
        # budget larger than the robot count degrades to synchronous
        t_adv, t_sync = TraceRecorder(), TraceRecorder()
        a = run_sched(AdversarialActivation(budget=99), trace=t_adv)
        b = run_sched(None, trace=t_sync)
        assert t_adv.events == t_sync.events
        assert a.positions() == b.positions()

    def test_deterministic(self):
        a = run_sched(AdversarialActivation(budget=2), k=5, steps=6)
        b = run_sched(AdversarialActivation(budget=2), k=5, steps=6)
        assert a.positions() == b.positions()
        assert a.round == b.round

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            AdversarialActivation(budget=-1)

    def test_budget_zero_is_noop(self):
        # budget=0 disarms the adversary: bit-identical to synchronous
        t_adv, t_sync = TraceRecorder(), TraceRecorder()
        a = run_sched(AdversarialActivation(budget=0), trace=t_adv)
        b = run_sched(None, trace=t_sync)
        assert t_adv.events == t_sync.events
        assert a.positions() == b.positions()

    def test_empty_due_is_noop(self):
        model = AdversarialActivation(budget=1)
        assert model.select([], round_=0) == []
        assert model._last_activated == {}


class TestRandom:
    def test_deterministic_given_seed(self):
        a = run_sched(RandomActivation(seed=7, rate=0.4), k=5, steps=6)
        b = run_sched(RandomActivation(seed=7, rate=0.4), k=5, steps=6)
        assert a.positions() == b.positions()
        assert a.round == b.round
        assert a.metrics.as_dict() == b.metrics.as_dict()

    def test_seed_changes_interleaving(self):
        rounds = {run_sched(RandomActivation(seed=s, rate=0.3), k=5, steps=8).round
                  for s in range(6)}
        assert len(rounds) > 1

    def test_all_robots_eventually_finish(self):
        sched = run_sched(RandomActivation(seed=3, rate=0.2), k=4, steps=4)
        assert sched.all_terminated()
        assert all(r.moves == 4 for r in sched.robots)

    def test_never_selects_empty(self):
        model = RandomActivation(seed=0, rate=0.0)
        sched = run_sched(model, k=4, steps=3)
        assert sched.all_terminated()
        assert model.select([], round_=0) == []

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            RandomActivation(rate=1.5)
        with pytest.raises(ValueError):
            RandomActivation(rate=-0.1)


class TestBiased:
    def test_deterministic_given_seed(self):
        a = run_sched(BiasedActivation(seed=11, budget=1, bias=4.0), k=4, steps=5)
        b = run_sched(BiasedActivation(seed=11, budget=1, bias=4.0), k=4, steps=5)
        assert a.positions() == b.positions()
        assert a.round == b.round

    def test_starves_but_stays_live(self):
        sched = run_sched(BiasedActivation(seed=2, budget=1, bias=8.0), k=4, steps=4)
        assert sched.all_terminated()
        assert all(r.moves == 4 for r in sched.robots)

    def test_budget_zero_is_noop(self):
        t_b, t_sync = TraceRecorder(), TraceRecorder()
        a = run_sched(BiasedActivation(seed=0, budget=0), trace=t_b)
        b = run_sched(None, trace=t_sync)
        assert t_b.events == t_sync.events
        assert a.positions() == b.positions()

    def test_empty_due_is_noop(self):
        model = BiasedActivation(seed=0, budget=1)
        assert model.select([], round_=0) == []

    def test_rejects_bad_options(self):
        with pytest.raises(ValueError):
            BiasedActivation(budget=-1)
        with pytest.raises(ValueError):
            BiasedActivation(bias=0.0)


class TestContract:
    def test_empty_selection_is_rejected(self):
        class Staller(SynchronousActivation):
            def select(self, due, round_):
                return []

        with pytest.raises(ProtocolViolation, match="selected no robot"):
            run_sched(Staller())

    def test_registry_names(self):
        expected = {"sync", "round-robin", "adversarial", "random", "biased"}
        assert expected <= set(activation_names())
        for name in ACTIVATION_MODELS:
            model = build_activation(name)
            assert model is None or hasattr(model, "select")

    def test_seeded_builders_pass_options(self):
        model = build_activation("random", {"seed": 9, "rate": 0.25})
        assert (model.seed, model.rate) == (9, 0.25)
        model = build_activation("biased", {"seed": 9, "budget": 2, "bias": 2.0})
        assert (model.seed, model.budget, model.bias) == (9, 2, 2.0)
        with pytest.raises(ValueError, match="unknown options"):
            build_activation("random", {"seeed": 1})
        with pytest.raises(ValueError, match="unknown options"):
            build_activation("biased", {"rate": 0.5})

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown activation"):
            build_activation("bogus")

    def test_unknown_options_rejected(self):
        """A typo'd option must raise, not silently run the default — it
        would cache a mislabeled experiment under the typo'd key."""
        with pytest.raises(ValueError, match="unknown options"):
            build_activation("round-robin", {"gruops": 5})
        with pytest.raises(ValueError, match="unknown options"):
            build_activation("adversarial", {"groups": 2})
        with pytest.raises(ValueError, match="unknown options"):
            build_activation("sync", {"budget": 1})
