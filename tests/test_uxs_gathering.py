"""Tests for UXS gathering with detection (Theorem 6)."""

import pytest

from repro.core import bounds
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from repro.uxs.generators import practical_plan
from repro.analysis.placement import dispersed_random
from tests.conftest import run_world


class TestTheorem6:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_any_number_of_robots(self, k):
        g = gg.ring(8)
        starts = dispersed_random(g, k, seed=k)
        labels = [2 * i + 3 for i in range(k)]
        res = run_world(g, starts, labels, uxs_gathering_program())
        assert res.gathered and res.detected

    @pytest.mark.parametrize(
        "graph",
        [gg.path(7), gg.star(7), gg.grid(3, 3), gg.lollipop(8),
         gg.erdos_renyi(9, seed=2), gg.ring(8, numbering="random", seed=5)],
        ids=["path", "star", "grid", "lollipop", "er", "ring-rand"],
    )
    def test_across_families(self, graph):
        starts = dispersed_random(graph, 3, seed=7)
        res = run_world(graph, starts, [3, 6, 13], uxs_gathering_program())
        assert res.gathered and res.detected

    def test_co_located_start_groups(self):
        g = gg.ring(8)
        res = run_world(g, [0, 0, 4], [3, 9, 5], uxs_gathering_program())
        assert res.gathered and res.detected

    def test_adversarial_equal_length_labels(self):
        """Equal-length IDs force symmetry breaking through differing bits."""
        g = gg.ring(9)
        # 12=1100, 13=1011... lengths equal (4 bits): 12,13,14
        res = run_world(g, [0, 3, 6], [12, 13, 14], uxs_gathering_program())
        assert res.gathered and res.detected

    def test_termination_never_premature(self):
        """No robot may terminate before gathering is complete (Lemma 3)."""
        g = gg.erdos_renyi(10, seed=11)
        starts = dispersed_random(g, 4, seed=3)
        res = run_world(g, starts, [3, 6, 9, 17], uxs_gathering_program())
        assert res.detected  # detected == every termination was gathered

    def test_rounds_within_schedule_budget(self):
        g = gg.ring(8)
        plan = practical_plan(8)
        res = run_world(g, [0, 4], [3, 9], uxs_gathering_program())
        worst = 1 + (bounds.schedule_bits(8) + 1) * 2 * plan.T + 1
        assert res.rounds <= worst

    def test_single_robot_terminates_after_own_schedule(self):
        g = gg.ring(6)
        plan = practical_plan(6)
        res = run_world(g, [2], [5], uxs_gathering_program())
        bits = bounds.id_bits_lsb_first(5)
        expected = 1 + (len(bits) + 1) * 2 * plan.T  # bits + final 2T wait
        assert res.gathered and res.detected
        assert abs(res.rounds - expected) <= 2


class TestLemmaMechanics:
    def test_larger_id_wins_leadership(self):
        """When groups merge, everyone follows the largest label."""
        g = gg.ring(6)
        res = run_world(g, [0, 0, 0], [3, 9, 5], uxs_gathering_program())
        # the largest label's stats should show it ran its full schedule
        assert res.gathered
        # follower terminates with leader: same final round for all
        terms = res.metrics.last_termination_round
        assert terms is not None

    def test_detect_false_runs_full_schedule(self):
        """The gathering-only variant (TZ baseline mode) still gathers."""
        g = gg.ring(8)
        res = run_world(g, [0, 4], [3, 9], uxs_gathering_program(detect=False),
                        stop_on_gather=True)
        assert res.metrics.first_gather_round is not None

    def test_oversized_label_rejected(self):
        g = gg.ring(4)
        with pytest.raises(Exception):
            # label far above n^b: the program itself must refuse
            run_world(g, [0], [10**9], uxs_gathering_program())
