"""Scheduler semantics tests: the execution model the algorithms rely on.

These tests pin down the Face-to-Face model conventions documented in
:mod:`repro.sim.actions` — card visibility timing, simultaneous moves,
follow resolution, sleep/wake, fast-forward and termination cascades.
"""

import pytest

from repro.graphs import generators as gg
from repro.graphs.port_graph import Edge, PortGraph
from repro.sim.actions import Action
from repro.sim.errors import ProtocolViolation, SimulationDeadlock, SimulationTimeout
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder


def path2():
    return PortGraph(2, [Edge(0, 1, 0, 0)])


def make(label, start, gen_fn, knowledge=None):
    return RobotSpec(label=label, start=start, factory=gen_fn, knowledge=knowledge or {})


def run(graph, specs, max_rounds=10_000, strict=True, trace=None):
    s = Scheduler(graph, specs, strict=strict, trace=trace)
    s.run(max_rounds)
    return s


class TestBasics:
    def test_immediate_terminate(self):
        def prog(ctx):
            obs = yield
            yield Action.terminate()

        s = run(path2(), [make(1, 0, prog)])
        assert s.all_terminated()
        assert s.metrics.rounds_executed == 1

    def test_move_updates_position_and_entry_port(self):
        seen = {}

        def prog(ctx):
            obs = yield
            assert obs.entry_port is None
            obs = yield Action.move(0)
            seen["entry"] = obs.entry_port
            seen["degree"] = obs.degree
            yield Action.terminate()

        s = run(gg.path(3), [make(1, 0, prog)])
        assert s.positions()[1] == 1
        assert seen["entry"] == 0  # arrived at node 1 through its port 0
        assert seen["degree"] == 2

    def test_invalid_port_raises(self):
        def prog(ctx):
            obs = yield
            yield Action.move(5)

        with pytest.raises(ProtocolViolation, match="invalid port"):
            run(path2(), [make(1, 0, prog)])

    def test_yield_none_rejected(self):
        def prog(ctx):
            obs = yield
            yield None

        with pytest.raises(ProtocolViolation, match="None"):
            run(path2(), [make(1, 0, prog)])

    def test_program_return_without_terminate_rejected(self):
        def prog(ctx):
            obs = yield
            obs = yield Action.stay()
            # returns: generator exhausted while still active

        with pytest.raises(ProtocolViolation, match="without terminating"):
            run(path2(), [make(1, 0, prog)])

    def test_non_bare_first_yield_rejected(self):
        def prog(ctx):
            yield Action.stay()

        with pytest.raises(ProtocolViolation, match="bare"):
            Scheduler(path2(), [make(1, 0, prog)])

    def test_duplicate_labels_rejected(self):
        def prog(ctx):
            obs = yield
            yield Action.terminate()

        with pytest.raises(ValueError, match="unique"):
            Scheduler(path2(), [make(1, 0, prog), make(1, 1, prog)])

    def test_timeout(self):
        def prog(ctx):
            obs = yield
            while True:
                obs = yield Action.stay()

        with pytest.raises(SimulationTimeout):
            run(path2(), [make(1, 0, prog)], max_rounds=50)


class TestCardTiming:
    def test_cards_visible_next_round(self):
        """A card published at round r is what co-located robots see at r+1."""
        seen = []

        def publisher(ctx):
            obs = yield
            obs = yield Action.stay(card={"v": 1})
            obs = yield Action.stay(card={"v": 2})
            yield Action.terminate()

        def reader(ctx):
            obs = yield
            for _ in range(3):
                other = [c for c in obs.cards if c["id"] == 1]
                seen.append(other[0].get("v") if other else None)
                obs = yield Action.stay()
            yield Action.terminate()

        run(path2(), [make(1, 0, publisher), make(2, 0, reader)])
        # round 0: initial card (no "v"); round 1: v=1; round 2: v=2
        assert seen == [None, 1, 2]

    def test_cards_include_self_and_are_sorted(self):
        def prog(ctx):
            obs = yield
            ids = [c["id"] for c in obs.cards]
            assert ids == sorted(ids)
            assert ctx.label in ids
            yield Action.terminate()

        run(path2(), [make(5, 0, prog), make(3, 0, prog)])

    def test_id_not_forgeable(self):
        seen = {}

        def forger(ctx):
            obs = yield
            obs = yield Action.stay(card={"id": 999})
            yield Action.terminate()

        def reader(ctx):
            obs = yield
            obs = yield Action.stay()
            seen["ids"] = sorted(c["id"] for c in obs.cards)
            yield Action.terminate()

        run(path2(), [make(1, 0, forger), make(2, 0, reader)])
        assert seen["ids"] == [1, 2]


class TestMeetingSemantics:
    def test_opposite_moves_swap_without_meeting(self):
        """Robots crossing the same edge in opposite directions don't meet."""
        met = {"a": False, "b": False}

        def prog(key):
            def inner(ctx):
                obs = yield
                obs = yield Action.move(0)
                met[key] = len(obs.cards) > 1
                yield Action.terminate()

            return inner

        s = run(path2(), [make(1, 0, prog("a")), make(2, 1, prog("b"))])
        assert s.positions() == {1: 1, 2: 0}
        assert not met["a"] and not met["b"]

    def test_mover_meets_stationary_next_round(self):
        seen = {}

        def mover(ctx):
            obs = yield
            obs = yield Action.move(0)
            seen["mover_sees"] = sorted(c["id"] for c in obs.cards)
            yield Action.terminate()

        def sitter(ctx):
            obs = yield
            obs = yield Action.stay()
            obs = yield Action.stay()
            yield Action.terminate()

        run(path2(), [make(1, 0, mover), make(2, 1, sitter)])
        assert seen["mover_sees"] == [1, 2]

    def test_first_gather_round_recorded(self):
        def mover(ctx):
            obs = yield
            obs = yield Action.move(0)
            yield Action.terminate()

        def sitter(ctx):
            obs = yield
            obs = yield Action.stay()
            yield Action.terminate()

        s = run(path2(), [make(1, 0, mover), make(2, 1, sitter)])
        assert s.metrics.first_gather_round == 0  # co-located after round 0's moves


class TestSleepAndFastForward:
    def test_sleep_until_exact_round(self):
        woke = {}

        def prog(ctx):
            obs = yield
            obs = yield Action.sleep(100)
            woke["round"] = obs.round
            yield Action.terminate()

        s = run(path2(), [make(1, 0, prog)])
        woken = woke["round"]
        assert woken == 100
        # fast-forward: far fewer executed rounds than simulated
        assert s.metrics.rounds_executed < 10
        assert s.round >= 100

    def test_sleep_into_past_rejected(self):
        def prog(ctx):
            obs = yield
            yield Action.sleep(0)

        with pytest.raises(ProtocolViolation, match="future"):
            run(path2(), [make(1, 0, prog)])

    def test_forever_sleep_without_wake_rejected(self):
        def prog(ctx):
            obs = yield
            yield Action.sleep(None, wake_on_meet=False)

        with pytest.raises(ProtocolViolation, match="unwakeable"):
            run(path2(), [make(1, 0, prog)])

    def test_wake_on_meet(self):
        woke = {}

        def sleeper(ctx):
            obs = yield
            obs = yield Action.sleep(1000, wake_on_meet=True)
            woke["round"] = obs.round
            woke["ids"] = sorted(c["id"] for c in obs.cards)
            yield Action.terminate()

        def visitor(ctx):
            obs = yield
            obs = yield Action.stay()
            obs = yield Action.stay()
            obs = yield Action.move(0)  # arrives end of round 2
            yield Action.terminate()

        run(path2(), [make(1, 1, sleeper), make(2, 0, visitor)])
        assert woke["round"] == 3  # round after the arrival
        assert woke["ids"] == [1, 2]

    def test_deadlock_detected(self):
        def sleeper(ctx):
            obs = yield
            obs = yield Action.sleep(None, wake_on_meet=True)
            yield Action.terminate()

        with pytest.raises(SimulationDeadlock):
            run(path2(), [make(1, 0, sleeper)])

    def test_jump_recorded_in_trace(self):
        def prog(ctx):
            obs = yield
            obs = yield Action.sleep(500)
            yield Action.terminate()

        tr = TraceRecorder()
        run(path2(), [make(1, 0, prog)], trace=tr)
        assert any(e.kind == "jump" for e in tr)


class TestFollow:
    def test_follow_once_mirrors_move(self):
        def leader(ctx):
            obs = yield
            obs = yield Action.move(1)  # node 1, port 1 -> node 2
            yield Action.terminate()

        def follower(ctx):
            obs = yield
            obs = yield Action.follow_once(2)
            yield Action.terminate()

        s = run(gg.path(3), [make(2, 1, leader), make(1, 1, follower)])
        assert s.positions() == {1: 2, 2: 2}

    def test_follow_chain_resolves_transitively(self):
        def leader(ctx):
            obs = yield
            obs = yield Action.move(1)  # node 1, port 1 -> node 2
            yield Action.terminate()

        def mid(ctx):
            obs = yield
            obs = yield Action.follow_once(3)
            yield Action.terminate()

        def tail(ctx):
            obs = yield
            obs = yield Action.follow_once(2)
            yield Action.terminate()

        s = run(gg.path(3), [make(3, 1, leader), make(2, 1, mid), make(1, 1, tail)])
        assert set(s.positions().values()) == {2}

    def test_follow_cycle_resolves_to_stay(self):
        def a(ctx):
            obs = yield
            obs = yield Action.follow_once(2)
            yield Action.terminate()

        def b(ctx):
            obs = yield
            obs = yield Action.follow_once(1)
            yield Action.terminate()

        s = run(path2(), [make(1, 0, a), make(2, 0, b)])
        assert s.positions() == {1: 0, 2: 0}

    def test_persistent_follow_until_round(self):
        resumed = {}

        def leader(ctx):
            obs = yield
            for _ in range(4):
                obs = yield Action.move(0)
            yield Action.terminate()

        def follower(ctx):
            obs = yield
            obs = yield Action.follow(2, until_round=3, on_leader_terminate="wake")
            resumed["round"] = obs.round
            yield Action.terminate()

        s = run(gg.ring(6), [make(2, 0, leader), make(1, 0, follower)])
        assert resumed["round"] == 3
        # follow applies in the round it is issued: follower mirrors rounds
        # 0, 1 and 2 (three moves) and resumes at round 3; the leader moves 4x
        assert s.metrics.moves_by_robot[1] == 3
        assert s.metrics.moves_by_robot[2] == 4

    def test_terminate_cascade(self):
        def leader(ctx):
            obs = yield
            obs = yield Action.stay()
            yield Action.terminate()

        def follower(ctx):
            obs = yield
            yield Action.follow(2, on_leader_terminate="terminate")
            return

        s = run(path2(), [make(2, 0, leader), make(1, 0, follower)])
        assert s.all_terminated()
        terms = [r.terminated_round for r in s.robots]
        assert terms[0] == terms[1]  # same round

    def test_cascade_through_chain(self):
        def leader(ctx):
            obs = yield
            yield Action.terminate()

        def follower(target):
            def inner(ctx):
                obs = yield
                yield Action.follow(target, on_leader_terminate="terminate")
                return

            return inner

        s = run(
            path2(),
            [make(3, 0, leader), make(2, 0, follower(3)), make(1, 0, follower(2))],
        )
        assert s.all_terminated()

    def test_follow_self_rejected(self):
        def prog(ctx):
            obs = yield
            yield Action.follow_once(1)

        with pytest.raises(ProtocolViolation, match="itself"):
            run(path2(), [make(1, 0, prog)])

    def test_strict_mode_rejects_remote_follow(self):
        def leader(ctx):
            obs = yield
            obs = yield Action.stay()
            yield Action.terminate()

        def follower(ctx):
            obs = yield
            yield Action.follow_once(2)

        with pytest.raises(ProtocolViolation, match="not co-located"):
            run(path2(), [make(2, 0, leader), make(1, 1, follower)], strict=True)

    def test_unknown_follow_target_rejected(self):
        def prog(ctx):
            obs = yield
            yield Action.follow_once(42)

        with pytest.raises(ProtocolViolation, match="unknown"):
            run(path2(), [make(1, 0, prog)])


class TestFastForwardJumpSemantics:
    """Pinning the interplay of fast-forward jumps with wake machinery."""

    def test_wake_on_meet_sleeper_across_jump(self):
        """A meet-wakeable sleeper must survive a jump and wake on arrival.

        Everyone sleeps after round 0, so the scheduler jumps straight to
        round 60; the visitor then walks onto the sleeper, who must wake at
        round 61 (the round after the arrival), not at any jump artifact.
        """
        woke = {}

        def sleeper(ctx):
            obs = yield
            obs = yield Action.sleep(None, wake_on_meet=True)
            woke["round"] = obs.round
            woke["ids"] = sorted(c["id"] for c in obs.cards)
            yield Action.terminate()

        def visitor(ctx):
            obs = yield
            obs = yield Action.sleep(60)
            obs = yield Action.move(0)  # node 2 -> node 1, arrives end of 60
            yield Action.terminate()

        tr = TraceRecorder()
        s = run(gg.path(4), [make(1, 1, sleeper), make(2, 2, visitor)], trace=tr)
        jumps = [e for e in tr if e.kind == "jump"]
        assert jumps and jumps[0].data == 60  # the fast-forward really fired
        assert woke["round"] == 61
        assert woke["ids"] == [1, 2]
        # far fewer executed rounds than simulated
        assert s.metrics.rounds_executed < 10 and s.round >= 61

    def test_follower_until_round_inside_jumped_interval(self):
        """A follower's ``until_round`` must bound a jump even when its
        leader sleeps far past it."""
        resumed = {}

        def leader(ctx):
            obs = yield
            obs = yield Action.sleep(100)
            yield Action.terminate()

        def follower(ctx):
            obs = yield
            obs = yield Action.follow(2, until_round=40, on_leader_terminate="wake")
            resumed["round"] = obs.round
            yield Action.terminate()

        tr = TraceRecorder()
        s = run(path2(), [make(2, 0, leader), make(1, 0, follower)], trace=tr)
        assert resumed["round"] == 40  # woke exactly at until_round
        jump_targets = [e.data for e in tr if e.kind == "jump"]
        assert jump_targets[0] == 40  # first jump stops at the follower...
        assert 100 in jump_targets  # ...later ones carry on to the leader
        assert s.round >= 100

    def test_stop_on_gather_exactly_at_max_rounds(self):
        """Gathering in the final permitted round beats the timeout check."""

        def walker(ctx):
            obs = yield
            obs = yield Action.move(0)
            while True:
                obs = yield Action.move((obs.entry_port + 1) % obs.degree)

        def sitter(ctx):
            obs = yield
            while True:
                obs = yield Action.stay()

        # the walker reaches node 3 at the end of round 2
        g = gg.path(4)
        specs = [make(1, 0, walker), make(2, 3, sitter)]
        s = Scheduler(g, specs, strict=True)
        s.run(max_rounds=2, stop_on_gather=True)
        assert s.metrics.first_gather_round == 2
        assert s.all_gathered() and not s.all_terminated()

    def test_stop_on_gather_one_round_late_times_out(self):
        """One round short and the same workload must raise the timeout."""

        def walker(ctx):
            obs = yield
            obs = yield Action.move(0)
            while True:
                obs = yield Action.move((obs.entry_port + 1) % obs.degree)

        def sitter(ctx):
            obs = yield
            while True:
                obs = yield Action.stay()

        g = gg.path(4)
        specs = [make(1, 0, walker), make(2, 3, sitter)]
        s = Scheduler(g, specs, strict=True)
        with pytest.raises(SimulationTimeout):
            s.run(max_rounds=1, stop_on_gather=True)


class TestTerminationBookkeeping:
    def test_termination_while_apart_flags_metrics(self):
        def prog(ctx):
            obs = yield
            yield Action.terminate()

        s = run(path2(), [make(1, 0, prog), make(2, 1, prog)])
        assert not s.metrics.terminations_all_gathered

    def test_termination_together_ok(self):
        def prog(ctx):
            obs = yield
            yield Action.terminate()

        s = run(path2(), [make(1, 0, prog), make(2, 0, prog)])
        assert s.metrics.terminations_all_gathered


class TestPositionsQuery:
    """``positions()`` under the SoA engine: array-derived, correct in both
    regimes and across their transitions (the historical implementation
    rebuilt the dict from robot attributes, which the SoA engine only
    synchronizes at boundaries — the regression this pins)."""

    def test_positions_track_every_round_across_regimes(self):
        g = gg.ring(8)

        def walker(ctx):  # SoA rounds
            obs = yield
            for _ in range(3):
                obs = yield Action.move(0)
            obs = yield Action.sleep(obs.round + 3)  # forces wake machinery
            obs = yield Action.move(1)
            yield Action.terminate()

        def tracer(ctx):  # trace=None here, but give it cold actions too
            obs = yield
            obs = yield Action.sleep(obs.round + 2)
            for _ in range(4):
                obs = yield Action.move(1)
            yield Action.terminate()

        from repro.sim.reference import ReferenceScheduler

        specs = lambda: [  # noqa: E731 - two identical spec lists
            RobotSpec(label=1, start=0, factory=walker),
            RobotSpec(label=2, start=4, factory=tracer),
        ]
        fast = Scheduler(g, specs())
        seed = ReferenceScheduler(g, specs())
        while not fast.all_terminated():
            fast._step()
            seed._step()
            assert fast.positions() == seed.positions()
        assert fast.positions() == seed.positions()

    def test_positions_returns_fresh_dict(self):
        g = gg.ring(4)

        def sitter(ctx):
            obs = yield
            yield Action.terminate()

        sched = Scheduler(g, [RobotSpec(label=1, start=2, factory=sitter)])
        snapshot = sched.positions()
        snapshot[1] = 99  # mutating the copy must not corrupt the engine
        assert sched.positions() == {1: 2}
