"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.graphs import generators as gg
from repro.graphs.port_graph import PortGraph
from repro.sim.robot import RobotSpec
from repro.sim.world import World, RunResult

# Shared hypothesis strategies live in the importable package module
# (repro.testing.strategies) so the fuzzer's tests and the property suite
# draw from one vocabulary; re-exported here unchanged for test-local use.
from repro.testing.strategies import (  # noqa: F401
    activation_strategy,
    fault_plan_strategy,
    placements,
    random_port_graph,
    script_strategy,
    scripted_factory,
    scripts,
    step_strategy,
)

#: Multiplier for hypothesis example counts.  1 for ordinary runs; the
#: nightly workflow sets ``REPRO_HYPOTHESIS_SCALE`` (see docs/CI.md) to
#: sweep the property suites much deeper without slowing PR feedback.
HYPOTHESIS_SCALE = max(1, int(os.environ.get("REPRO_HYPOTHESIS_SCALE", "1")))


def scaled_examples(n: int) -> int:
    """``max_examples`` for a property test: ``n`` scaled by the nightly
    multiplier (use inside ``@settings``)."""
    return n * HYPOTHESIS_SCALE


def small_battery() -> List[PortGraph]:
    """A deterministic mixed bag of small graphs used by integration tests."""
    return [
        gg.ring(8),
        gg.path(7),
        gg.grid(3, 3),
        gg.complete(6),
        gg.star(7),
        gg.binary_tree(7),
        gg.lollipop(8),
        gg.erdos_renyi(9, seed=3),
        gg.random_regular(8, 3, seed=5),
        gg.ring(8, numbering="random", seed=11),
        gg.erdos_renyi(9, seed=3, numbering="random"),
    ]


@pytest.fixture(scope="session")
def battery() -> List[PortGraph]:
    return small_battery()


def run_world(
    graph: PortGraph,
    placement: Sequence[int],
    labels: Sequence[int],
    factory,
    knowledge: Optional[Dict] = None,
    strict: bool = True,
    **run_kwargs,
) -> RunResult:
    """Build a world with one shared program factory and run it."""
    specs = [
        RobotSpec(label=l, start=s, factory=factory, knowledge=dict(knowledge or {}))
        for l, s in zip(labels, placement)
    ]
    return World(graph, specs, strict=strict).run(**run_kwargs)
