"""Cross-engine fuzz corpus replay: found worst cases are engine-portable.

A seeded campaign (fixed seed, fixed budget — the same invocation CI's
fuzz-smoke step runs) produces minimized corpus entries; every entry is
then replayed under every registered backend in
:func:`repro.sim.engines.list_engines` and asserted **bit-identical**:

* at the runtime layer — the full :class:`~repro.analysis.experiments.
  GatheringRun` record (rounds, detection, metrics, fault extras) equals
  the stored one under each engine;
* at the world layer — positions, per-robot stats, and per-robot metrics
  agree across every engine that runs the spec natively.

Engine scope follows declared capabilities: fault-plan entries are plain
program wrappers and replay under all backends including the seed
``reference`` scheduler; activation-carrying entries replay under every
backend that supports (or scalar-falls-back around) non-synchronous
activation — :func:`repro.search.replayable_engines` is the single
source of that scoping, and this suite pins it.

Parametrized ids use underscores (``batch_list``), matching
``test_engine_conformance`` conventions so ``-k`` selects one backend.
"""

import pytest

from repro.runtime import ResultCache, materialize
from repro.runtime.api import ExecutionStats
from repro.search import (
    FuzzCampaign,
    entry_from_result,
    replay_entry,
    replayable_engines,
)
from repro.sim.activation import build_activation
from repro.sim.engines import get_engine, list_engines
from repro.sim.robot import RobotSpec
from repro.sim.world import World

ENGINES = list_engines()
ENGINE_IDS = [name.replace("-", "_") for name in ENGINES]

#: The CI fuzz-smoke invocation: small, fast, and known (for this seed) to
#: find both a fault-plan winner and activation winners.
CAMPAIGN_SEED = 0
CAMPAIGN_BUDGET = 20


@pytest.fixture(scope="module")
def campaign_corpus(tmp_path_factory):
    """Minimized corpus entries from one seeded campaign (shared cache)."""
    cache = ResultCache(tmp_path_factory.mktemp("fuzz-cache"))
    campaign = FuzzCampaign(seed=CAMPAIGN_SEED, budget=CAMPAIGN_BUDGET, cache=cache)
    report = campaign.run()
    assert report.minimized, "the seeded campaign must find at least one worst case"
    entries = [
        entry_from_result(
            r,
            found={
                "seed": CAMPAIGN_SEED,
                "budget": CAMPAIGN_BUDGET,
                "iteration": r.iteration,
            },
        )
        for r in report.minimized
    ]
    return cache, entries


def test_campaign_finds_regret_above_clean_baseline(campaign_corpus):
    """The acceptance bar: a schedule strictly above the clean-sync twin."""
    _, entries = campaign_corpus
    assert any(e.regret >= 1 for e in entries)
    for e in entries:
        assert e.rounds > e.baseline_rounds


def test_fault_entries_replay_under_every_engine(campaign_corpus):
    """Fault plans are program wrappers — invisible to all five backends."""
    _, entries = campaign_corpus
    fault_only = [
        e
        for e in entries
        if e.spec.activation == "sync" and not e.spec.activation_args
    ]
    assert fault_only, "campaign should minimize at least one fault-plan schedule"
    for e in fault_only:
        assert replayable_engines(e.spec) == ENGINES


def test_activation_entries_scope_out_reference_only(campaign_corpus):
    _, entries = campaign_corpus
    for e in entries:
        if e.spec.activation != "sync" or e.spec.activation_args:
            supported = replayable_engines(e.spec)
            assert "reference" not in supported
            assert supported == [n for n in ENGINES if n != "reference"]


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_corpus_replays_bit_identical(campaign_corpus, engine):
    """Every entry, re-executed live (no cache), equals the stored record."""
    _, entries = campaign_corpus
    replayed = 0
    for entry in entries:
        if engine not in replayable_engines(entry.spec):
            continue
        out = replay_entry(entry, engine=engine)
        assert out.ok, (entry.name, engine, out.error)
        assert out.record.rounds == entry.rounds, (entry.name, engine)
        assert out.matches, (entry.name, engine)
        replayed += 1
    assert replayed, f"no corpus entry is replayable under {engine}"


# ---------------------------------------------------------------------------
# World-level conformance: positions, per-robot stats, per-robot metrics
# ---------------------------------------------------------------------------


def _world_digest(spec, engine):
    """Run ``spec`` under ``engine`` at the world layer; everything the
    result exposes, including per-robot stats and per-robot metrics."""
    graph, starts, labels, factory_for = materialize(spec)
    plan = spec.fault_plan()
    factory = factory_for()
    fleet = [
        RobotSpec(
            label=label,
            start=start,
            factory=plan.wrap(i, factory) if plan else factory,
            knowledge=dict(spec.knowledge),
        )
        for i, (label, start) in enumerate(zip(labels, starts))
    ]
    model = build_activation(spec.activation, spec.activation_args)
    kwargs = {"stop_on_gather": spec.stop_on_gather, "engine": engine}
    if spec.max_rounds is not None:
        kwargs["max_rounds"] = spec.max_rounds
    if model is not None:
        kwargs["activation"] = model
    result = World(graph, fleet, strict=spec.strict).run(**kwargs)
    metrics = result.metrics
    return {
        "rounds": result.rounds,
        "gathered": result.gathered,
        "detected": result.detected,
        "final_node": result.final_node,
        "positions": dict(result.positions),
        "stats": result.stats,
        "metrics": {
            **metrics.as_dict(),
            "moves_by_robot": metrics.moves_by_robot,
            "active_rounds_by_robot": metrics.active_rounds_by_robot,
        },
    }


def _native_engines(spec):
    """Engines that run ``spec`` directly at the world layer (no scalar
    fallback exists down here, so activation needs the declared capability)."""
    needs_activation = spec.activation != "sync" or bool(spec.activation_args)
    return [
        name
        for name in ENGINES
        if not needs_activation or get_engine(name).capabilities.supports_activation
    ]


@pytest.mark.parametrize("engine", ENGINES, ids=ENGINE_IDS)
def test_world_level_per_robot_state_identical(campaign_corpus, engine):
    """Positions, per-robot stats, and per-robot move counts agree with the
    first supporting engine's run — not just the flat record."""
    _, entries = campaign_corpus
    compared = 0
    for entry in entries:
        native = _native_engines(entry.spec)
        if engine not in native:
            continue
        oracle = _world_digest(entry.spec, native[0])
        assert oracle["rounds"] == entry.rounds, entry.name
        got = _world_digest(entry.spec, engine)
        assert got == oracle, (entry.name, engine)
        compared += 1
    assert compared, f"no corpus entry runs natively under {engine}"


# ---------------------------------------------------------------------------
# Cache identity: replaying into the campaign's cache is a pure hit
# ---------------------------------------------------------------------------


def test_second_replay_is_fully_cache_hit(campaign_corpus):
    """Replay through the campaign's own cache: every spec (and its clean
    twin) is already present, so nothing executes — the acceptance
    criterion's second consecutive invocation."""
    cache, entries = campaign_corpus
    stats = ExecutionStats()
    for entry in entries:
        for engine in replayable_engines(entry.spec):
            out = replay_entry(entry, engine=engine, cache=cache, stats=stats)
            assert out.matches, (entry.name, engine)
    assert stats.executed == 0
    assert stats.cache_hits > 0


def test_campaign_is_deterministic_across_instances(tmp_path):
    """Same seed + budget = same results, same minimized keys — with or
    without a disk cache (the controller never reads cache state)."""
    fresh = FuzzCampaign(seed=CAMPAIGN_SEED, budget=CAMPAIGN_BUDGET).run()
    cached = FuzzCampaign(
        seed=CAMPAIGN_SEED,
        budget=CAMPAIGN_BUDGET,
        cache=ResultCache(tmp_path / "cache"),
    ).run()
    assert [r.key for r in fresh.results] == [r.key for r in cached.results]
    assert [r.rounds for r in fresh.results] == [r.rounds for r in cached.results]
    assert [r.key for r in fresh.minimized] == [r.key for r in cached.minimized]
