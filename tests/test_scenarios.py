"""Tests for the scenario subsystem: registry, compilation, sweep, CLI.

Pins the curation rules the registry promises (every curated spec
completes; seeds pinned; expectations hold) and the acceptance behavior:
``sweep --scenario`` is deterministic and fully cached on re-invocation,
and ``scenarios describe`` prints the exact cache identities.
"""

import re

import pytest

from repro.analysis.sweeps import scenario_sweep
from repro.cli import main
from repro.runtime import ResultCache, RunSpec, execute
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    all_scenarios,
    clean_twin,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)

CURATED = [
    "clean-sync",
    "delayed-start",
    "single-crash-waiter",
    "crash-storm",
    "adversarial-activation",
    "semi-sync-round-robin",
    "ring-worst-case",
    "max-degree-knowledge",
    "hop-distance-knowledge",
]


class TestRegistry:
    def test_at_least_eight_scenarios(self):
        assert len(scenario_names()) >= 8

    def test_curated_names_present(self):
        assert set(CURATED) <= set(scenario_names())

    def test_compilation_is_stable(self):
        """Same registry entry -> byte-identical specs -> same cache keys."""
        for sc in all_scenarios():
            keys_a = [ResultCache.key_for(s) for s in sc.specs]
            keys_b = [ResultCache.key_for(s) for s in get_scenario(sc.name).specs]
            assert keys_a == keys_b

    def test_every_spec_pins_behavioral_seeds(self):
        for sc in all_scenarios():
            for spec in sc.specs:
                assert "seed" in spec.placement_args, (sc.name, "placement seed")
                assert "seed" in spec.labels_args, (sc.name, "labels seed")

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="clean-sync"):
            get_scenario("nope")

    def test_register_and_unregister(self):
        sc = Scenario(
            name="tmp-test-scenario",
            title="t",
            description="d",
            expectation="e",
            specs=(RunSpec(algorithm="faster", family="ring", graph={"n": 8}),),
        )
        register_scenario(sc)
        try:
            assert get_scenario("tmp-test-scenario") is sc
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(sc)
        finally:
            unregister_scenario("tmp-test-scenario")
        assert "tmp-test-scenario" not in SCENARIOS

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError, match="zero specs"):
            Scenario(name="x", title="t", description="d", expectation="e", specs=())

    def test_clean_twin_strips_scenario_fields_only(self):
        spec = get_scenario("single-crash-waiter").specs[0]
        twin = clean_twin(spec)
        assert twin.faults == {} and twin.activation == "sync"
        assert twin.algorithm == spec.algorithm
        assert twin.placement_args == spec.placement_args


class TestCuration:
    """Every curated spec completes — breakage is flagged, never raised."""

    @pytest.mark.parametrize("name", CURATED)
    def test_all_specs_complete(self, name):
        result = execute(list(get_scenario(name).specs))
        assert all(o.ok for o in result.outcomes), [
            (o.error_type, o.error) for o in result.outcomes if not o.ok
        ]


class TestScenarioSweep:
    def test_single_crash_waiter_expectation(self):
        rows = scenario_sweep("single-crash-waiter")["rows"]
        early, late = rows
        # crashed waiter => the mis-detection surfaces in the sweep row
        assert early["detected"] is False
        assert early["mis_detected"] is True
        assert early["crashed"] == 1 and early["stranded"] == 1
        # crash-after-gather is harmless
        assert late["detected"] is True and late["crashed"] == 0

    def test_delayed_start_expectation(self):
        rows = scenario_sweep("delayed-start")["rows"]
        uniform, asymmetric = rows
        # uniform delay preserves detection, costs delay + 1 rounds
        assert uniform["detected"] is True
        assert uniform["rounds_past_schedule"] == 11 + 1 - 1  # shift is delay rounds
        # a waiter delayed past the schedule is never collected
        assert asymmetric["detected"] is False and asymmetric["mis_detected"] is True
        assert asymmetric["stranded"] == 1

    def test_crash_storm_expectation(self):
        out = scenario_sweep("crash-storm")
        assert all(r["mis_detected"] for r in out["rows"])
        assert out["summary"]["mis_detection_rate"] == 1.0
        assert out["summary"]["stranded_total"] >= 2
        assert out["summary"]["crashed_total"] >= 2

    def test_clean_sync_expectation(self):
        out = scenario_sweep("clean-sync")
        assert all(r["detected"] for r in out["rows"])
        assert out["summary"]["mis_detection_rate"] == 0.0
        # clean specs are their own twins: zero delta by definition
        assert all(r["rounds_past_schedule"] == 0 for r in out["rows"])

    def test_adversarial_activation_expectation(self):
        rows = scenario_sweep("adversarial-activation")["rows"]
        assert all(r["gathered"] and not r["detected"] for r in rows)
        deltas = [r["rounds_past_schedule"] for r in rows]
        assert any(d > 0 for d in deltas) and any(d < 0 for d in deltas)

    def test_knowledge_ablations_never_hurt(self):
        for name in ("max-degree-knowledge", "hop-distance-knowledge"):
            rows = scenario_sweep(name)["rows"]
            granted, oblivious = rows
            assert granted["detected"] and oblivious["detected"]
            assert granted["rounds"] <= oblivious["rounds"], name

    def test_ring_worst_case_orders_label_schemes(self):
        rows = scenario_sweep("ring-worst-case")["rows"]
        long_labels, compact = rows
        assert long_labels["detected"] and compact["detected"]
        assert long_labels["rounds"] >= compact["rounds"]

    def test_twins_share_cache_with_scenario_runs(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario_sweep("delayed-start", cache=cache)
        # both delayed specs share one clean twin -> 2 scenario + 1 twin
        first_misses = cache.misses
        assert first_misses == 3
        scenario_sweep("delayed-start", cache=cache)
        assert cache.misses == first_misses  # fully cached second time

    def test_twin_equal_to_sibling_spec_is_not_rerun(self, tmp_path):
        """The natural with/without-faults pairing: the faulted spec's twin
        IS the clean sibling, so the batch must hold 2 runs, not 3."""
        clean = RunSpec(
            algorithm="undispersed", family="ring", graph={"n": 8},
            placement="undispersed", k=3,
            placement_args={"seed": 8}, labels_args={"seed": 8},
            uses_uxs=False, max_rounds=100_000,
        )
        from dataclasses import replace

        faulted = replace(clean, faults={"crash": {"0": 1}})
        register_scenario(Scenario(
            name="tmp-pairing", title="t", description="d", expectation="e",
            specs=(clean, faulted),
        ))
        try:
            cache = ResultCache(tmp_path)
            out = scenario_sweep("tmp-pairing", cache=cache)
        finally:
            unregister_scenario("tmp-pairing")
        assert cache.misses == 2  # clean + faulted; twin reused the sibling
        assert out["rows"][1]["rounds_past_schedule"] == 0

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            scenario_sweep("bogus")


class TestCli:
    def test_list_shows_all(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in CURATED:
            assert name in out

    def test_describe_round_trips_cache_identity(self, capsys):
        """The hashes `describe` prints ARE the cache keys of a fresh
        compilation — and the filenames a cache directory would hold."""
        assert main(["scenarios", "describe", "single-crash-waiter"]) == 0
        out = capsys.readouterr().out
        printed = re.findall(r"spec \d+: ([0-9a-f]{64})", out)
        specs = get_scenario("single-crash-waiter").specs
        assert printed == [ResultCache.key_for(s) for s in specs]

    def test_describe_shows_expectation_and_specs(self, capsys):
        assert main(["scenarios", "describe", "crash-storm"]) == 0
        out = capsys.readouterr().out
        assert "expectation:" in out and "compiled specs" in out

    def test_run_prints_campaign_summary(self, capsys):
        assert main(["scenarios", "run", "single-crash-waiter"]) == 0
        out = capsys.readouterr().out
        assert "mis-detection rate 0.50" in out
        assert "expectation:" in out

    def test_run_runtime_line_names_scenario(self, capsys, tmp_path):
        rc = main(["scenarios", "run", "delayed-start",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "scenario=delayed-start" in capsys.readouterr().out

    def test_sweep_scenario_cached_second_invocation(self, capsys, tmp_path):
        argv = ["sweep", "--scenario", "adversarial-activation",
                "--workers", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # 2 scenario specs + 2 distinct clean twins
        assert "4 executed, 0 cached" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 cached" in second
        # rows identical: everything except the runtime accounting line
        strip = lambda s: [l for l in s.splitlines() if not l.startswith("runtime:")]
        assert strip(first) == strip(second)

    def test_sweep_scenario_reports_campaign_metrics(self, capsys):
        """The README promises mis-detection rate and rounds_past_schedule
        for `sweep --scenario` too — same campaign path as `scenarios run`."""
        assert main(["sweep", "--scenario", "single-crash-waiter"]) == 0
        out = capsys.readouterr().out
        assert "rounds_past_schedule" in out
        assert "mis-detection rate 0.50" in out

    def test_sweep_scenario_rejects_ignored_flags(self, capsys):
        """Spec-shaping sweep flags are pinned by the registry — passing
        them alongside --scenario must fail loudly, not silently no-op."""
        with pytest.raises(SystemExit, match="--algorithm"):
            main(["sweep", "--scenario", "clean-sync", "--algorithm", "uxs"])
        with pytest.raises(SystemExit, match="--ns"):
            main(["sweep", "--scenario", "clean-sync", "--ns", "20"])
        with pytest.raises(SystemExit, match="--seed"):
            main(["sweep", "--scenario", "clean-sync", "--seed", "7"])

    def test_sweep_knowledge_ablation_in_runtime_line(self, capsys, tmp_path):
        rc = main(["sweep", "--ns", "8", "--k", "2", "--max-degree", "2",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "knowledge[max_degree]=2" in capsys.readouterr().out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "bogus"])
        with pytest.raises(SystemExit):
            main(["scenarios", "describe", "bogus"])


class TestSpecCompat:
    def test_default_scenario_fields_keep_historical_cache_keys(self):
        """A spec with no scenario fields serializes without them, so every
        pre-scenario cache entry keeps its exact key."""
        import json

        spec = RunSpec(algorithm="faster", family="ring", graph={"n": 8})
        payload = json.loads(spec.canonical_json())["spec"]
        assert "activation" not in payload
        assert "activation_args" not in payload
        assert "faults" not in payload

    def test_scenario_fields_enter_cache_identity_when_set(self):
        base = RunSpec(algorithm="faster", family="ring", graph={"n": 8})
        adv = RunSpec(algorithm="faster", family="ring", graph={"n": 8},
                      activation="adversarial")
        faulted = RunSpec(algorithm="faster", family="ring", graph={"n": 8},
                          faults={"crash": {"0": 1}})
        keys = {ResultCache.key_for(s) for s in (base, adv, faulted)}
        assert len(keys) == 3

    def test_unknown_activation_isolated_as_failure(self):
        from repro.runtime import execute_spec

        outcome = execute_spec(
            RunSpec(algorithm="faster", family="ring", graph={"n": 8},
                    activation="bogus")
        )
        assert not outcome.ok and "activation" in outcome.error

    def test_misspelled_activation_option_isolated_as_failure(self):
        from repro.runtime import execute_spec

        outcome = execute_spec(
            RunSpec(algorithm="faster", family="ring", graph={"n": 8},
                    activation="round-robin", activation_args={"gruops": 5})
        )
        assert not outcome.ok and "unknown options" in outcome.error

    def test_sync_with_options_is_invalid_and_not_clean(self):
        """'sync' takes no options: a sync spec carrying args is rejected
        (not silently run twice under two cache keys) and is not clean."""
        from repro.runtime import execute_spec

        spec = RunSpec(algorithm="faster", family="ring", graph={"n": 8},
                       activation="sync", activation_args={"budget": 1})
        assert not spec.is_clean()
        outcome = execute_spec(spec)
        assert not outcome.ok and "unknown options" in outcome.error

    def test_fault_tables_normalized_to_canonical_form(self):
        """Int keys, str keys, or a mix: equivalent fault tables must be
        equal specs with one cache key (and never crash serialization)."""
        base = dict(algorithm="faster", family="ring", graph={"n": 8})
        a = RunSpec(**base, faults={"crash": {2: 1, 10: 3}})
        b = RunSpec(**base, faults={"crash": {"2": 1, "10": 3}})
        assert a == b
        assert ResultCache.key_for(a) == ResultCache.key_for(b)
        mixed = RunSpec(**base, faults={"crash": {0: 1, "2": 5}})
        mixed.canonical_json()  # sort_keys must not see mixed key types
        with pytest.raises(ValueError, match="unknown fault kinds"):
            RunSpec(**base, faults={"meteor": {"0": 1}})

    def test_fault_plan_out_of_range_isolated(self):
        from repro.runtime import execute_spec

        outcome = execute_spec(
            RunSpec(algorithm="faster", family="ring", graph={"n": 8}, k=2,
                    faults={"crash": {"5": 1}})
        )
        assert not outcome.ok and "out of range" in outcome.error
