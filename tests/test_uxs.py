"""Tests for universal exploration sequences (construction + verification)."""

import pytest

from repro.graphs import generators as gg
from repro.graphs.enumeration import all_port_graphs
from repro.graphs.port_graph import PortGraph
from repro.uxs.generators import (
    certification_battery,
    exhaustive_plan,
    practical_plan,
    splitmix_offsets,
)
from repro.uxs.sequence import UxsPlan, exploration_walk, next_port
from repro.uxs.verify import (
    cover_step,
    covers,
    covers_all_starts,
    max_cover_step_all_starts,
)


class TestStepRule:
    def test_next_port_wraps(self):
        assert next_port(1, 3, 2) == 0
        assert next_port(0, 0, 5) == 0
        assert next_port(2, 2, 3) == 1

    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            next_port(0, 0, 0)

    def test_walk_length(self):
        g = gg.ring(6)
        visited = exploration_walk(g, (1, 1, 1), 0)
        assert len(visited) == 4
        assert visited[0] == 0

    def test_walk_deterministic(self):
        g = gg.erdos_renyi(8, seed=1)
        offsets = splitmix_offsets(8, 50)
        assert exploration_walk(g, offsets, 3) == exploration_walk(g, offsets, 3)


class TestSplitmix:
    def test_deterministic_in_n(self):
        assert splitmix_offsets(10, 100) == splitmix_offsets(10, 100)

    def test_different_n_different_streams(self):
        assert splitmix_offsets(10, 100) != splitmix_offsets(11, 100)

    def test_streams_differ(self):
        assert splitmix_offsets(10, 100, stream=0) != splitmix_offsets(10, 100, stream=1)

    def test_prefix_stability(self):
        # a longer request extends the same stream
        assert splitmix_offsets(9, 200)[:50] == splitmix_offsets(9, 50)

    def test_range(self):
        assert all(0 <= s < 12 for s in splitmix_offsets(12, 500))


class TestVerify:
    def test_cover_step_ring(self):
        g = gg.ring(5)
        # always turn "advance by 1 from entry": entry+1 mod 2 alternates...
        # use a known covering sequence: all 1s walks around the ring
        visited = exploration_walk(g, (1,) * 10, 0)
        assert set(visited) == set(range(5))
        step = cover_step(g, (1,) * 10, 0)
        assert step is not None and step <= 10

    def test_cover_step_none_when_too_short(self):
        g = gg.ring(8)
        assert cover_step(g, (1,), 0) is None

    def test_single_node_graph(self):
        g = PortGraph(1, [])
        assert cover_step(g, (), 0) == 0
        assert covers(g, (), 0)

    def test_covers_all_starts_consistency(self):
        g = gg.erdos_renyi(7, seed=5)
        plan = practical_plan(7)
        assert covers_all_starts(g, plan.offsets)
        worst = max_cover_step_all_starts(g, plan.offsets)
        assert worst is not None and worst <= plan.T

    def test_max_cover_none_on_failure(self):
        g = gg.ring(9)
        assert max_cover_step_all_starts(g, (0, 0)) is None


class TestPracticalPlan:
    def test_plan_is_cached_and_deterministic(self):
        a = practical_plan(8)
        b = practical_plan(8)
        assert a is b  # lru_cache
        assert a.provenance == "practical"
        assert a.n == 8

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 12, 16])
    def test_plan_covers_battery(self, n):
        plan = practical_plan(n)
        for g in certification_battery(n):
            assert covers_all_starts(g, plan.offsets), f"battery graph {g} uncovered"

    def test_plan_covers_unseen_family_instances(self):
        """The point of certification: graphs outside the battery (same n)
        should be covered too; the harness still double-checks per run."""
        plan = practical_plan(10)
        for g in [
            gg.grid(2, 5),
            gg.star(10),
            gg.caterpillar(10),
            gg.cycle_with_chords(10),
            gg.random_tree(10, seed=77),
            gg.erdos_renyi(10, seed=123, numbering="random"),
        ]:
            assert covers_all_starts(g, plan.offsets)

    def test_n1_plan_empty(self):
        assert practical_plan(1).T == 0

    def test_trim_keeps_worst_cover(self):
        plan = practical_plan(9)
        worst = 0
        for g in certification_battery(9):
            s = max_cover_step_all_starts(g, plan.offsets)
            assert s is not None
            worst = max(worst, s)
        assert worst <= plan.T

    def test_length_grows_reasonably(self):
        # sanity: T should be at most the initial doubling length
        import math

        for n in (6, 10, 14):
            plan = practical_plan(n)
            assert plan.T <= 8 * n * n * max(1, math.ceil(math.log2(n)))


class TestExhaustivePlan:
    @pytest.mark.parametrize("n", [2, 3])
    def test_truly_universal_tiny(self, n):
        plan = exhaustive_plan(n)
        for size in range(2, n + 1):
            for g in all_port_graphs(size):
                assert covers_all_starts(g, plan.offsets)

    @pytest.mark.slow
    def test_truly_universal_n4(self):
        plan = exhaustive_plan(4)
        for size in range(2, 5):
            for g in all_port_graphs(size):
                assert covers_all_starts(g, plan.offsets)

    def test_guard(self):
        with pytest.raises(ValueError):
            exhaustive_plan(5)

    def test_plan_metadata(self):
        plan = exhaustive_plan(3)
        assert plan.provenance == "exhaustive"
        assert len(plan) == plan.T


class TestUxsPlanType:
    def test_frozen(self):
        plan = UxsPlan(3, (1, 2, 3))
        with pytest.raises(AttributeError):
            plan.n = 4  # type: ignore[misc]

    def test_t_property(self):
        assert UxsPlan(3, (1, 2)).T == 2
