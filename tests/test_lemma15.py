"""Lemma 15: ``⌊n/c⌋ + 1`` robots ⇒ some pair within ``2c - 2`` hops.

This is the structural lemma powering Theorem 16; we attack it with the
adversarial scatterer (greedy farthest-point over several seeds — the
strongest placement we can construct) on every graph family and check the
bound is never violated.
"""

import pytest

from repro.analysis.placement import adversarial_scatter, min_pairwise_distance
from repro.graphs import generators as gg


FAMILIES = [
    gg.ring(12),
    gg.ring(21),
    gg.path(16),
    gg.grid(4, 5),
    gg.complete(9),
    gg.star(13),
    gg.binary_tree(15),
    gg.lollipop(14),
    gg.barbell(15),
    gg.erdos_renyi(18, seed=3),
    gg.random_regular(16, 3, seed=2),
    gg.random_tree(17, seed=5),
    gg.hypercube(4),
]


@pytest.mark.parametrize("c", [2, 3, 4])
@pytest.mark.parametrize("graph", FAMILIES, ids=lambda g: f"n{g.n}m{g.m}")
def test_lemma15_bound_never_violated(graph, c):
    n = graph.n
    k = n // c + 1
    if k < 2 or k > n:
        pytest.skip("degenerate k")
    bound = 2 * c - 2
    for seed in range(5):
        starts = adversarial_scatter(graph, k, seed=seed)
        d = min_pairwise_distance(graph, starts)
        assert d <= bound, (
            f"Lemma 15 violated: c={c}, k={k}, n={n}: min distance {d} > {bound}"
        )


def test_lemma15_tightness_on_ring():
    """The adversary can genuinely spread robots out: the *optimal* even
    spacing of k = n/c + 1 robots on a ring leaves min distance
    floor(n/k) >= 1, and an explicit even placement witnesses it (greedy
    farthest-point is a 2-approximation and may do worse, so we construct
    the even placement directly)."""
    g = gg.ring(24)
    c = 3
    k = 24 // c + 1  # 9 robots on 24 nodes
    even = [round(i * 24 / k) % 24 for i in range(k)]
    d_even = min_pairwise_distance(g, even)
    assert d_even == 2  # floor(24/9) = 2, still <= 2c-2 = 4 (Lemma 15 holds)
    greedy_best = max(
        min_pairwise_distance(g, adversarial_scatter(g, k, seed=seed))
        for seed in range(8)
    )
    assert greedy_best >= 1  # 2-approximation of the even spacing


def test_random_placements_even_closer():
    """Random placements should (weakly) never beat the adversary."""
    from repro.analysis.placement import dispersed_random

    g = gg.grid(5, 5)
    c = 2
    k = 25 // c + 1
    adv = max(
        min_pairwise_distance(g, adversarial_scatter(g, k, seed=s)) for s in range(5)
    )
    rnd = max(
        min_pairwise_distance(g, dispersed_random(g, k, seed=s)) for s in range(5)
    )
    assert rnd <= adv + 1  # random can tie by luck, never dominate clearly
