"""The compiled CSR form agrees with the PortGraph adjacency everywhere."""

import pickle

import pytest

from repro.graphs import generators as gg
from repro.graphs.csr import CSRPortGraph, bfs_distances_csr, is_connected_csr
from repro.graphs.port_graph import Edge, PortGraph, PortGraphError
from repro.graphs.traversal import bfs_distances


BATTERY = [
    gg.ring(9),
    gg.path(8),
    gg.grid(3, 4),
    gg.torus(3, 3),
    gg.complete(6),
    gg.star(7),
    gg.binary_tree(8),
    gg.lollipop(8),
    gg.hypercube(3),
    gg.erdos_renyi(10, seed=4),
    gg.random_regular(10, 3, seed=6),
    gg.ring(9, numbering="random", seed=2),
]


@pytest.mark.parametrize("graph", BATTERY, ids=lambda g: repr(g))
def test_csr_matches_adjacency(graph):
    csr = graph.csr
    assert csr.n == graph.n
    assert csr.row_offsets[0] == 0
    assert csr.row_offsets[-1] == 2 * graph.m  # one slot per directed edge
    for v in graph.nodes():
        assert csr.degree[v] == graph.degree(v)
        assert csr.row_offsets[v + 1] - csr.row_offsets[v] == graph.degree(v)
        assert csr.neighbors(v) == list(graph.neighbors(v))
        for p in graph.ports(v):
            assert csr.traverse(v, p) == graph.traverse(v, p)
            i = csr.row_offsets[v] + p
            assert (csr.neighbor[i], csr.entry_port[i]) == graph.traverse(v, p)


def test_csr_is_lazy_and_cached():
    g = gg.ring(5)
    first = g.csr
    assert g.csr is first  # built once, cached


def test_csr_invalid_ports_raise():
    g = gg.path(4)
    csr = g.csr
    with pytest.raises(PortGraphError, match="invalid"):
        csr.traverse(0, 1)  # endpoint has degree 1
    with pytest.raises(PortGraphError, match="invalid"):
        csr.traverse(1, -1)  # negatives must not wrap around


def test_csr_connectivity():
    assert is_connected_csr(gg.ring(6).csr)
    assert is_connected_csr(PortGraph(1, []).csr)
    disconnected = PortGraph(4, [Edge(0, 1, 0, 0), Edge(2, 3, 0, 0)])
    assert not is_connected_csr(disconnected.csr)
    assert not disconnected.is_connected()


def test_csr_bfs_matches_traversal_layer():
    g = gg.erdos_renyi(12, seed=9)
    for v in g.nodes():
        assert bfs_distances_csr(g.csr, v) == bfs_distances(g, v)


def test_csr_single_node():
    g = PortGraph(1, [])
    csr = g.csr
    assert csr.degree == [0]
    assert csr.row_offsets == [0, 0]
    assert csr.neighbors(0) == []


def test_csr_standalone_construction():
    g = gg.grid(2, 3)
    csr = CSRPortGraph(g.adjacency())
    assert csr.degree == list(g.csr.degree)
    assert csr.neighbor == g.csr.neighbor


def test_csr_survives_pickling():
    """Pickle round-trips rebuild the graph; the CSR is rebuilt lazily."""
    g = gg.torus(3, 3)
    _ = g.csr  # force the cache before pickling
    clone = pickle.loads(pickle.dumps(g))
    assert clone == g
    assert clone.csr.neighbor == g.csr.neighbor
    assert clone.csr.entry_port == g.csr.entry_port
