"""Tests for port-labeled isomorphism checking."""

from repro.graphs import generators as gg
from repro.graphs.isomorphism import automorphisms, find_isomorphism, is_isomorphic
from repro.graphs.port_graph import Edge, PortGraph
from repro.graphs.port_numbering import renumber


def relabel(g: PortGraph, perm):
    """Apply a node permutation keeping port structure (yields isomorph)."""
    edges = [Edge(perm[e.u], perm[e.v], e.pu, e.pv) for e in g.edges]
    return PortGraph(g.n, edges)


class TestIsomorphic:
    def test_identical_graphs(self):
        g = gg.erdos_renyi(9, seed=2)
        assert is_isomorphic(g, g)

    def test_relabeled_graphs(self):
        g = gg.grid(3, 3)
        perm = [(v * 5 + 2) % 9 for v in range(9)]  # bijection on 0..8
        assert sorted(perm) == list(range(9))
        assert is_isomorphic(g, relabel(g, perm))

    def test_mapping_is_port_preserving(self):
        g = gg.lollipop(8)
        perm = [(v + 3) % 8 for v in range(8)]
        h = relabel(g, perm)
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        for v in g.nodes():
            for p in g.ports(v):
                u, q = g.traverse(v, p)
                u2, q2 = h.traverse(mapping[v], p)
                assert u2 == mapping[u] and q2 == q

    def test_different_sizes_rejected(self):
        assert not is_isomorphic(gg.ring(6), gg.ring(7))

    def test_different_edge_counts_rejected(self):
        assert not is_isomorphic(gg.ring(6), gg.path(6))

    def test_same_graph_different_ports_not_isomorphic(self):
        # Port numbering matters: the same ring with rotated ports is a
        # different port-labeled object unless an automorphism aligns them.
        g = gg.ring(6)
        h = renumber(g, "reversed")
        # reversed port numbering on a canonical ring produces a port graph
        # that is still isomorphic via the reflection automorphism, so use a
        # path whose reversal breaks the leaf port structure asymmetry:
        a = gg.caterpillar(7)
        b = renumber(a, "random", seed=13)
        # either isomorphic or not; the check must agree with brute force on
        # the degree sequence at minimum
        assert is_isomorphic(a, a)
        assert is_isomorphic(b, b)
        assert isinstance(is_isomorphic(a, b), bool)
        assert isinstance(is_isomorphic(g, h), bool)

    def test_degree_sequence_shortcut(self):
        assert not is_isomorphic(gg.star(6), gg.ring(6))


class TestAutomorphisms:
    def test_identity_always_present(self):
        g = gg.erdos_renyi(8, seed=5)
        autos = automorphisms(g)
        assert any(all(m[v] == v for v in g.nodes()) for m in autos)

    def test_canonical_ring_rotations(self):
        # canonical numbering on a ring: port 0 -> lower neighbor index, so
        # most rotations break; the identity must remain.
        g = gg.ring(6)
        autos = automorphisms(g)
        assert len(autos) >= 1

    def test_symmetric_ring_ports(self):
        # Hand-build a ring where every node numbers clockwise 0 /
        # counter-clockwise 1: all n rotations are automorphisms.
        n = 6
        edges = [Edge(i, (i + 1) % n, 0, 1) for i in range(n)]
        g = PortGraph(n, edges)
        autos = automorphisms(g)
        assert len(autos) == n

    def test_automorphisms_are_bijections(self):
        g = gg.grid(3, 3)
        for m in automorphisms(g):
            assert sorted(m.values()) == list(range(g.n))
