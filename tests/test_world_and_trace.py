"""Tests for World, RunResult, TraceRecorder, and RunMetrics."""

import pytest

from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg
from repro.graphs.port_graph import PortGraph
from repro.sim.actions import Action
from repro.sim.metrics import RunMetrics
from repro.sim.robot import RobotSpec
from repro.sim.trace import TraceRecorder
from repro.sim.world import World


def term_prog(ctx):
    obs = yield
    yield Action.terminate()


class TestWorld:
    def test_requires_connected(self):
        g = PortGraph(2, [])
        with pytest.raises(Exception, match="connected"):
            World(g, [RobotSpec(1, 0, term_prog)])

    def test_requires_robots(self):
        with pytest.raises(ValueError, match="at least one"):
            World(gg.ring(5), [])

    def test_result_fields(self):
        res = World(gg.ring(5), [RobotSpec(1, 2, term_prog)]).run()
        assert res.gathered
        assert res.final_node == 2
        assert res.positions == {1: 2}
        assert res.rounds == res.metrics.rounds
        assert res.total_moves == 0

    def test_not_gathered_final_node_none(self):
        res = World(
            gg.ring(5), [RobotSpec(1, 0, term_prog), RobotSpec(2, 3, term_prog)]
        ).run()
        assert not res.gathered
        assert res.final_node is None
        assert not res.detected

    def test_stats_collected(self):
        g = gg.ring(6)
        specs = [
            RobotSpec(2, 0, undispersed_gathering_program()),
            RobotSpec(5, 0, undispersed_gathering_program()),
        ]
        res = World(g, specs).run()
        assert res.stats[2].get("roles") == ["finder"]
        assert res.stats[5].get("roles") == ["helper"]


class TestTraceRecorder:
    def test_records_moves_and_terminations(self):
        def prog(ctx):
            obs = yield
            obs = yield Action.move(0)
            yield Action.terminate()

        tr = TraceRecorder()
        World(gg.ring(5), [RobotSpec(1, 0, prog)]).run(trace=tr)
        assert len(tr.of_kind("move")) == 1
        assert len(tr.of_kind("terminate")) == 1
        assert tr.for_robot(1)

    def test_limit_drops(self):
        def prog(ctx):
            obs = yield
            for _ in range(10):
                obs = yield Action.move(0)
            yield Action.terminate()

        tr = TraceRecorder(limit=3)
        World(gg.ring(5), [RobotSpec(1, 0, prog)]).run(trace=tr)
        assert len(tr.events) == 3
        assert tr.dropped > 0
        assert "dropped" in tr.summary()

    def test_kind_filter(self):
        def prog(ctx):
            obs = yield
            obs = yield Action.move(0, note="hello")
            yield Action.terminate()

        tr = TraceRecorder(kinds=["note"])
        World(gg.ring(5), [RobotSpec(1, 0, prog)]).run(trace=tr)
        assert all(e.kind == "note" for e in tr)
        assert len(tr) == 1

    def test_summary_format(self):
        tr = TraceRecorder()
        tr.record(5, "move", 3, (0, 1))
        line = tr.summary()
        assert "round" in line and "robot 3" in line and "move" in line


class TestRunMetrics:
    def test_as_dict(self):
        m = RunMetrics(rounds=10, total_moves=4)
        d = m.as_dict()
        assert d["rounds"] == 10
        assert d["total_moves"] == 4
        assert "first_gather_round" in d

    def test_moves_accounting(self):
        def mover(ctx):
            obs = yield
            obs = yield Action.move(0)
            obs = yield Action.move(0)
            yield Action.terminate()

        res = World(gg.ring(6), [RobotSpec(1, 0, mover)]).run()
        assert res.metrics.total_moves == 2
        assert res.metrics.max_moves == 2
        assert res.metrics.moves_by_robot == {1: 2}
        assert res.metrics.active_rounds_by_robot[1] == 3
