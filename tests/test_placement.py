"""Tests for placements and label assignment (the adversary's knobs)."""

import pytest

from repro.analysis.placement import (
    PlacementError,
    adversarial_scatter,
    assign_labels,
    dispersed_random,
    dispersed_with_pair_distance,
    min_pairwise_distance,
    undispersed_placement,
)
from repro.core import bounds
from repro.graphs import generators as gg


class TestMinPairwiseDistance:
    def test_colocated_is_zero(self):
        g = gg.ring(6)
        assert min_pairwise_distance(g, [2, 2, 5]) == 0

    def test_single_robot_none(self):
        g = gg.ring(6)
        assert min_pairwise_distance(g, [2]) is None

    def test_ring_distances(self):
        g = gg.ring(10)
        assert min_pairwise_distance(g, [0, 3, 7]) == 3


class TestUndispersed:
    def test_has_collision(self):
        g = gg.erdos_renyi(10, seed=1)
        for seed in range(5):
            starts = undispersed_placement(g, 5, seed=seed)
            assert len(starts) == 5
            assert min_pairwise_distance(g, starts) == 0

    def test_needs_two(self):
        with pytest.raises(PlacementError):
            undispersed_placement(gg.ring(5), 1)


class TestDispersed:
    def test_distinct_nodes(self):
        g = gg.grid(3, 4)
        starts = dispersed_random(g, 6, seed=2)
        assert len(set(starts)) == 6

    def test_too_many_rejected(self):
        with pytest.raises(PlacementError):
            dispersed_random(gg.ring(5), 6)

    @pytest.mark.parametrize("dist", [1, 2, 3])
    def test_exact_pair_distance(self, dist):
        g = gg.ring(12)
        starts = dispersed_with_pair_distance(g, 3, dist, seed=3)
        assert min_pairwise_distance(g, starts) == dist

    def test_impossible_distance_rejected(self):
        g = gg.complete(6)  # diameter 1
        with pytest.raises(PlacementError):
            dispersed_with_pair_distance(g, 2, 3, seed=1)

    def test_distance_zero_rejected(self):
        with pytest.raises(PlacementError):
            dispersed_with_pair_distance(gg.ring(6), 2, 0)


class TestScatter:
    def test_scatter_distinct(self):
        g = gg.grid(4, 4)
        starts = adversarial_scatter(g, 5, seed=1)
        assert len(set(starts)) == 5

    def test_scatter_spreads(self):
        """Farthest-point scatter should beat random placement's min dist."""
        g = gg.ring(20)
        k = 4
        scatter_d = min_pairwise_distance(g, adversarial_scatter(g, k, seed=1))
        random_ds = [
            min_pairwise_distance(g, dispersed_random(g, k, seed=s)) for s in range(10)
        ]
        assert scatter_d >= max(random_ds) - 1

    def test_scatter_too_many(self):
        with pytest.raises(PlacementError):
            adversarial_scatter(gg.ring(5), 6)


class TestLabels:
    def test_compact(self):
        assert assign_labels(4, 10, "compact") == [1, 2, 3, 4]

    def test_adversarial_long_max_length(self):
        labels = assign_labels(3, 10, "adversarial_long")
        assert labels == [98, 99, 100]
        lens = {len(bounds.id_bits_lsb_first(l)) for l in labels}
        assert len(lens) == 1  # equal bit lengths

    def test_random_unique_in_range(self):
        labels = assign_labels(8, 12, "random", seed=5)
        assert len(set(labels)) == 8
        assert all(1 <= l <= 144 for l in labels)

    def test_deterministic(self):
        assert assign_labels(5, 10, seed=3) == assign_labels(5, 10, seed=3)

    def test_over_capacity(self):
        with pytest.raises(ValueError):
            assign_labels(10, 3, "compact")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown label scheme"):
            assign_labels(3, 10, "bogus")
