"""Tests for the canned sweeps and the Markdown report generator."""

from repro.analysis import sweeps
from repro.analysis.report import generate_report


class TestSweeps:
    def test_undispersed_sweep_shape(self):
        out = sweeps.undispersed_sweep(ns=(8, 12), k=3)
        assert len(out["rows"]) == 2
        assert out["slope"] <= out["claimed_exponent"] + 0.4
        assert all(r["detected"] for r in out["rows"])

    def test_regime_sweep(self):
        rows = sweeps.regime_sweep(ns=(9,))
        regimes = {r["regime"] for r in rows}
        assert regimes == {"n3", "n4logn", "n5"}
        assert all(r["detected"] for r in rows)

    def test_staged_distance_sweep(self):
        rows = sweeps.staged_distance_sweep(n=10, distances=(0, 1))
        assert rows[0]["gathered_at_step"] == 1
        assert rows[1]["gathered_at_step"] <= 2
        assert all(r["rounds"] <= r["boundary"] + 1 for r in rows)

    def test_lemma15_sweep_bound_holds(self):
        rows = sweeps.lemma15_sweep(seeds=2)
        assert rows and all(r["holds"] for r in rows)

    def test_detection_tail_sweep(self):
        rows = sweeps.detection_tail_sweep(n=8, k=2)
        assert {r["algorithm"] for r in rows} == {"uxs", "faster"}
        assert all(r["tail"] >= 0 for r in rows)

    def test_cost_sweep(self):
        rows = sweeps.cost_sweep(ns=(9,))
        assert rows[0]["faster_moves"] < rows[0]["tz_moves"]


class TestReport:
    def test_generates_markdown(self):
        text = generate_report(quick=True)
        assert text.startswith("# Reproduction report")
        for heading in ("Theorem 8", "Theorem 16", "Theorem 12", "Lemma 15",
                        "Detection overhead", "Cost metric"):
            assert heading in text
        # markdown tables present
        assert "|---" in text

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.exists()
        assert "Theorem 16" in out.read_text()

    def test_cli_show(self, capsys):
        from repro.cli import main

        assert main(["show", "--family", "ring", "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "adjacency" in out and "p0->" in out
