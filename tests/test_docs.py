"""The docs job: documentation that cannot rot silently.

Two guarantees over ``README.md`` and ``docs/*.md``:

* **links resolve** — every relative Markdown link points at a file or
  directory that exists in the repository;
* **CLI invocations parse** — every ``python -m repro ...`` line shown in
  a fenced code block parses against the real argument parser (flags,
  choices, scenario names and all), and every documented subcommand
  answers ``--help``.

Prose mentions of the CLI (inline code spans) are exempt — only fenced
shell blocks are treated as runnable.
"""

import pathlib
import re
import shlex

import pytest

from repro.cli import main, make_parser

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"```[a-z]*\n(.*?)```", re.DOTALL)
CLI_LINE = re.compile(r"^\$?\s*(?:PYTHONPATH=\S+\s+)?python -m repro\s+(.*)$")


def doc_ids():
    return [p.relative_to(ROOT).as_posix() for p in DOC_FILES]


def _relative_links(path: pathlib.Path):
    for target in LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def _cli_invocations(path: pathlib.Path):
    """Tokenized ``python -m repro ...`` lines from fenced code blocks."""
    for block in FENCE.findall(path.read_text()):
        lines = block.splitlines()
        i = 0
        while i < len(lines):
            line = lines[i].rstrip()
            while line.endswith("\\") and i + 1 < len(lines):
                i += 1
                line = line[:-1].rstrip() + " " + lines[i].strip()
            match = CLI_LINE.match(line.strip())
            if match:
                yield shlex.split(match.group(1))
            i += 1


def test_docs_exist():
    names = {p.name for p in DOC_FILES}
    assert {
        "README.md",
        "ALGORITHMS.md",
        "SCENARIOS.md",
        "RUNTIME.md",
        "PERF.md",
        "CI.md",
        "CAMPAIGNS.md",
    } <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids())
def test_relative_links_resolve(path):
    # Resolved strictly relative to the containing file (GitHub semantics);
    # a repo-root fallback would mask README-style links pasted into docs/.
    missing = [
        target
        for target in _relative_links(path)
        if not (path.parent / target).exists()
    ]
    assert not missing, f"{path.name}: broken links {missing}"


@pytest.mark.parametrize("path", DOC_FILES, ids=doc_ids())
def test_documented_cli_invocations_parse(path):
    parser = make_parser()
    for argv in _cli_invocations(path):
        try:
            parser.parse_args(argv)
        except SystemExit as exc:  # argparse reports errors via SystemExit
            raise AssertionError(
                f"{path.name}: documented invocation does not parse: "
                f"python -m repro {' '.join(argv)}"
            ) from exc


def documented_subcommands():
    """Every (sub)command the docs show, as --help argv prefixes."""
    seen = set()
    for path in DOC_FILES:
        for argv in _cli_invocations(path):
            if not argv:
                continue
            seen.add((argv[0],))
            # nested subcommands (scenarios list|describe|run, fuzz
            # run|corpus|replay, campaign create|run|workers|status|resume)
            if argv[0] in ("scenarios", "fuzz", "campaign") and len(argv) > 1:
                seen.add((argv[0], argv[1]))
    return sorted(seen)


@pytest.mark.parametrize(
    "prefix", documented_subcommands(), ids=[" ".join(c) for c in documented_subcommands()]
)
def test_documented_subcommand_answers_help(prefix, capsys):
    with pytest.raises(SystemExit) as exc:
        main([*prefix, "--help"])
    assert exc.value.code == 0
    assert "usage:" in capsys.readouterr().out


def test_scenario_names_in_docs_are_registered():
    """Docs that name a scenario (describe/run/--scenario) must name a real
    one — the parser test above enforces it via choices, this pins the
    error message path stays meaningful."""
    from repro.scenarios import scenario_names

    named = set()
    for path in DOC_FILES:
        for argv in _cli_invocations(path):
            if "--scenario" in argv:
                named.add(argv[argv.index("--scenario") + 1])
            if argv[:2] in (["scenarios", "describe"], ["scenarios", "run"]) and len(argv) > 2:
                named.add(argv[2])
    named.discard("NAME")  # placeholder used in prose-style examples
    assert named <= set(scenario_names()), named - set(scenario_names())
