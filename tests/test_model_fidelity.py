"""Model-fidelity tests: the simulator grants exactly the paper's powers.

Section 1.1 of the paper defines what a robot may know and observe.  These
tests assert the robot-facing API leaks nothing more:

* observations expose only round, degree, entry port, and co-located cards;
* node identities never appear anywhere robot-visible;
* robots know ``n`` and their label, nothing else, unless knowledge is
  granted explicitly;
* local computation is bounded per round (programs are resumed once per
  round — no hidden global loops).
"""

from repro.core.faster_gathering import faster_gathering_program
from repro.graphs import generators as gg
from repro.sim.actions import Action, Observation
from repro.sim.robot import RobotContext, RobotSpec
from repro.sim.world import World


class TestObservationSurface:
    def test_observation_slots(self):
        """Observation carries exactly the model-sanctioned fields."""
        assert set(Observation.__slots__) == {"round", "degree", "entry_port", "cards"}

    def test_context_surface(self):
        ctx = RobotContext(label=3, n=7)
        assert ctx.label == 3
        assert ctx.n == 7
        assert ctx.knowledge == {}

    def test_no_node_identity_in_observation(self):
        """A probing program records everything it can see; node numbers of
        the underlying graph must not be recoverable from any field."""
        seen = []

        def probe(ctx):
            obs = yield
            for _ in range(4):
                seen.append((obs.round, obs.degree, obs.entry_port,
                             tuple(sorted(tuple(sorted(c.items())) for c in obs.cards))))
                obs = yield Action.move(0)
            yield Action.terminate()

        g = gg.ring(6)
        World(g, [RobotSpec(3, 2, probe)], strict=True).run()
        for (_r, degree, entry, cards) in seen:
            assert degree == 2
            assert entry in (None, 0, 1)
            for card in cards:
                keys = {k for k, _v in card}
                assert "node" not in keys and "position" not in keys

    def test_entry_port_is_local_to_destination(self):
        """The entry port is the *destination's* port number for the edge —
        the only edge information the model grants after a move."""
        recorded = {}

        def probe(ctx):
            obs = yield
            obs = yield Action.move(0)
            recorded["entry"] = obs.entry_port
            yield Action.terminate()

        # path: node 0 -(port0|port0)- node 1; canonical numbering
        g = gg.path(3)
        World(g, [RobotSpec(3, 0, probe)], strict=True).run()
        assert recorded["entry"] == g.traverse(0, 0)[1]


class TestKnowledgeGrants:
    def test_default_no_extra_knowledge(self):
        captured = {}

        def probe(ctx):
            captured["knowledge"] = dict(ctx.knowledge)
            obs = yield
            yield Action.terminate()

        World(gg.ring(5), [RobotSpec(3, 0, probe)]).run()
        assert captured["knowledge"] == {}

    def test_granted_knowledge_visible(self):
        captured = {}

        def probe(ctx):
            captured["knowledge"] = dict(ctx.knowledge)
            obs = yield
            yield Action.terminate()

        World(
            gg.ring(5),
            [RobotSpec(3, 0, probe, knowledge={"max_degree": 2})],
        ).run()
        assert captured["knowledge"] == {"max_degree": 2}


class TestRoundDiscipline:
    def test_one_action_per_round(self):
        """A robot acts exactly once per round: the number of activations of
        a stay-loop equals the number of executed rounds."""
        count = {"activations": 0}

        def busy(ctx):
            obs = yield
            for _ in range(9):
                count["activations"] += 1
                obs = yield Action.stay()
            yield Action.terminate()

        World(gg.ring(5), [RobotSpec(3, 0, busy)]).run()
        assert count["activations"] == 9

    def test_simultaneous_start(self):
        """All robots observe round 0 first — the paper's simultaneous wake."""
        first_rounds = []

        def probe(ctx):
            obs = yield
            first_rounds.append(obs.round)
            yield Action.terminate()

        specs = [RobotSpec(l, 0, probe) for l in (2, 5, 9)]
        World(gg.ring(5), specs).run()
        assert first_rounds == [0, 0, 0]


class TestDeterminism:
    def test_full_run_reproducible(self):
        g = gg.erdos_renyi(9, seed=3)
        starts = [0, 0, 4, 7]
        labels = [3, 9, 5, 14]

        def once():
            specs = [
                RobotSpec(l, s, faster_gathering_program())
                for l, s in zip(labels, starts)
            ]
            return World(g, specs, strict=True).run()

        a, b = once(), once()
        assert a.rounds == b.rounds
        assert a.positions == b.positions
        assert a.metrics.total_moves == b.metrics.total_moves
        assert a.metrics.moves_by_robot == b.metrics.moves_by_robot
