"""Tests for the baseline algorithms."""

import pytest

from repro.baselines import dessmark_program, random_walk_program, tz_rendezvous_program
from repro.graphs import generators as gg
from tests.conftest import run_world


class TestTzRendezvous:
    def test_gathers_without_detection(self):
        g = gg.ring(8)
        res = run_world(g, [0, 4], [3, 9], tz_rendezvous_program(), stop_on_gather=True)
        assert res.metrics.first_gather_round is not None
        assert not res.detected  # no detection claim

    def test_full_run_also_ends(self):
        g = gg.ring(6)
        res = run_world(g, [0, 3], [3, 9], tz_rendezvous_program())
        assert res.gathered

    def test_multiple_robots(self):
        g = gg.erdos_renyi(9, seed=2)
        res = run_world(g, [0, 3, 6], [3, 9, 5], tz_rendezvous_program(),
                        stop_on_gather=True)
        assert res.metrics.first_gather_round is not None


class TestDessmark:
    def test_two_robots_meet(self):
        g = gg.ring(10)
        res = run_world(g, [0, 3], [5, 9], dessmark_program())
        assert res.gathered
        radius = next(iter(res.stats.values()))["met_at_radius"]
        assert radius is not None

    def test_radius_scales_with_distance(self):
        g = gg.ring(12)
        r_near = run_world(g, [0, 1], [5, 9], dessmark_program())
        r_far = run_world(g, [0, 5], [5, 9], dessmark_program())
        rad_near = next(iter(r_near.stats.values()))["met_at_radius"]
        rad_far = next(iter(r_far.stats.values()))["met_at_radius"]
        assert rad_near <= rad_far

    def test_rounds_blow_up_with_distance(self):
        """The O(Δ^D) wall: distance 1 vs distance 4 on a denser graph."""
        g = gg.cycle_with_chords(12, chords=2)
        near = run_world(g, [0, 1], [5, 9], dessmark_program())
        from repro.analysis.placement import dispersed_with_pair_distance

        starts = dispersed_with_pair_distance(g, 2, 4, seed=1)
        far = run_world(g, starts, [5, 9], dessmark_program())
        assert far.rounds > 5 * near.rounds

    def test_delta_knowledge(self):
        g = gg.ring(10)
        res = run_world(g, [0, 2], [5, 9], dessmark_program(max_degree=2))
        assert res.gathered

    def test_radius_cap(self):
        g = gg.path(8)
        res = run_world(g, [0, 7], [5, 9], dessmark_program(max_radius=2))
        assert not res.gathered
        assert next(iter(res.stats.values()))["met_at_radius"] is None


class TestRandomWalk:
    def test_two_walkers_meet_eventually(self):
        g = gg.ring(6)
        res = run_world(
            g, [0, 3], [3, 9], random_walk_program(seed=4),
            stop_on_gather=True, max_rounds=500_000,
        )
        assert res.metrics.first_gather_round is not None

    def test_seeded_reproducible(self):
        g = gg.ring(6)
        a = run_world(g, [0, 3], [3, 9], random_walk_program(seed=7),
                      stop_on_gather=True, max_rounds=500_000)
        b = run_world(g, [0, 3], [3, 9], random_walk_program(seed=7),
                      stop_on_gather=True, max_rounds=500_000)
        assert a.metrics.first_gather_round == b.metrics.first_gather_round

    def test_laziness_validation(self):
        with pytest.raises(ValueError):
            random_walk_program(laziness=1.0)
