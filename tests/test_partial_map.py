"""Tests for the robot-side partial map structure."""

import pytest

from repro.graphs import generators as gg
from repro.graphs.isomorphism import is_isomorphic
from repro.mapping.partial_map import RobotMap


def full_map_of(graph):
    """Simulator-side shortcut: copy a PortGraph into a RobotMap."""
    rmap = RobotMap(graph.degree(0))
    ids = {0: 0}
    import collections

    q = collections.deque([0])
    while q:
        v = q.popleft()
        for p in graph.ports(v):
            u, back = graph.traverse(v, p)
            if u not in ids:
                ids[u] = rmap.add_node(graph.degree(u))
                q.append(u)
            if not rmap.resolved(ids[v], p):
                rmap.set_edge(ids[v], p, ids[u], back)
    return rmap


class TestConstruction:
    def test_root_only(self):
        rmap = RobotMap(3)
        assert rmap.num_nodes == 1
        assert not rmap.complete()
        assert len(rmap.frontier) == 3

    def test_add_node_frontier(self):
        rmap = RobotMap(1)
        w = rmap.add_node(2)
        assert w == 1
        assert rmap.num_nodes == 2
        # 1 port at root + 2 at new node
        assert len(rmap.frontier) == 3

    def test_set_edge_resolves_both_sides(self):
        rmap = RobotMap(1)
        w = rmap.add_node(1)
        rmap.set_edge(0, 0, w, 0)
        assert rmap.resolved(0, 0) and rmap.resolved(w, 0)
        assert rmap.complete()

    def test_conflicting_edge_rejected(self):
        rmap = RobotMap(2)
        a = rmap.add_node(1)
        b = rmap.add_node(1)
        rmap.set_edge(0, 0, a, 0)
        with pytest.raises(ValueError, match="conflicting"):
            rmap.set_edge(0, 0, b, 0)

    def test_next_frontier_skips_resolved(self):
        rmap = RobotMap(2)
        a = rmap.add_node(2)
        rmap.set_edge(0, 0, a, 0)
        u, p = rmap.next_frontier()
        assert (u, p) == (0, 1)

    def test_next_frontier_empty(self):
        rmap = RobotMap(1)
        a = rmap.add_node(1)
        rmap.set_edge(0, 0, a, 0)
        assert rmap.next_frontier() is None


class TestNavigation:
    def test_route_on_copied_graph(self):
        g = gg.grid(3, 3)
        rmap = full_map_of(g)
        route = rmap.route(0, 8)
        assert len(route) == 4  # grid distance (0,0)->(2,2)

    def test_route_self(self):
        rmap = full_map_of(gg.ring(5))
        assert rmap.route(2, 2) == []

    def test_route_unreachable(self):
        rmap = RobotMap(1)  # unresolved port: no edges yet
        rmap.add_node(1)
        with pytest.raises(ValueError, match="unreachable"):
            rmap.route(0, 1)

    def test_euler_tour_covers(self):
        g = gg.lollipop(9)
        rmap = full_map_of(g)
        ports, nodes = rmap.euler_tour(0)
        assert len(ports) == 2 * (rmap.num_nodes - 1)
        assert nodes[0] == nodes[-1] == 0
        assert set(nodes) == set(range(rmap.num_nodes))

    def test_euler_tour_partial_map(self):
        # tour over the resolved part only
        rmap = RobotMap(2)
        a = rmap.add_node(2)
        rmap.set_edge(0, 0, a, 0)
        ports, nodes = rmap.euler_tour(0)
        assert nodes == [0, a, 0]


class TestExport:
    @pytest.mark.parametrize(
        "graph", [gg.ring(7), gg.star(6), gg.complete(5), gg.erdos_renyi(9, seed=2)],
        ids=["ring", "star", "complete", "er"],
    )
    def test_roundtrip_isomorphic(self, graph):
        rmap = full_map_of(graph)
        assert rmap.complete()
        assert is_isomorphic(rmap.to_port_graph(), graph)

    def test_incomplete_export_rejected(self):
        rmap = RobotMap(2)
        with pytest.raises(ValueError, match="incomplete"):
            rmap.to_port_graph()

    def test_memory_estimate_scales_with_edges(self):
        small = full_map_of(gg.ring(8))
        big = full_map_of(gg.complete(8))
        assert big.memory_bits_estimate() > small.memory_bits_estimate()
