"""Tests for card-size accounting and miscellaneous metric plumbing."""

from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg
from repro.sim.actions import Action
from repro.sim.metrics import card_bits
from repro.sim.robot import RobotSpec
from repro.sim.world import World


class TestCardBits:
    def test_empty_card(self):
        assert card_bits({}) == 0

    def test_monotone_in_content(self):
        small = card_bits({"id": 3})
        bigger = card_bits({"id": 3, "state": "finder"})
        assert bigger > small

    def test_value_width_counts(self):
        assert card_bits({"id": 1000}) > card_bits({"id": 1})


class TestMaxCardBitsMetric:
    def test_recorded_on_publish(self):
        def prog(ctx):
            obs = yield
            obs = yield Action.stay(card={"state": "finder", "groupid": 42})
            yield Action.terminate()

        res = World(gg.ring(5), [RobotSpec(1, 0, prog)]).run()
        expected = card_bits({"state": "finder", "groupid": 42, "id": 1})
        assert res.metrics.max_card_bits == expected

    def test_zero_when_never_published(self):
        def prog(ctx):
            obs = yield
            yield Action.terminate()

        res = World(gg.ring(5), [RobotSpec(1, 0, prog)]).run()
        assert res.metrics.max_card_bits == 0

    def test_algorithms_stay_logarithmic(self):
        g = gg.ring(8)
        specs = [
            RobotSpec(3, 0, undispersed_gathering_program()),
            RobotSpec(9, 0, undispersed_gathering_program()),
            RobotSpec(12, 4, undispersed_gathering_program()),
        ]
        res = World(g, specs).run()
        assert res.gathered
        assert 0 < res.metrics.max_card_bits < 1024
