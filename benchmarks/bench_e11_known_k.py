"""E11 (extension) — what knowing ``k`` buys: census detection.

Not a paper table: the paper insists robots do not know ``k`` and contrasts
itself with prior work where ``k`` is implicit.  This ablation quantifies
the choice: with ``k`` known, detection collapses to a head-count and the
detection tail drops from the silent-wait machinery (~2T·remaining-bits) to
~1 round, while the *gathering* time is untouched — i.e. the entire cost of
the paper's harder problem setting is in the tail.
"""

from __future__ import annotations

import pytest

from repro.analysis import assign_labels, dispersed_random, run_gathering
from repro.core.known_k import known_k_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment

CASES = [("ring", 9, 3), ("ring", 12, 4), ("erdos_renyi", 10, 4)]


def graph_for(family, n):
    return gg.ring(n) if family == "ring" else gg.erdos_renyi(n, seed=n)


def run_sweep():
    rows = []
    for family, n, k in CASES:
        g = graph_for(family, n)
        starts = dispersed_random(g, k, seed=n + k)
        labels = assign_labels(k, n, seed=k)
        with_k = run_gathering(
            "uxs+known-k", g, starts, labels, lambda: known_k_gathering_program(k)
        )
        without = run_gathering(
            "uxs", g, starts, labels, lambda: uxs_gathering_program()
        )
        assert with_k.detected and without.detected
        rows.append(
            {
                "family": family,
                "n": n,
                "k": k,
                "rounds_known_k": with_k.rounds,
                "rounds_unknown_k": without.rounds,
                "tail_known_k": with_k.rounds - with_k.first_gather_round,
                "tail_unknown_k": without.rounds - without.first_gather_round,
            }
        )
    return rows


@pytest.mark.benchmark(group="E11")
def test_e11_known_k_ablation(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E11 - extension: census detection when k is known", rows)
    for r in rows:
        assert r["tail_known_k"] <= 2
        assert r["tail_unknown_k"] > 10 * max(r["tail_known_k"], 1)
        assert r["rounds_known_k"] <= r["rounds_unknown_k"]
