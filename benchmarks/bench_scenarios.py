"""Scenario-campaign smoke: the curated registry behaves as advertised.

Runs every registered scenario through :func:`repro.analysis.sweeps.
scenario_sweep` (one runtime batch per scenario, clean twins included)
and asserts the curation rules the registry promises: every spec
completes, expectations hold, and the whole campaign suite stays cheap
enough for CI.  Wall-clock is tracked by pytest-benchmark for regression
purposes only — simulated rounds are the paper's cost metric.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import scenario_sweep
from repro.scenarios import all_scenarios

from conftest import print_experiment


def run_campaigns():
    rows = []
    for sc in all_scenarios():
        out = scenario_sweep(sc.name)
        summary = out["summary"]
        assert summary["failures"] == 0, (sc.name, out["rows"])
        rate = summary["mis_detection_rate"]
        rows.append(
            {
                "scenario": sc.name,
                "runs": summary["runs"],
                "mis_rate": "n/a" if rate is None else f"{rate:.2f}",
                "stranded": summary["stranded_total"],
                "crashed": summary["crashed_total"],
                "max_delta": max(
                    (r["rounds_past_schedule"] for r in out["rows"]
                     if r["rounds_past_schedule"] is not None),
                    default=0,
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="scenarios")
def test_scenario_campaign_smoke(bench_once):
    rows = bench_once(run_campaigns)
    print_experiment("Scenario campaigns - §1.4 alternative settings", rows)

    by_name = {r["scenario"]: r for r in rows}
    assert len(rows) >= 8

    # the clean baseline never mis-detects and never strands anyone
    clean = by_name["clean-sync"]
    assert clean["mis_rate"] == "0.00" and clean["stranded"] == 0

    # fault campaigns produce measurable damage, not exceptions
    assert by_name["crash-storm"]["mis_rate"] == "1.00"
    assert by_name["crash-storm"]["stranded"] >= 2
    assert by_name["single-crash-waiter"]["crashed"] == 1
    assert by_name["delayed-start"]["stranded"] == 1

    # perturbations cost rounds against the clean twin somewhere
    assert by_name["delayed-start"]["max_delta"] > 0
    assert by_name["semi-sync-round-robin"]["max_delta"] > 0
