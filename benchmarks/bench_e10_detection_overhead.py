"""E10 — what detection costs, and the trivial Ω(n) lower bound.

Detection is the paper's hard part: a robot must not merely be gathered but
*know* it.  Rows measure, for both the UXS algorithm and Faster-Gathering,
the gap between the first all-co-located round and the final termination
round — the "+2T silent wait" / "finish the step" tails — plus the sanity
check of the paper's only lower bound: two robots at the ends of a path
cannot gather before ~n/2 rounds, whatever the algorithm.
"""

from __future__ import annotations

import pytest

from repro.analysis import assign_labels, dispersed_random, run_gathering
from repro.core.faster_gathering import faster_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment


def run_overhead():
    rows = []
    for algo_name, factory_fn in (
        ("uxs", lambda: uxs_gathering_program()),
        ("faster", lambda: faster_gathering_program()),
    ):
        for n, k in ((9, 3), (12, 4)):
            g = gg.ring(n)
            starts = dispersed_random(g, k, seed=n)
            labels = assign_labels(k, n, seed=k)
            rec = run_gathering(algo_name, g, starts, labels, factory_fn)
            assert rec.gathered and rec.detected
            first = rec.first_gather_round
            rows.append(
                {
                    "algorithm": algo_name,
                    "n": n,
                    "k": k,
                    "first_gather": first,
                    "termination": rec.rounds,
                    "detection_tail": rec.rounds - (first if first is not None else 0),
                }
            )
    return rows


def run_lower_bound():
    """Two robots at the ends of a path: any algorithm needs >= ceil((n-1)/2)
    rounds before they can even be co-located (each moves one hop per
    round)."""
    rows = []
    for n in (8, 12, 16):
        g = gg.path(n)
        rec = run_gathering(
            "faster", g, [0, n - 1], [5, 9], lambda: faster_gathering_program()
        )
        assert rec.gathered and rec.detected
        rows.append(
            {
                "n": n,
                "first_gather": rec.first_gather_round,
                "lower_bound": (n - 1) // 2,
                "respected": rec.first_gather_round >= (n - 1) // 2,
            }
        )
    return rows


@pytest.mark.benchmark(group="E10")
def test_e10_detection_overhead(bench_once):
    rows = bench_once(run_overhead)
    print_experiment("E10a - detection overhead (termination - first gather)", rows)
    for r in rows:
        assert r["detection_tail"] >= 0
        # detection costs something: the tail is never zero for these
        # algorithms (a silent wait or step-completion is always pending)
        assert r["detection_tail"] > 0


@pytest.mark.benchmark(group="E10")
def test_e10_trivial_lower_bound(bench_once):
    rows = bench_once(run_lower_bound)
    print_experiment("E10b - Ω(n) lower bound sanity (path endpoints)", rows)
    for r in rows:
        assert r["respected"], r
