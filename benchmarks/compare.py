"""Compare two ``BENCH_*.json`` files and gate on headline regression.

Usage::

    python benchmarks/compare.py BASELINE.json CURRENT.json [--tolerance 0.10]

Both files must carry the ``summary.headline_speedup`` field every
benchmark in this repo emits (``bench_simcore.py``, ``bench_sweep.py``).
Exits

* ``0`` — current headline is within ``tolerance`` of the baseline (small
  deltas are printed as a warning, never fatal: benchmark noise is real,
  especially on shared CI runners);
* ``1`` — current headline regressed by more than ``tolerance`` (default
  10%);
* ``2`` — a file is missing/corrupt or the benchmarks don't match.

CI runs this against the committed benchmark JSON after a ``--quick``
kernel run; see the ``perf-smoke`` job in ``.github/workflows/ci.yml``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Tuple

__all__ = ["load_headline", "compare", "main"]


def load_headline(path: str) -> Tuple[str, float]:
    """``(benchmark name, headline speedup)`` from a BENCH_*.json file."""
    with open(path) as fh:
        payload = json.load(fh)
    name = payload.get("benchmark")
    headline = payload.get("summary", {}).get("headline_speedup")
    if not isinstance(name, str) or not isinstance(headline, (int, float)):
        raise ValueError(f"{path}: not a benchmark payload "
                         f"(missing benchmark/summary.headline_speedup)")
    return name, float(headline)


def compare(baseline: float, current: float, tolerance: float) -> Tuple[str, Optional[str]]:
    """``(verdict, message)`` where verdict is ok | warn | regression."""
    delta = (current - baseline) / baseline
    msg = (f"headline speedup: baseline {baseline:.2f}x -> current {current:.2f}x "
           f"({delta:+.1%})")
    if delta < -tolerance:
        return "regression", f"REGRESSION beyond {tolerance:.0%} tolerance: {msg}"
    if delta < 0:
        return "warn", f"warning (within {tolerance:.0%} tolerance): {msg}"
    return "ok", msg


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json to compare against")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="fractional headline regression that fails "
                             "the check (default 0.10 = 10%%)")
    args = parser.parse_args(argv)

    try:
        base_name, base = load_headline(args.baseline)
        cur_name, cur = load_headline(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"compare: cannot load benchmark payloads: {exc}", file=sys.stderr)
        return 2
    if base_name != cur_name:
        print(f"compare: benchmark mismatch: {base_name!r} vs {cur_name!r}",
              file=sys.stderr)
        return 2

    verdict, message = compare(base, cur, args.tolerance)
    print(f"[{base_name}] {message}")
    return 1 if verdict == "regression" else 0


if __name__ == "__main__":
    sys.exit(main())
