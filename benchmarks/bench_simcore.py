"""Simulation-kernel benchmark: the fast path vs the seed scheduler.

Measures **rounds/sec** and **traverses/sec** of the scheduler hot loop on
three topologies (ring, torus, random-regular) at ``n ∈ {64, 256, 1024}``,
for both the optimized :class:`repro.sim.scheduler.Scheduler` and the seed
:class:`repro.sim.reference.ReferenceScheduler`, and writes the results —
including the measured speedups — to ``BENCH_simcore.json``.  The fast
path's "≥ 2× on the n=1024 random-regular workload" claim is this file's
output, not an assertion in prose (see ``docs/PERF.md``).

The workload is a *kernel* benchmark: every robot runs a lean rotor walk
(exit through ``entry_port + 1``, with pre-built :class:`Action` objects so
per-step allocation in the robot program does not drown the scheduler under
measurement).  Every robot moves every round — the worst case for the
incremental occupancy bookkeeping, since every move invalidates caches.
Before timing, each (topology, n) cell is run once under both schedulers
and their final positions and metrics are asserted equal, so the numbers
always describe two implementations of the same semantics.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_simcore.py            # full grid
    PYTHONPATH=src python benchmarks/bench_simcore.py --quick    # CI smoke

or through pytest-benchmark via ``bench_simulator_throughput.py`` (group
``simcore-kernel``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List

from repro.graphs import generators as gg
from repro.graphs.port_graph import PortGraph
from repro.sim.actions import Action
from repro.sim.reference import ReferenceScheduler
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler

__all__ = [
    "TOPOLOGIES",
    "kernel_specs",
    "lean_rotor_program",
    "measure_cell",
    "run_suite",
    "main",
]


def lean_rotor_program(rounds: int):
    """Deterministic rotor walk: leave through ``(entry_port + 1) % degree``.

    Pre-builds one :class:`Action` per port and a port-increment lookup so
    the program contributes as little per-step work as possible — the point
    is to measure the scheduler, not the robot.  (Reusing Action objects is
    legal: the scheduler treats actions as read-only.)  The benchmark
    topologies are all regular, so the tables built from the first
    observation's degree cover every node the walk can reach.
    """

    def factory(ctx):
        def program():
            obs = yield
            deg = obs.degree
            table = [Action.move(p) for p in range(deg)]
            nxt = [(p + 1) % deg for p in range(deg)]
            port = ctx.label % deg
            for _ in range(rounds):
                obs = yield table[port]
                port = nxt[obs.entry_port]
            yield Action.terminate()

        return program()

    return factory


def _torus_side(n: int) -> int:
    side = round(n ** 0.5)
    if side * side != n or side < 3:
        raise ValueError(f"torus sizes must be perfect squares >= 9, got {n}")
    return side


TOPOLOGIES: Dict[str, Callable[[int], PortGraph]] = {
    "ring": lambda n: gg.ring(n),
    "torus": lambda n: gg.torus(_torus_side(n), _torus_side(n)),
    "random_regular": lambda n: gg.random_regular(n, d=3, seed=7),
}


def kernel_specs(graph: PortGraph, k: int, rounds: int) -> List[RobotSpec]:
    """``k`` rotor-walk robots scattered deterministically over the graph."""
    n = graph.n
    return [
        RobotSpec(label=i + 1, start=(i * 37) % n, factory=lean_rotor_program(rounds))
        for i in range(k)
    ]


def _one_run(cls, graph: PortGraph, k: int, rounds: int):
    sched = cls(graph, kernel_specs(graph, k, rounds))
    t0 = time.perf_counter()
    sched.run(max_rounds=rounds + 10)
    return time.perf_counter() - t0, sched


def measure_cell(
    topology: str,
    n: int,
    rounds: int,
    repeats: int = 5,
    k: int | None = None,
) -> Dict[str, object]:
    """Benchmark one (topology, n) cell under both schedulers.

    Returns a JSON-ready dict with best-of-``repeats`` timings.  Also
    asserts that the fast path and the seed scheduler produce identical
    positions and metrics on this workload (the cheap in-benchmark
    differential; the exhaustive one lives in
    ``tests/test_fastpath_differential.py``).
    """
    graph = TOPOLOGIES[topology](n)
    if k is None:
        k = max(4, n // 16)

    # correctness gate before timing
    _, fast_s = _one_run(Scheduler, graph, k, rounds)
    _, ref_s = _one_run(ReferenceScheduler, graph, k, rounds)
    if fast_s.positions() != ref_s.positions():
        raise AssertionError(f"{topology} n={n}: fast/seed positions diverge")
    if fast_s.metrics.as_dict() != ref_s.metrics.as_dict():
        raise AssertionError(f"{topology} n={n}: fast/seed metrics diverge")

    fast_dt = min(_one_run(Scheduler, graph, k, rounds)[0] for _ in range(repeats))
    ref_dt = min(_one_run(ReferenceScheduler, graph, k, rounds)[0] for _ in range(repeats))

    executed = fast_s.metrics.rounds_executed
    traverses = fast_s.metrics.total_moves
    return {
        "topology": topology,
        "n": n,
        "k": k,
        "rounds_executed": executed,
        "traverses": traverses,
        "fast_seconds": fast_dt,
        "seed_seconds": ref_dt,
        "fast_rounds_per_sec": executed / fast_dt,
        "seed_rounds_per_sec": executed / ref_dt,
        "fast_traverses_per_sec": traverses / fast_dt,
        "seed_traverses_per_sec": traverses / ref_dt,
        "speedup": ref_dt / fast_dt,
    }


def run_suite(
    sizes=(64, 256, 1024), rounds: int = 400, repeats: int = 5
) -> Dict[str, object]:
    """The full grid; returns the ``BENCH_simcore.json`` payload."""
    workloads = []
    for topology in TOPOLOGIES:
        for n in sizes:
            workloads.append(measure_cell(topology, n, rounds, repeats))
    headline = next(
        (
            w
            for w in workloads
            if w["topology"] == "random_regular" and w["n"] == max(sizes)
        ),
        workloads[-1],
    )
    return {
        "benchmark": "simcore-kernel",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rounds": rounds,
        "repeats": repeats,
        "workloads": workloads,
        "summary": {
            "headline_workload": f"{headline['topology']} n={headline['n']}",
            "headline_speedup": headline["speedup"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[64, 256, 1024])
    parser.add_argument("--rounds", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default="BENCH_simcore.json")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny CI smoke: n=64 only, few rounds",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.sizes, args.rounds, args.repeats = [64], 60, 2

    payload = run_suite(tuple(args.sizes), args.rounds, args.repeats)

    from repro.analysis.tables import render_table

    rows = [
        {
            "topology": w["topology"],
            "n": w["n"],
            "k": w["k"],
            "fast rounds/s": f"{w['fast_rounds_per_sec']:.0f}",
            "seed rounds/s": f"{w['seed_rounds_per_sec']:.0f}",
            "fast trav/s": f"{w['fast_traverses_per_sec']:.0f}",
            "speedup": f"{w['speedup']:.2f}x",
        }
        for w in payload["workloads"]
    ]
    print(render_table(rows, title="simulation kernel: fast path vs seed scheduler"))

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.out} (headline: {payload['summary']['headline_speedup']:.2f}x "
          f"on {payload['summary']['headline_workload']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
