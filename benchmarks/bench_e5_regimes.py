"""E5 — Theorem 16: the headline regime table.

For each ``n`` and each ``k`` regime (``k >= ⌊n/2⌋+1``, ``⌊n/3⌋+1 <= k <
⌊n/2⌋+1``, ``k < ⌊n/3⌋+1``), adversarially scattered robots are gathered
with detection, and the measured rounds respect the regime boundaries:

* regime (i) finishes within the ``O(n^3)`` boundary (step 3);
* regime (ii) within the ``O(n^4 log n)`` boundary (step 5);
* regime ordering is strict for matched ``n``: rounds(i) <= rounds(ii) <=
  rounds(iii) — the "power of many robots" in one line.
"""

from __future__ import annotations

import pytest

from repro.analysis import adversarial_scatter, assign_labels, min_pairwise_distance, run_gathering
from repro.analysis.experiments import regime_for
from repro.core import bounds
from repro.core.faster_gathering import faster_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment

NS = [9, 12, 15]


def k_for(regime: str, n: int) -> int:
    if regime == "n3":
        return n // 2 + 1
    if regime == "n4logn":
        return n // 3 + 1
    return 2  # the hardest small-k case


def run_sweep():
    rows = []
    for n in NS:
        g = gg.ring(n)
        boundaries = bounds.faster_gathering_boundaries(n)
        for regime in ("n3", "n4logn", "n5"):
            k = k_for(regime, n)
            assert regime_for(k, n) == regime
            # the adversary scatters as widely as it can (best of 3 seeds)
            best = None
            for seed in range(3):
                starts = adversarial_scatter(g, k, seed=seed)
                d = min_pairwise_distance(g, starts)
                if best is None or d > best[1]:
                    best = (starts, d)
            starts, dist = best
            labels = assign_labels(k, n, seed=n + k)
            rec = run_gathering(
                "faster", g, starts, labels, lambda: faster_gathering_program()
            )
            assert rec.gathered and rec.detected, (n, regime)
            rows.append(
                {
                    "n": n,
                    "regime": regime,
                    "k": k,
                    "scatter_dist": dist,
                    "rounds": rec.rounds,
                    "bound_step3": boundaries[2],
                    "bound_step5": boundaries[4],
                    "detected": rec.detected,
                }
            )
    return rows


@pytest.mark.benchmark(group="E5")
def test_e5_regime_table(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E5 - Theorem 16 regime table (the headline result)", rows)
    for n in NS:
        by_regime = {r["regime"]: r for r in rows if r["n"] == n}
        # Lemma 15 guarantees the distances, Theorem 12 the boundaries:
        assert by_regime["n3"]["scatter_dist"] <= 2
        assert by_regime["n3"]["rounds"] <= by_regime["n3"]["bound_step3"] + 1
        assert by_regime["n4logn"]["scatter_dist"] <= 4
        assert by_regime["n4logn"]["rounds"] <= by_regime["n4logn"]["bound_step5"] + 1
        # strict regime ordering for matched n (allow ties when the adversary
        # fails to exploit the smaller k)
        assert (
            by_regime["n3"]["rounds"]
            <= by_regime["n4logn"]["rounds"]
            <= by_regime["n5"]["rounds"]
        ), f"regime ordering violated for n={n}"
