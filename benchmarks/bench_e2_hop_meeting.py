"""E2 — Lemmas 9-10: ``i-Hop-Meeting`` reaches an undispersed configuration
in ``O(n^i log n)`` rounds (two robots at exact hop distance ``i``).

The procedure is an oblivious schedule of ``schedule_bits(n)`` cycles of
``T(i) = Σ 2(n-1)^j`` rounds, so the round count is formula-exact; the
interesting measured quantities are (a) that the designated pair really is
assembled, (b) the round of the *first meeting* (well inside the schedule),
and (c) the log–log slope of the schedule in ``n`` matching the claimed
exponent ``i``.
"""

from __future__ import annotations

import pytest

from repro.analysis.fitting import loglog_slope
from repro.core import bounds
from repro.core.hop_meeting import hop_meeting_program
from repro.graphs import generators as gg
from tests.conftest import run_world

from conftest import print_experiment

RING_NS = [8, 12, 16]
DISTANCES = [1, 2, 3, 4, 5]


def run_sweep():
    rows = []
    for i in DISTANCES:
        for n in RING_NS:
            g = gg.ring(n)
            if 2 * i > n:
                continue
            starts = [0, i]
            labels = [5, 9]
            res = run_world(g, starts, labels, hop_meeting_program(i))
            positions = list(res.positions.values())
            undispersed = len(set(positions)) < len(positions)
            assert undispersed, f"i={i}, n={n}: pair not assembled"
            rows.append(
                {
                    "i": i,
                    "n": n,
                    "rounds": res.rounds,
                    "bound_T(i)*bits": bounds.hop_meeting_rounds(i, n),
                    "first_meet": res.metrics.first_gather_round,
                    "max_moves": res.metrics.max_moves,
                    "assembled": undispersed,
                }
            )
    return rows


@pytest.mark.benchmark(group="E2")
def test_e2_hop_meeting_shape(bench_once):
    rows = bench_once(run_sweep)
    print_experiment(
        "E2 - i-Hop-Meeting (Lemmas 9-10: O(n^i log n) on rings)", rows
    )
    for i in DISTANCES:
        i_rows = [r for r in rows if r["i"] == i and r["n"] in RING_NS]
        if len(i_rows) < 2:
            continue
        ns = [r["n"] for r in i_rows]
        rounds = [r["rounds"] for r in i_rows]
        slope = loglog_slope(ns, rounds)
        print(f"  i={i}: schedule slope = {slope:.2f} (claimed ~{i}, log factor adds drift)")
        # the n^i term dominates: slope within [i-1, i+0.8] for these sizes
        assert i - 1.0 <= slope <= i + 0.8, f"E2 slope off for i={i}: {slope:.2f}"
        # meeting always happens well before the schedule ends
        for r in i_rows:
            assert r["first_meet"] is not None
            assert r["first_meet"] < r["rounds"]
