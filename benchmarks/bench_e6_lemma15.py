"""E6 — Lemma 15: ``⌊n/c⌋ + 1`` robots ⇒ some pair within ``2c - 2`` hops.

The structural lemma behind Theorem 16's regimes.  The adversary (greedy
farthest-point scatter, best of several seeds) attacks the bound on every
graph family; rows report the best distance the adversary achieved against
the bound.  The bound must never be violated, and on path-like graphs it
should be approached (within the greedy scatterer's 2-approximation).
"""

from __future__ import annotations

import pytest

from repro.analysis import adversarial_scatter, min_pairwise_distance
from repro.graphs import generators as gg

from conftest import print_experiment

FAMILIES = [
    ("ring", lambda: gg.ring(24)),
    ("path", lambda: gg.path(25)),
    ("grid", lambda: gg.grid(5, 5)),
    ("random_tree", lambda: gg.random_tree(24, seed=5)),
    ("erdos_renyi", lambda: gg.erdos_renyi(24, seed=7)),
    ("random_regular", lambda: gg.random_regular(24, 3, seed=3)),
    ("hypercube", lambda: gg.hypercube(4)),
    ("complete", lambda: gg.complete(16)),
]

CS = [2, 3, 4]


def run_sweep():
    rows = []
    for name, builder in FAMILIES:
        g = builder()
        for c in CS:
            k = g.n // c + 1
            if k < 2 or k > g.n:
                continue
            best = 0
            for seed in range(6):
                starts = adversarial_scatter(g, k, seed=seed)
                d = min_pairwise_distance(g, starts)
                best = max(best, d)
            rows.append(
                {
                    "family": name,
                    "n": g.n,
                    "c": c,
                    "k": k,
                    "adversary_best": best,
                    "bound_2c-2": 2 * c - 2,
                    "holds": best <= 2 * c - 2,
                }
            )
    return rows


@pytest.mark.benchmark(group="E6")
def test_e6_lemma15(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E6 - Lemma 15 proximity bound under adversarial scatter", rows)
    for r in rows:
        assert r["holds"], f"Lemma 15 violated: {r}"
    # tightness: on the path, c=2 should let the adversary reach distance
    # 2 = 2c-2 exactly (alternating placement)
    path_rows = [r for r in rows if r["family"] == "path" and r["c"] == 2]
    assert path_rows and path_rows[0]["adversary_best"] >= 1
