"""Shared helpers for the benchmark harness.

Each ``bench_e*.py`` module regenerates one experiment from DESIGN.md's
index (the paper has no empirical tables/figures; the experiments check the
theorem-level claims' *shapes*).  Conventions:

* simulated **rounds** are the paper's cost metric; wall-clock time is
  tracked by pytest-benchmark for regression purposes only;
* every module prints its rows through
  :func:`repro.analysis.tables.render_table` so ``--benchmark-only`` output
  doubles as the EXPERIMENTS.md record;
* shape assertions (log–log slopes, regime ordering, who-wins) are real
  ``assert``s — a failed reproduction fails the bench suite.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import pytest


def print_experiment(title: str, rows: List[dict], columns: Sequence[str] | None = None):
    from repro.analysis.tables import render_table

    print()
    print(render_table(rows, columns=columns, title=title))


@pytest.fixture
def bench_once(benchmark):
    """Run a row-producing callable exactly once under pytest-benchmark.

    Simulation results are deterministic; repeating iterations would only
    re-measure wall time, so one round is enough and keeps the suite quick.
    """

    def runner(fn: Callable[[], object]):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
