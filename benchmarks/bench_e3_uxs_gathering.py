"""E3 — Theorem 6: UXS gathering with detection for any number of robots.

Sweeps ``n`` and ``k`` over families with dispersed placements:

* gathering + detection always succeed, for any ``k`` (including ``k = 1``);
* rounds stay within the oblivious budget ``(bits+1)·2T`` where ``T`` is the
  certified practical plan length (DESIGN.md S1 — the paper's ``Õ(n^5)``
  padding is also reported for comparison in the printed table);
* detection adds its ``2T`` silent-wait tail on top of the first-gather
  round (quantified precisely in E10).
"""

from __future__ import annotations

import pytest

from repro.analysis import assign_labels, dispersed_random, run_gathering
from repro.core import bounds
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from repro.uxs.generators import practical_plan

from conftest import print_experiment

CASES = [
    ("ring", 6, 2), ("ring", 6, 3), ("ring", 9, 2), ("ring", 9, 4),
    ("ring", 12, 2), ("ring", 12, 6),
    ("erdos_renyi", 9, 3), ("erdos_renyi", 12, 4),
    ("random_tree", 9, 3), ("random_tree", 12, 4),
]


def graph_for(family, n):
    if family == "ring":
        return gg.ring(n)
    if family == "erdos_renyi":
        return gg.erdos_renyi(n, seed=n + 1)
    return gg.random_tree(n, seed=n + 2)


def run_sweep():
    rows = []
    for family, n, k in CASES:
        g = graph_for(family, n)
        starts = dispersed_random(g, k, seed=n * k)
        labels = assign_labels(k, n, seed=k)
        rec = run_gathering(
            f"uxs/{family}", g, starts, labels, lambda: uxs_gathering_program()
        )
        assert rec.gathered and rec.detected, (family, n, k)
        plan = practical_plan(n)
        budget = 1 + (bounds.schedule_bits(n) + 1) * 2 * plan.T + 1
        rows.append(
            {
                "family": family,
                "n": n,
                "k": k,
                "T_prac": plan.T,
                "rounds": rec.rounds,
                "budget": budget,
                "first_gather": rec.first_gather_round,
                "total_moves": rec.total_moves,
                "detected": rec.detected,
            }
        )
    return rows


@pytest.mark.benchmark(group="E3")
def test_e3_uxs_gathering(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E3 - UXS gathering with detection (Theorem 6)", rows)
    for r in rows:
        assert r["detected"]
        assert r["rounds"] <= r["budget"], f"over budget: {r}"
        assert r["first_gather"] is not None
    # theoretical Õ(n^5) schedule lengths, for the record
    for n in (6, 9, 12):
        print(f"  paper-exact schedule for n={n}: ~n^5 = {n**5} per exploration")
