"""E12 (extension) — the §1.4 *cost* metric: total edge traversals.

The paper optimizes time (rounds) and mentions cost (total moves by all
robots) as the literature's other currency.  This experiment measures both
on identical many-robot configurations: ``Faster-Gathering`` must win on
cost too in its regime — its movement is a handful of token explorations
plus one sweep (``O(n·m)`` moves by one finder), whereas the UXS baseline
has *every* free robot walking full exploration sequences for every 1-bit.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import cost_sweep

from conftest import print_experiment


@pytest.mark.benchmark(group="E12")
def test_e12_cost_metric(bench_once):
    rows = bench_once(lambda: cost_sweep(ns=(9, 12, 15)))
    print_experiment("E12 - extension: the cost metric (total moves)", rows)
    for r in rows:
        assert r["faster_moves"] < r["tz_moves"], r
    # the gap widens with n (the baseline's exploration volume scales with
    # T(n) per robot; Faster-Gathering's with one finder's n*m)
    ratios = [r["moves_ratio_tz/faster"] for r in rows]
    assert ratios[-1] > ratios[0]
