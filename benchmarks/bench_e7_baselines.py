"""E7 — who wins: ``Faster-Gathering`` vs the prior art.

Head-to-head on identical configurations:

* vs **Ta-Shma–Zwick-style UXS rendezvous** (the state of the art the paper
  improves on): with many robots (``k >= ⌊n/3⌋+1``), Faster-Gathering must
  gather-with-detection in fewer rounds than the baseline needs to merely
  *gather* (no detection).  With two far-apart robots the ordering flips —
  Faster-Gathering pays for its staged hop-meeting schedules before falling
  back to the same UXS machinery — exactly the crossover the paper's
  discussion after Lemma 10 predicts.
* vs **Dessmark et al.**: the escalating-ball rendezvous explodes
  exponentially with the initial distance on non-tree graphs, while
  Faster-Gathering's staged boundaries grow polynomially.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    adversarial_scatter,
    assign_labels,
    dispersed_with_pair_distance,
    run_gathering,
)
from repro.baselines import dessmark_program, tz_rendezvous_program
from repro.core.faster_gathering import faster_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment


def run_many_robots():
    """Guaranteed-completion comparison.

    TZ-style rendezvous has no detection: its robots can never stop, so the
    meaningful deterministic quantity is its full schedule length (the
    round by which gathering is *guaranteed*), which we measure by running
    the schedule out.  First-gather rounds are reported too — on small
    graphs the baseline often gets lucky early, but no robot knows it.
    """
    rows = []
    for n in (9, 12):
        g = gg.ring(n)
        k = n // 3 + 1
        starts = adversarial_scatter(g, k, seed=1)
        labels = assign_labels(k, n, seed=2)
        fast = run_gathering("faster", g, starts, labels,
                             lambda: faster_gathering_program())
        lucky = run_gathering("tz", g, starts, labels,
                              lambda: tz_rendezvous_program(), stop_on_gather=True)
        full = run_gathering("tz-full", g, starts, labels,
                             lambda: tz_rendezvous_program())
        assert fast.gathered and fast.detected
        rows.append(
            {
                "config": f"ring n={n} k={k} (many robots)",
                "faster_rounds(det)": fast.rounds,
                "tz_first_gather(lucky)": lucky.first_gather_round,
                "tz_schedule_end(guaranteed)": full.rounds,
                "faster_wins": fast.rounds < full.rounds,
            }
        )
    return rows


def run_two_far():
    rows = []
    g = gg.path(16)
    starts = [0, 15]
    labels = [5, 9]
    fast = run_gathering("faster", g, starts, labels,
                         lambda: faster_gathering_program())
    full = run_gathering("tz-full", g, starts, labels,
                         lambda: tz_rendezvous_program())
    rows.append(
        {
            "config": "path n=16, two robots at the ends",
            "faster_rounds(det)": fast.rounds,
            "tz_schedule_end(guaranteed)": full.rounds,
            "faster_wins": fast.rounds < full.rounds,
        }
    )
    return rows


def run_dessmark_blowup():
    """Dessmark's Δ^D wall on a barbell (two cliques joined by a path).

    At distance 1 (inside a clique) the escalating-ball rendezvous wins
    outright — Faster-Gathering always pays its O(n^3) step-1 schedule.
    But the ball cost is Σ 2(n-1)^j per cycle at radius j: as the distance
    grows past the clique, Dessmark's rounds explode exponentially while
    Faster-Gathering's staged boundaries grow polynomially and cap out at
    the UXS fallback.  The measured ratio must flip and then blow up.
    """
    rows = []
    g = gg.barbell(12)
    for dist in (1, 2, 6):
        starts = dispersed_with_pair_distance(g, 2, dist, seed=2)
        labels = [5, 9]
        fast = run_gathering("faster", g, starts, labels,
                             lambda: faster_gathering_program())
        dess = run_gathering("dessmark", g, starts, labels,
                             lambda: dessmark_program(), uses_uxs=False)
        rows.append(
            {
                "pair_dist": dist,
                "faster_rounds": fast.rounds,
                "dessmark_rounds": dess.rounds,
                "dessmark/faster": dess.rounds / fast.rounds,
            }
        )
    return rows


@pytest.mark.benchmark(group="E7")
def test_e7_vs_tz_many_robots(bench_once):
    rows = bench_once(run_many_robots)
    print_experiment("E7a - Faster-Gathering vs TZ-UXS (many robots)", rows)
    for r in rows:
        assert r["faster_wins"], f"paper's win condition failed: {r}"


@pytest.mark.benchmark(group="E7")
def test_e7_crossover_two_far_robots(bench_once):
    rows = bench_once(run_two_far)
    print_experiment("E7b - crossover: two far-apart robots", rows)
    # beyond distance 5 the staged schedule is pure overhead: TZ's
    # first-gather must beat Faster-Gathering's detection-complete time
    for r in rows:
        assert not r["faster_wins"], f"expected the crossover here: {r}"


@pytest.mark.benchmark(group="E7")
def test_e7_dessmark_blowup(bench_once):
    rows = bench_once(run_dessmark_blowup)
    print_experiment("E7c - Dessmark exponential blow-up with distance (barbell)", rows)
    ratios = [r["dessmark/faster"] for r in rows]
    # nearby: the classic approach may win (Faster pays its O(n^3) step 1)
    # far: the Δ^D wall hits — the ratio must grow by orders of magnitude
    assert ratios[-1] > 10, f"no blow-up visible: {ratios}"
    assert ratios[-1] > 100 * ratios[0], f"ratio did not flip hard enough: {ratios}"
