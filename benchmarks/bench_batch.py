"""Replica-campaign benchmark: the lockstep batch engine vs the scalar loop.

Measures **replicas per second** for multi-seed campaigns — R seed-replicas
of one :class:`~repro.runtime.RunSpec` — executed two ways through the same
:func:`repro.runtime.execute` entry point:

* ``scalar`` — the per-replica loop (the default engine): every replica
  pays materialization, graph checks, scheduler construction, the full
  per-round loop, and record assembly on its own;
* ``batch``  — the lockstep replica engine (``engine="batch-numpy"`` /
  ``engine="batch-list"``): one shared graph + CSR kernel, graph-pure checks paid
  once, a fused round loop with per-turn gate amortization, and a
  per-graph BFS memo for the pair-distance column;
* ``numpy2d`` — the replica-major engine (``engine="batch-numpy2d"``):
  the probe program is a :class:`~repro.sim.vector.VectorProgram`, so
  whole replicas execute as R×k array kernels over the shared CSR (one
  ``np.take`` advances every robot of every replica one round) and only
  the record assembly runs per replica.

The workload is the kernel rotor walk of ``bench_simcore.py`` (exit
through ``entry_port + 1``), seeded per replica through the spec's seed so
placements *and* walks differ across replicas — the shape of a real
gathering campaign, minus algorithm cost that would drown the engines
under measurement.  Before timing, every cell asserts that scalar and
every batch backend produce **bit-identical** records (the exhaustive
differentials live in ``tests/test_batch_differential.py`` and
``tests/test_batch2d.py``).

The headline cell is ``ring n=256, k=2`` — the paper's rendezvous
configuration, where per-round scheduler overhead dominates the two
program activations and batching pays most.  Larger fleets amortize the
same absolute overhead over more per-robot work, so their speedups are
smaller; the grid reports them alongside.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch.py            # full grid
    PYTHONPATH=src python benchmarks/bench_batch.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from typing import Dict, List

from repro.runtime import (
    RunSpec,
    SerialExecutor,
    execute,
    register_algorithm,
    unregister_algorithm,
)
from repro.sim.batch import BACKENDS
from repro.sim.vector import rotor_walk_program

__all__ = ["CELLS", "build_specs", "measure_cell", "run_suite", "main"]

PROBE = "batch-bench-rotor"


def _rotor_builder(opts):
    """Kernel rotor walk, seeded: initial port depends on the spec seed, so
    replicas trace different walks over the same graph.

    Returns a :class:`~repro.sim.vector.VectorProgram`: scalar engines run
    the generator program (byte-identical to the pre-vector benchmark
    probe), while ``batch-numpy2d`` executes its array twin.
    """
    rounds = opts.get("rounds", 400)
    seed = opts.get("seed", 0)
    return rotor_walk_program(rounds, seed)


#: ``(cell name, family, graph params, k, replicas)`` — the campaign grid.
#: k=2 cells carry more replicas: they are the cheap/high-leverage regime
#: the batch engine targets, and more seeds is what a real campaign wants.
CELLS: List[tuple] = [
    ("ring n=256 k=2 (rendezvous)", "ring", {"n": 256}, 2, 128),
    ("torus 16x16 k=2 (rendezvous)", "torus", {"rows": 16, "cols": 16}, 2, 128),
    ("ring n=256 k=4", "ring", {"n": 256}, 4, 64),
    ("ring n=256 k=16", "ring", {"n": 256}, 16, 64),
    ("random-regular n=256 k=8", "random_regular", {"n": 256, "d": 3, "seed": 7}, 8, 64),
]

QUICK_CELLS: List[tuple] = [
    ("ring n=64 k=2 (rendezvous)", "ring", {"n": 64}, 2, 16),
    ("ring n=64 k=4", "ring", {"n": 64}, 4, 8),
]

HEADLINE = "ring n=256 k=2 (rendezvous)"


def build_specs(family: str, graph: Dict, k: int, replicas: int, rounds: int) -> List[RunSpec]:
    """R probe specs differing only by seed (the batchable shape)."""
    base = RunSpec(
        algorithm=PROBE,
        family=family,
        graph=dict(graph),
        placement="dispersed",
        k=k,
        algorithm_args={"rounds": rounds},
        uses_uxs=False,
    )
    return [replace(base, seed=s) for s in range(replicas)]


def _timed(specs: List[RunSpec], **kwargs):
    t0 = time.perf_counter()
    result = execute(specs, executor=SerialExecutor(), **kwargs)
    dt = time.perf_counter() - t0
    failures = [o for o in result.outcomes if not o.ok]
    if failures:
        raise AssertionError(
            f"{len(failures)} probe specs failed: {failures[0].error_type}: "
            f"{failures[0].error}"
        )
    return dt, result


def measure_cell(
    name: str, family: str, graph: Dict, k: int, replicas: int,
    rounds: int = 400, repeats: int = 3,
) -> Dict[str, object]:
    """Benchmark one campaign cell: scalar loop vs both batch backends.

    Asserts record bit-identity across all three execution modes before
    timing, so every number describes the same semantics.
    """
    specs = build_specs(family, graph, k, replicas, rounds)
    modes = {
        "scalar": {},
        "numpy2d": {"engine": "batch-numpy2d"},
        "numpy": {"engine": "batch-numpy"},
        "list": {"engine": "batch-list"},
    }
    if "numpy" not in BACKENDS:  # pragma: no cover - numpy-less environments
        del modes["numpy"]
        del modes["numpy2d"]

    # correctness gate before timing
    reference = None
    for mode, kwargs in modes.items():
        _, result = _timed(specs, **kwargs)
        records = [o.run.to_dict() for o in result.outcomes]
        if reference is None:
            reference = records
        elif records != reference:
            raise AssertionError(f"{name}: {mode} records diverge from scalar")

    timings = {
        mode: min(_timed(specs, **kwargs)[0] for _ in range(repeats))
        for mode, kwargs in modes.items()
    }
    best_batch = min(dt for mode, dt in timings.items() if mode != "scalar")
    cell = {
        "cell": name,
        "family": family,
        "graph": graph,
        "k": k,
        "replicas": replicas,
        "rounds": rounds,
        "scalar_seconds": timings["scalar"],
        "scalar_replicas_per_sec": replicas / timings["scalar"],
        "speedup": timings["scalar"] / best_batch,
    }
    for mode, dt in timings.items():
        if mode != "scalar":
            cell[f"batch_{mode}_seconds"] = dt
            cell[f"batch_{mode}_replicas_per_sec"] = replicas / dt
    return cell


def run_suite(cells=None, rounds: int = 400, repeats: int = 3) -> Dict[str, object]:
    """The full campaign grid; returns the ``BENCH_batch.json`` payload."""
    cells = CELLS if cells is None else cells
    register_algorithm(PROBE, _rotor_builder, uses_uxs=False, detects=True)
    try:
        workloads = [
            measure_cell(name, family, graph, k, replicas, rounds, repeats)
            for name, family, graph, k, replicas in cells
        ]
    finally:
        unregister_algorithm(PROBE)
    headline = next(
        (w for w in workloads if w["cell"] == HEADLINE), workloads[0]
    )
    return {
        "benchmark": "batch-replicas",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "rounds": rounds,
        "repeats": repeats,
        "workload": (
            "seeded kernel rotor walk per replica (placements and walks vary "
            "by seed); scalar per-replica loop vs lockstep batch engine, both "
            "through repro.runtime.execute; records asserted bit-identical "
            "before timing"
        ),
        "workloads": workloads,
        "summary": {
            "headline_workload": headline["cell"],
            "headline_speedup": headline["speedup"],
            "headline_replicas_per_sec": max(
                v for key, v in headline.items()
                if key.endswith("_replicas_per_sec") and key != "scalar_replicas_per_sec"
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=400,
                        help="rotor-walk length per replica (default 400)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_batch.json")
    parser.add_argument("--quick", action="store_true",
                        help="tiny CI smoke: n=64 cells, few replicas, 1 repeat")
    args = parser.parse_args(argv)
    cells = CELLS
    if args.quick:
        cells, args.rounds, args.repeats = QUICK_CELLS, 120, 1

    payload = run_suite(cells, args.rounds, args.repeats)

    from repro.analysis.tables import render_table

    rows = []
    for w in payload["workloads"]:
        row = {
            "cell": w["cell"],
            "R": w["replicas"],
            "scalar rep/s": f"{w['scalar_replicas_per_sec']:.0f}",
        }
        for mode in ("numpy2d", "numpy", "list"):
            key = f"batch_{mode}_replicas_per_sec"
            if key in w:
                row[f"{mode} rep/s"] = f"{w[key]:.0f}"
        row["speedup"] = f"{w['speedup']:.2f}x"
        rows.append(row)
    print(render_table(rows, title="replica campaigns: lockstep batch engine vs scalar loop"))

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.out} (headline: {payload['summary']['headline_speedup']:.2f}x "
          f"on {payload['summary']['headline_workload']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
