"""E9 — Remark 14 ablation: knowing the maximum degree Δ.

With Δ known, hop-meeting cycles shrink from ``Σ 2(n-1)^j`` to ``Σ 2Δ^j``.
On bounded-degree families (rings Δ=2, 3-regular graphs) this is the
difference between ``O(n^i log n)`` and ``O(Δ^i log n)``-per-cycle
schedules — rows quantify it per family and per distance, and the speed-up
must grow with the distance handled (the cycle gap compounds per level).
"""

from __future__ import annotations

import pytest

from repro.analysis import assign_labels, dispersed_with_pair_distance, run_gathering
from repro.core import bounds
from repro.core.faster_gathering import faster_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment


def run_sweep():
    rows = []
    cases = [
        ("ring n=14", gg.ring(14), 2, [2, 3]),
        ("3-regular n=12", gg.random_regular(12, 3, seed=4), 3, [2, 3]),
    ]
    for name, g, delta, dists in cases:
        for dist in dists:
            try:
                starts = dispersed_with_pair_distance(g, 2, dist, seed=3)
            except Exception:
                continue
            labels = assign_labels(2, g.n, seed=dist + 7)
            plain = run_gathering(
                "faster", g, starts, labels, lambda: faster_gathering_program()
            )
            aware = run_gathering(
                "faster+delta", g, starts, labels,
                lambda: faster_gathering_program(),
                knowledge={"max_degree": delta},
            )
            assert plain.detected and aware.detected
            rows.append(
                {
                    "graph": name,
                    "delta": delta,
                    "pair_dist": dist,
                    "rounds_blind": plain.rounds,
                    "rounds_delta_aware": aware.rounds,
                    "speedup": plain.rounds / aware.rounds,
                    "cycle_blind": bounds.hop_cycle_length(dist, g.n),
                    "cycle_aware": bounds.hop_cycle_length(dist, g.n, delta),
                }
            )
    return rows


@pytest.mark.benchmark(group="E9")
def test_e9_known_delta_ablation(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E9 - Remark 14: known maximum degree", rows)
    for r in rows:
        assert r["rounds_delta_aware"] < r["rounds_blind"], r
        assert r["cycle_aware"] < r["cycle_blind"]
    # speed-up compounds with distance on the same graph
    ring_rows = [r for r in rows if r["graph"].startswith("ring")]
    if len(ring_rows) >= 2:
        assert ring_rows[-1]["speedup"] > ring_rows[0]["speedup"]
