"""Sweep-runtime benchmark: graph memoization and chunked cache I/O.

Measures the **runtime layer's** per-spec overhead — graph construction,
placement, labeling, dispatch, record handling — across a ``workers=4``
batch of 200+ specs over a small set of distinct topologies, and writes
``BENCH_sweep.json`` with the wall-clock ratio between

* ``cold``   — per-spec graph builds (``repro.runtime.graph_cache``
  disabled), the pre-memoization behavior, and
* ``memo``   — the per-worker graph/CSR memo enabled (the default), where
  each worker builds each topology at most once per batch.

The robot program is a minimal terminating probe, so the numbers isolate
what the runtime layer itself costs: this is the regime — many seeds per
topology, cheap per-run simulation — where topology rebuild cost dominates
a sweep, and the regime the memo exists for.  Real algorithm sweeps see
proportionally smaller wall-clock gains (their simulations amortize the
build), but save exactly the same absolute rebuild work.

A second section measures cache-file I/O: executing the same batch against
a fresh :class:`~repro.runtime.ResultCache` with per-run write-through
vs ``cache_chunk=32`` write-behind, and re-reading the fully-cached batch,
reporting files written and wall-clock for each.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sweep.py            # full batch
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.runtime import (
    ParallelExecutor,
    ResultCache,
    RunSpec,
    execute,
    graph_cache,
    register_algorithm,
    unregister_algorithm,
)
from repro.sim.actions import Action

__all__ = ["build_specs", "measure_executions", "measure_cache_io", "run_suite", "main"]

PROBE = "sweep-bench-probe"


def _probe_builder(opts):
    def factory(ctx):
        def program():
            obs = yield  # noqa: F841 - bootstrap observation
            yield Action.terminate()

        return program()

    return factory


#: (family, graph params) — the distinct topologies of the batch.  Mixed
#: sizes/families so the memo is exercised across keys, with
#: ``random_regular`` dominating (its seeded build-and-check loop is the
#: expensive one).
TOPOLOGIES: List[tuple] = [
    ("random_regular", {"n": 512, "d": 3, "seed": 11}),
    ("random_regular", {"n": 512, "d": 3, "seed": 13}),
    ("random_regular", {"n": 768, "d": 3, "seed": 11}),
    ("random_regular", {"n": 768, "d": 3, "seed": 13}),
    ("random_regular", {"n": 1024, "d": 3, "seed": 11}),
    ("random_regular", {"n": 1024, "d": 3, "seed": 13}),
    ("torus", {"rows": 32, "cols": 32}),
    ("ring", {"n": 1024}),
]


def build_specs(per_topology: int) -> List[RunSpec]:
    """``len(TOPOLOGIES) * per_topology`` probe specs, seeds varied."""
    specs = []
    for family, params in TOPOLOGIES:
        for s in range(per_topology):
            specs.append(
                RunSpec(
                    algorithm=PROBE,
                    family=family,
                    graph=dict(params),
                    placement="dispersed",
                    k=4,
                    seed=s,
                    uses_uxs=False,
                )
            )
    return specs


def _run_batch(specs, workers: int, cache=None, cache_chunk=None) -> float:
    executor = ParallelExecutor(workers=workers, mp_context="fork")
    t0 = time.perf_counter()
    result = execute(specs, executor=executor, cache=cache, cache_chunk=cache_chunk)
    dt = time.perf_counter() - t0
    failures = [o for o in result.outcomes if not o.ok and not o.cached]
    if failures:
        raise AssertionError(
            f"{len(failures)} probe specs failed: {failures[0].error_type}: "
            f"{failures[0].error}"
        )
    return dt


def measure_executions(specs, workers: int, repeats: int) -> Dict[str, object]:
    """Cold (per-spec builds) vs memoized execution of the same batch."""
    with graph_cache.disabled():
        cold = min(_run_batch(specs, workers) for _ in range(repeats))
    graph_cache.clear()
    memo = min(_run_batch(specs, workers) for _ in range(repeats))
    return {
        "specs": len(specs),
        "workers": workers,
        "distinct_topologies": len(TOPOLOGIES),
        "cold_seconds": cold,
        "memo_seconds": memo,
        "speedup": cold / memo,
    }


def measure_cache_io(specs, workers: int, chunk: int) -> Dict[str, object]:
    """Write-through vs chunked write-behind against fresh caches."""
    out: Dict[str, object] = {"chunk": chunk}
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "per-run")
        dt = _run_batch(specs, workers, cache=cache)
        files = sum(1 for _ in cache.root.rglob("*.json"))
        out["write_through"] = {"seconds": dt, "files": files}
        t0 = time.perf_counter()
        _run_batch(specs, workers, cache=cache)
        out["write_through"]["reread_seconds"] = time.perf_counter() - t0

        cache = ResultCache(Path(tmp) / "chunked")
        dt = _run_batch(specs, workers, cache=cache, cache_chunk=chunk)
        files = sum(1 for _ in cache.root.rglob("*.json"))
        out["chunked"] = {"seconds": dt, "files": files}
        t0 = time.perf_counter()
        _run_batch(specs, workers, cache=cache, cache_chunk=chunk)
        out["chunked"]["reread_seconds"] = time.perf_counter() - t0
    return out


def run_suite(per_topology: int = 25, workers: int = 4, repeats: int = 3) -> Dict[str, object]:
    """The full benchmark; returns the ``BENCH_sweep.json`` payload."""
    register_algorithm(PROBE, _probe_builder, uses_uxs=False, detects=True)
    try:
        specs = build_specs(per_topology)
        execution = measure_executions(specs, workers, repeats)
        cache_io = measure_cache_io(specs, workers, chunk=32)
    finally:
        unregister_algorithm(PROBE)
    return {
        "benchmark": "sweep-runtime",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": (
            "minimal terminating probe program; numbers isolate the runtime "
            "layer (graph build + placement + dispatch + records), the "
            "many-seeds-per-topology regime graph memoization targets"
        ),
        "execution": execution,
        "cache_io": cache_io,
        "summary": {
            "headline_workload": (
                f"{execution['specs']} specs / "
                f"{execution['distinct_topologies']} topologies, "
                f"workers={execution['workers']}"
            ),
            "headline_speedup": execution["speedup"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--per-topology", type=int, default=25,
                        help="specs per distinct topology (default 25 -> 200 specs)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_sweep.json")
    parser.add_argument("--quick", action="store_true",
                        help="tiny CI smoke: 3 specs per topology, 1 repeat")
    args = parser.parse_args(argv)
    if args.quick:
        args.per_topology, args.repeats = 3, 1

    payload = run_suite(args.per_topology, args.workers, args.repeats)

    ex = payload["execution"]
    io = payload["cache_io"]
    print(
        f"execution: {ex['specs']} specs over {ex['distinct_topologies']} "
        f"topologies, workers={ex['workers']}\n"
        f"  cold (per-spec builds): {ex['cold_seconds']:.2f}s\n"
        f"  memoized:               {ex['memo_seconds']:.2f}s\n"
        f"  speedup:                {ex['speedup']:.2f}x"
    )
    wt, ch = io["write_through"], io["chunked"]
    print(
        f"cache i/o (fresh cache, chunk={io['chunk']}):\n"
        f"  write-through: {wt['files']} files, {wt['seconds']:.2f}s "
        f"(re-read {wt['reread_seconds']:.2f}s)\n"
        f"  chunked:       {ch['files']} files, {ch['seconds']:.2f}s "
        f"(re-read {ch['reread_seconds']:.2f}s)"
    )

    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.out} (headline: {payload['summary']['headline_speedup']:.2f}x "
          f"on {payload['summary']['headline_workload']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
