"""Simulator throughput — wall-clock regression benchmarks.

Unlike E1–E13 (which measure *simulated rounds*, the paper's metric), these
benchmark the simulator itself: robot-activations per second on movement-
heavy and wait-heavy workloads.  They exist so that future changes to the
scheduler (the hottest loop in the repo) show up as wall-clock regressions
in ``--benchmark-compare`` runs.

The ``sweep-throughput`` group additionally measures the runtime layer:
the same batch of specs through :class:`repro.runtime.SerialExecutor` vs
:class:`repro.runtime.ParallelExecutor`, so the parallel speedup (and the
process-pool overhead floor on small batches) is a *measured* number in
``--benchmark-compare`` output, not an asserted one — while result
equality with serial execution *is* asserted.

The ``simcore-kernel`` group runs the flat-array kernel workloads of
``bench_simcore.py`` (rotor walks on ring / torus / random-regular) under
pytest-benchmark, pinning the fast scheduler's wall-clock *and* asserting
it matches the seed :class:`~repro.sim.reference.ReferenceScheduler`
bit-for-bit on positions and metrics.  The full profiled grid with JSON
output is the standalone ``bench_simcore.py`` (see ``docs/PERF.md``).
"""

from __future__ import annotations

import pytest

from bench_simcore import TOPOLOGIES, kernel_specs
from repro.analysis.placement import assign_labels, dispersed_random, undispersed_placement
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from repro.runtime import ParallelExecutor, RunSpec, SerialExecutor, run_specs
from repro.sim.reference import ReferenceScheduler
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler
from repro.sim.world import World


@pytest.mark.benchmark(group="throughput")
def test_throughput_movement_heavy(benchmark):
    """UXS gathering: explorers move every round (scheduler's hot path)."""
    g = gg.erdos_renyi(10, seed=2)
    starts = dispersed_random(g, 4, seed=1)
    labels = assign_labels(4, 10, seed=1)

    def run():
        specs = [RobotSpec(l, s, uxs_gathering_program()) for l, s in zip(labels, starts)]
        return World(g, specs).run()

    result = benchmark(run)
    assert result.gathered and result.detected


@pytest.mark.benchmark(group="throughput")
def test_throughput_wait_heavy(benchmark):
    """Undispersed gathering: dominated by padded waits — exercises the
    fast-forwarder (wall-clock should be tiny despite huge round counts)."""
    g = gg.ring(16)
    starts = undispersed_placement(g, 4, seed=2)
    labels = assign_labels(4, 16, seed=2)

    def run():
        specs = [
            RobotSpec(l, s, undispersed_gathering_program())
            for l, s in zip(labels, starts)
        ]
        return World(g, specs).run()

    result = benchmark(run)
    assert result.gathered
    # the whole point of the fast-forwarder: tens of thousands of simulated
    # rounds, a few hundred executed
    assert result.metrics.rounds > 20 * result.metrics.rounds_executed


def _sweep_batch():
    """A regime-table-shaped batch: every (n, k-regime) pair, 12 runs."""
    specs = []
    for n in (8, 10, 12, 14):
        for k in (2, n // 3 + 1, n // 2 + 1):
            specs.append(
                RunSpec(
                    algorithm="faster",
                    family="ring",
                    graph={"n": n},
                    placement="scatter",
                    k=k,
                    placement_args={"seed": 1},
                    labels_args={"seed": n + k},
                )
            )
    return specs


@pytest.mark.benchmark(group="sweep-throughput")
def test_sweep_throughput_serial(bench_once):
    specs = _sweep_batch()
    recs = bench_once(lambda: run_specs(specs, executor=SerialExecutor()))
    assert len(recs) == len(specs)
    assert all(r.gathered and r.detected for r in recs)


@pytest.mark.benchmark(group="sweep-throughput")
def test_sweep_throughput_parallel(bench_once):
    """Same batch fanned over 4 workers; rows must equal the serial run's.

    Compare against ``test_sweep_throughput_serial`` in the benchmark table:
    the ratio of the two medians is the measured sweep speedup (dominated by
    pool startup at this batch size; it grows with batch and instance size).
    """
    specs = _sweep_batch()
    recs = bench_once(
        lambda: run_specs(specs, executor=ParallelExecutor(workers=4, chunksize=1))
    )
    assert recs == run_specs(specs, executor=SerialExecutor())


@pytest.mark.benchmark(group="simcore-kernel")
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_kernel_fast_path(benchmark, topology):
    """Flat-array kernel workload (n=64): wall-clock regression anchor.

    Also asserts the fast path's end state equals the seed scheduler's on
    the same workload — the benchmark can never drift from the semantics.
    """
    graph = TOPOLOGIES[topology](64)
    rounds = 120

    def run():
        s = Scheduler(graph, kernel_specs(graph, k=4, rounds=rounds))
        s.run(max_rounds=rounds + 10)
        return s

    fast = benchmark(run)
    ref = ReferenceScheduler(graph, kernel_specs(graph, k=4, rounds=rounds))
    ref.run(max_rounds=rounds + 10)
    assert fast.positions() == ref.positions()
    assert fast.metrics.as_dict() == ref.metrics.as_dict()
    assert fast.metrics.total_moves == 4 * rounds


@pytest.mark.benchmark(group="throughput")
def test_throughput_many_followers(benchmark):
    """Follow-chain resolution with a large entourage."""
    g = gg.ring(10)
    k = 9
    starts = dispersed_random(g, k, seed=3)
    labels = assign_labels(k, 10, seed=3)

    def run():
        from repro.core.faster_gathering import faster_gathering_program

        specs = [
            RobotSpec(l, s, faster_gathering_program())
            for l, s in zip(labels, starts)
        ]
        return World(g, specs).run()

    result = benchmark(run)
    assert result.gathered and result.detected
