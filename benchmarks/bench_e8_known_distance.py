"""E8 — Remark 13 ablation: knowing the initial hop distance.

If the robots are told the minimum initial pair distance ``i``, they can
jump straight to step ``i+1`` instead of burning through steps 1..i.  Rows
compare identical configurations with and without the hint; the speed-up
must be strict for every ``i >= 1`` and grow with ``i`` (earlier steps are
the cheap ones).
"""

from __future__ import annotations

import pytest

from repro.analysis import assign_labels, dispersed_with_pair_distance, run_gathering
from repro.core.faster_gathering import faster_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment

N = 14


def run_sweep():
    g = gg.ring(N)
    rows = []
    for dist in (1, 2, 3, 4):
        starts = dispersed_with_pair_distance(g, 2, dist, seed=4)
        labels = assign_labels(2, N, seed=dist)
        plain = run_gathering(
            "faster", g, starts, labels, lambda: faster_gathering_program()
        )
        hinted = run_gathering(
            "faster+hint", g, starts, labels,
            lambda: faster_gathering_program(),
            knowledge={"hop_distance": dist},
        )
        assert plain.gathered and plain.detected
        assert hinted.gathered and hinted.detected
        rows.append(
            {
                "pair_dist": dist,
                "rounds_blind": plain.rounds,
                "rounds_hinted": hinted.rounds,
                "speedup": plain.rounds / hinted.rounds,
            }
        )
    return rows


@pytest.mark.benchmark(group="E8")
def test_e8_known_distance_ablation(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E8 - Remark 13: known initial distance", rows)
    for r in rows:
        assert r["rounds_hinted"] < r["rounds_blind"], r
    # the saving comes from skipping steps 1..i: it grows with i
    assert rows[-1]["rounds_blind"] - rows[-1]["rounds_hinted"] > (
        rows[0]["rounds_blind"] - rows[0]["rounds_hinted"]
    )
