"""E1 — Theorem 8: ``Undispersed-Gathering`` in O(n^3) rounds.

Sweeps ``n`` over several graph families with undispersed placements and
checks:

* gathering with detection always succeeds;
* the round count equals the oblivious schedule ``R(n) = Θ(n^3)`` (the
  algorithm *is* its schedule — termination is counter-based), so the
  measured log–log slope is ~3;
* the real work (max moves by any robot, dominated by the finder's Phase-1
  token exploration) stays within the O(n·m) budget that justifies R1.
"""

from __future__ import annotations

import pytest

from repro.analysis import assign_labels, run_gathering, undispersed_placement
from repro.analysis.fitting import slope_within
from repro.core import bounds
from repro.core.undispersed import undispersed_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment

NS = [8, 12, 16, 24]
K = 4


def graph_for(family: str, n: int):
    if family == "ring":
        return gg.ring(n)
    if family == "erdos_renyi":
        return gg.erdos_renyi(n, seed=n)
    if family == "random_tree":
        return gg.random_tree(n, seed=n)
    if family == "complete":
        return gg.complete(n)
    raise ValueError(family)


def run_sweep():
    rows = []
    for family in ("ring", "erdos_renyi", "random_tree", "complete"):
        for n in NS:
            g = graph_for(family, n)
            starts = undispersed_placement(g, K, seed=n)
            labels = assign_labels(K, n, seed=n)
            rec = run_gathering(
                f"undispersed/{family}", g, starts, labels,
                lambda: undispersed_gathering_program(), uses_uxs=False,
            )
            assert rec.gathered and rec.detected, (family, n)
            rows.append(
                {
                    "family": family,
                    "n": n,
                    "m": rec.m,
                    "k": rec.k,
                    "rounds": rec.rounds,
                    "bound_R(n)": bounds.undispersed_rounds(n),
                    "max_moves": rec.max_moves,
                    "detected": rec.detected,
                }
            )
    return rows


@pytest.mark.benchmark(group="E1")
def test_e1_undispersed_gathering_shape(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E1 - Undispersed-Gathering (Theorem 8: O(n^3))", rows)

    for family in ("ring", "erdos_renyi", "random_tree", "complete"):
        fam_rows = [r for r in rows if r["family"] == family]
        ns = [r["n"] for r in fam_rows]
        rounds = [r["rounds"] for r in fam_rows]
        ok, slope = slope_within(ns, rounds, claimed=3.0)
        print(f"  {family}: rounds slope = {slope:.2f} (claimed <= 3)")
        assert ok, f"E1 shape violated for {family}: slope {slope:.2f} > 3.4"
        # schedule-exactness: rounds == R(n) + 1 every time
        for r in fam_rows:
            assert r["rounds"] == r["bound_R(n)"] + 1
        # real work is well below the schedule (the paper's slack)
        for r in fam_rows:
            assert r["max_moves"] <= r["bound_R(n)"]
