"""E13 (extension) — message-size audit.

The paper closes with: *"We do not restrict the size of messages exchanged
between robots at a node.  It would be interesting to consider the model
where the size of messages is restricted."*

This audit measures what the implemented algorithms actually *say*: the
largest card any robot ever publishes, per algorithm, as ``n`` grows.  The
finding: every protocol communicates only a constant number of fields whose
values are labels/groupids — ``O(log n)`` bits — even though finders hold
``O(m log n)``-bit maps privately.  The unrestricted-message assumption is
never exploited, i.e. the algorithms as implemented already live in a
logarithmic-message model (the interesting open question is whether the
*beeping* extreme survives, which is [21]'s territory).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import assign_labels, dispersed_random, undispersed_placement
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg
from repro.sim.robot import RobotSpec
from repro.sim.world import World

from conftest import print_experiment


def max_card_bits_for(algo_name, factory_fn, n):
    g = gg.ring(n)
    if algo_name == "undispersed":
        starts = undispersed_placement(g, 4, seed=n)
    else:
        starts = dispersed_random(g, 4, seed=n)
    labels = assign_labels(4, n, seed=n)
    factory = factory_fn()
    specs = [RobotSpec(l, s, factory) for l, s in zip(labels, starts)]
    res = World(g, specs).run()
    assert res.gathered and res.detected
    return res.metrics.max_card_bits


def run_sweep():
    rows = []
    for algo_name, factory_fn in (
        ("undispersed", undispersed_gathering_program),
        ("uxs", uxs_gathering_program),
        ("faster", faster_gathering_program),
    ):
        for n in (8, 16):
            bits = max_card_bits_for(algo_name, factory_fn, n)
            # the claim: a constant number of fields (<= 6), each a field
            # name (constant, the estimator counts ~64 bits) plus a value
            # of O(log n) bits (labels/groupids are < n^3)
            budget = 6 * (64 + 8 * math.ceil(3 * math.log2(n) / 8 + 1))
            rows.append(
                {
                    "algorithm": algo_name,
                    "n": n,
                    "max_card_bits": bits,
                    "log2(n)": round(math.log2(n), 1),
                    "budget_6_fields": budget,
                }
            )
    return rows


@pytest.mark.benchmark(group="E13")
def test_e13_message_size_audit(bench_once):
    rows = bench_once(run_sweep)
    print_experiment("E13 - extension: message-size audit (largest card published)", rows)
    for r in rows:
        # every algorithm's messages fit the constant-fields O(log n) budget
        assert r["max_card_bits"] <= r["budget_6_fields"], r
    # and growth from n=8 to n=16 is at most a few label-width bits
    by_algo = {}
    for r in rows:
        by_algo.setdefault(r["algorithm"], []).append(r["max_card_bits"])
    for algo, (b8, b16) in by_algo.items():
        assert b16 - b8 <= 64, (algo, b8, b16)
