"""E4 — Theorem 12: ``Faster-Gathering`` staged complexity by initial pair
distance.

For each controlled minimum pair distance ``i`` (0 = undispersed, 1..5 =
dispersed with a pair exactly ``i`` apart, plus a far-apart configuration)
the algorithm must finish by the step the theorem assigns:

* ``i ∈ {0, 1, 2}`` → within the ``O(n^3)`` boundary (steps 1-3);
* ``i ∈ {3, 4}``    → within the ``O(n^4 log n)`` boundary (steps 4-5);
* ``i = 5``         → within the step-6 boundary (`Õ(n^5)`-ish);
* beyond 5          → the UXS fallback (step 7) handles it.

Rows report the gathering step, round counts and the matching boundary.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    assign_labels,
    dispersed_with_pair_distance,
    run_gathering,
    undispersed_placement,
)
from repro.core import bounds
from repro.core.faster_gathering import faster_gathering_program
from repro.graphs import generators as gg

from conftest import print_experiment

N = 14
K = 3


def placement_for(i: int, g):
    if i == 0:
        return undispersed_placement(g, K, seed=7)
    return dispersed_with_pair_distance(g, min(K, 2 if i >= 3 else K), i, seed=3)


def run_sweep():
    g = gg.ring(N)
    boundaries = bounds.faster_gathering_boundaries(N)
    rows = []
    for i in range(0, 6):
        starts = placement_for(i, g)
        labels = assign_labels(len(starts), N, seed=i + 1)
        rec = run_gathering(
            "faster", g, starts, labels, lambda: faster_gathering_program()
        )
        assert rec.gathered and rec.detected, f"distance {i}"
        step = rec.extra.get("gathered_at_step")
        expected_step = i + 1
        rows.append(
            {
                "pair_dist": i,
                "k": rec.k,
                "gathered_at_step": step,
                "step_bound": expected_step,
                "rounds": rec.rounds,
                "boundary": boundaries[min(expected_step, 6) - 1],
                "detected": rec.detected,
            }
        )
    # far apart: two robots at antipodes of a path -> UXS fallback
    gp = gg.path(16)
    rec = run_gathering(
        "faster", gp, [0, 15], [5, 9], lambda: faster_gathering_program()
    )
    assert rec.gathered and rec.detected
    rows.append(
        {
            "pair_dist": 15,
            "k": 2,
            "gathered_at_step": rec.extra.get("gathered_at_step", 7),
            "step_bound": 7,
            "rounds": rec.rounds,
            "boundary": None,
            "detected": rec.detected,
        }
    )
    return rows


@pytest.mark.benchmark(group="E4")
def test_e4_staged_complexity(bench_once):
    rows = bench_once(run_sweep)
    print_experiment(
        "E4 - Faster-Gathering staged complexity (Theorem 12)", rows
    )
    for r in rows:
        assert r["detected"]
        if r["pair_dist"] <= 5:
            # gathered no later than the step the theorem assigns
            assert r["gathered_at_step"] <= r["step_bound"], r
            assert r["rounds"] <= r["boundary"] + 1, r
    # rounds must be monotone in the gathering step (later steps cost more)
    staged = [r for r in rows if r["pair_dist"] <= 5]
    staged.sort(key=lambda r: r["gathered_at_step"])
    for a, b in zip(staged, staged[1:]):
        if a["gathered_at_step"] < b["gathered_at_step"]:
            assert a["rounds"] < b["rounds"]
