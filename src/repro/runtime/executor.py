"""Executors: how a batch of :class:`RunSpec` turns into outcomes.

Two interchangeable strategies behind one tiny interface:

* :class:`SerialExecutor` — in-process, in-order.  The default everywhere,
  so results stay bit-identical to historical single-process runs.
* :class:`ParallelExecutor` — fans chunks of specs out over a
  ``concurrent.futures.ProcessPoolExecutor``.  Chunked dispatch amortizes
  pickling/IPC for the many-small-runs workloads sweeps produce; failures
  are isolated per run (see :func:`repro.runtime.spec.execute_spec`), and
  when a worker process dies outright (OOM-kill, segfault) the affected
  chunks are retried spec-by-spec in fresh pools, so only the spec that
  actually kills its worker is reported as failed.

Determinism: a simulation's result is a pure function of its spec, so the
two executors return *identical* outcome lists in submission order, for any
worker count.  Per-run seed streams are derived from a root seed with
:func:`derive_seed` (SHA-256 counter mode) — stable across platforms,
Python versions, and executor choice.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.runtime.spec import (
    BatchRunSpec,
    RunOutcome,
    RunSpec,
    execute_batch_spec,
    execute_spec,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProgressCallback",
    "derive_seed",
    "assign_seeds",
    "replicate_spec",
]

#: ``progress(outcome, done_so_far, total)`` — called as outcomes land (in
#: completion order for parallel executors, submission order for serial).
ProgressCallback = Callable[[RunOutcome, int, int], None]


def derive_seed(root_seed: int, index: int, salt: str = "") -> int:
    """Deterministic per-run seed ``index`` of the stream rooted at
    ``root_seed`` — a SHA-256 counter, so streams with different roots (or
    salts) are statistically independent and platform-stable."""
    digest = hashlib.sha256(f"{root_seed}:{index}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def assign_seeds(specs: Sequence[RunSpec], root_seed: int) -> List[RunSpec]:
    """Fill every unset ``spec.seed`` from the root seed's stream.

    Specs that pin their own seed are left untouched; assignment is by
    position, so the same batch + root always yields the same seeds no
    matter which executor later runs it.
    """
    return [
        replace(s, seed=derive_seed(root_seed, i)) if s.seed is None else s
        for i, s in enumerate(specs)
    ]


def replicate_spec(
    spec: RunSpec, replicas: int, root_seed: int = 0, salt: str = "replica"
) -> List[RunSpec]:
    """``spec`` plus ``replicas - 1`` seed-varied siblings.

    Replica 0 is the spec itself, untouched — its cache key, pinned
    per-scheme seeds, everything.  Replicas 1.. carry a derived spec-level
    seed and drop any pinned ``"seed"`` in ``placement_args`` /
    ``labels_args`` / ``algorithm_args`` so the spec-level seed governs all
    randomness — making the siblings genuine re-rolls of the same
    experiment *and* a batchable differ-only-by-seed group (see
    :func:`repro.runtime.spec.group_into_batches`).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    out = [spec]
    for r in range(1, replicas):
        out.append(
            replace(
                spec,
                seed=derive_seed(root_seed, r, salt=salt),
                placement_args={k: v for k, v in spec.placement_args.items() if k != "seed"},
                labels_args={k: v for k, v in spec.labels_args.items() if k != "seed"},
                algorithm_args={k: v for k, v in spec.algorithm_args.items() if k != "seed"},
            )
        )
    return out


class Executor(ABC):
    """Strategy interface: run specs, return outcomes in submission order.

    ``engine`` names a scalar simulation backend (see
    :func:`repro.sim.engines.list_engines`); executors pass it through to
    :func:`repro.runtime.spec.execute_spec` unchanged — backend choice is
    orthogonal to execution strategy, and ``None`` keeps the default.
    """

    @abstractmethod
    def run(
        self,
        specs: Iterable[RunSpec],
        progress: Optional[ProgressCallback] = None,
        engine: Optional[str] = None,
    ) -> List[RunOutcome]:
        raise NotImplementedError

    def iter_run(
        self,
        specs: Iterable[RunSpec],
        engine: Optional[str] = None,
    ) -> Iterator[RunOutcome]:
        """Pull-based execution: consume specs lazily, yield outcomes.

        The executor pulls the next spec only after the previous outcome is
        yielded, so a generator feeding this loop can defer side effects —
        the campaign worker claims a cell's lease *inside* its generator,
        which means leases are acquired just-in-time, one at a time, and a
        killed worker holds at most one (see :mod:`repro.campaigns.worker`).
        Default implementation executes in-process; subclasses may overlap
        execution but must preserve yield order.
        """
        for spec in specs:
            yield execute_spec(spec, engine=engine)

    def run_batches(
        self,
        batches: Sequence[BatchRunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[List[RunOutcome]]:
        """Run replica batches; one outcome list per batch, in order.

        Default implementation is serial and in-process; parallel executors
        override it to dispatch whole batches to workers (a batch is
        already a coarse unit — replicas inside it run in lockstep and
        cannot be split).  ``progress`` fires per replica outcome with
        ``total`` = all replicas across ``batches``.
        """
        total = sum(len(b.seeds) for b in batches)
        done = 0
        results: List[List[RunOutcome]] = []
        for batch in batches:
            outcomes = execute_batch_spec(batch)
            results.append(outcomes)
            if progress is not None:
                for outcome in outcomes:
                    done += 1
                    progress(outcome, done, total)
            else:
                done += len(outcomes)
        return results


class SerialExecutor(Executor):
    """In-process execution, one spec at a time, in order.

    ``run`` is a thin eager shell over the base pull loop
    (:meth:`Executor.iter_run`): it materializes the spec list (so
    ``total`` is known for progress callbacks) and drains the iterator.
    """

    def run(
        self,
        specs: Iterable[RunSpec],
        progress: Optional[ProgressCallback] = None,
        engine: Optional[str] = None,
    ) -> List[RunOutcome]:
        specs = list(specs)
        outcomes: List[RunOutcome] = []
        for outcome in self.iter_run(specs, engine=engine):
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome, len(outcomes), len(specs))
        return outcomes


def _execute_chunk(specs: List[RunSpec], engine: Optional[str] = None) -> List[RunOutcome]:
    """Worker-side entry point: run one chunk, never raise."""
    return [execute_spec(s, engine=engine) for s in specs]


class ParallelExecutor(Executor):
    """Process-pool execution with chunked dispatch.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Specs per task.  Defaults to ``ceil(len(specs) / (4 * workers))``
        — about four waves per worker, balancing IPC overhead against
        load-balancing for uneven run times.
    mp_context:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``, …);
        ``None`` uses the platform default.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        mp_context: Optional[str] = None,
    ):
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.chunksize = chunksize
        self.mp_context = mp_context

    def run(
        self,
        specs: Iterable[RunSpec],
        progress: Optional[ProgressCallback] = None,
        engine: Optional[str] = None,
    ) -> List[RunOutcome]:
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or len(specs) == 1:
            return SerialExecutor().run(specs, progress=progress, engine=engine)

        chunksize = self.chunksize or max(1, math.ceil(len(specs) / (4 * self.workers)))
        chunks = [specs[i : i + chunksize] for i in range(0, len(specs), chunksize)]
        ctx = multiprocessing.get_context(self.mp_context) if self.mp_context else None

        results: List[Optional[RunOutcome]] = [None] * len(specs)
        done = 0

        def land(start: int, outcomes: List[RunOutcome]) -> None:
            nonlocal done
            for offset, outcome in enumerate(outcomes):
                results[start + offset] = outcome
                done += 1
                if progress is not None:
                    progress(outcome, done, len(specs))

        # A worker that dies mid-task (OOM-kill, segfault, os._exit) breaks
        # the whole ProcessPoolExecutor: every unfinished future raises
        # BrokenProcessPool, including chunks that never ran.  Those chunks
        # are collected here and retried one spec at a time in fresh
        # single-use pools, so only the spec that actually kills its worker
        # is reported as failed.
        retry: List[int] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)), mp_context=ctx
        ) as pool:
            futures = {
                pool.submit(_execute_chunk, chunk, engine): start
                for chunk, start in zip(chunks, range(0, len(specs), chunksize))
            }
            for future in as_completed(futures):
                start = futures[future]
                try:
                    outcomes = future.result()
                except Exception:
                    retry.append(start)
                    continue
                # outside the try: a raising progress/cache callback must
                # propagate, not masquerade as a dead worker
                land(start, outcomes)

        for start in sorted(retry):
            for i, spec in enumerate(specs[start : start + chunksize]):
                land(start + i, [self._run_isolated(spec, ctx, engine=engine)])

        if any(r is None for r in results):  # lost future / short chunk: a bug
            raise RuntimeError(
                "ParallelExecutor dropped outcomes for "
                f"{sum(r is None for r in results)} of {len(specs)} specs"
            )
        return [r for r in results if r is not None]

    def run_batches(
        self,
        batches: Sequence[BatchRunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[List[RunOutcome]]:
        """Fan whole batches out over worker processes, one per task.

        No chunking: a batch is already coarse (R lockstep replicas).  A
        worker that dies mid-batch poisons only its own batch, which is
        retried replica-by-replica through the scalar isolation path —
        records are identical either way, just slower.
        """
        batches = list(batches)
        if not batches:
            return []
        if self.workers == 1 or len(batches) == 1:
            return super().run_batches(batches, progress=progress)
        total = sum(len(b.seeds) for b in batches)
        done = 0
        results: List[Optional[List[RunOutcome]]] = [None] * len(batches)
        ctx = multiprocessing.get_context(self.mp_context) if self.mp_context else None
        retry: List[int] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(batches)), mp_context=ctx
        ) as pool:
            futures = {
                pool.submit(execute_batch_spec, batch): i
                for i, batch in enumerate(batches)
            }
            for future in as_completed(futures):
                i = futures[future]
                try:
                    outcomes = future.result()
                except Exception:
                    retry.append(i)
                    continue
                results[i] = outcomes
                if progress is not None:
                    for outcome in outcomes:
                        done += 1
                        progress(outcome, done, total)
                else:
                    done += len(outcomes)
        for i in sorted(retry):
            outcomes = [
                self._run_isolated(spec, ctx) for spec in batches[i].specs()
            ]
            results[i] = outcomes
            if progress is not None:
                for outcome in outcomes:
                    done += 1
                    progress(outcome, done, total)
        return [r for r in results if r is not None]

    @staticmethod
    def _run_isolated(spec: RunSpec, ctx, engine: Optional[str] = None) -> RunOutcome:
        """Run one spec in a throwaway single-worker pool, so a spec that
        crashes its worker yields an errored outcome for itself only."""
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            try:
                return pool.submit(execute_spec, spec, engine).result()
            except Exception as exc:
                return RunOutcome(
                    spec=spec, error=str(exc) or repr(exc), error_type=type(exc).__name__
                )
