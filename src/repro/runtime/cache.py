"""Content-addressed on-disk result cache.

A completed run is stored under ``sha256(spec.canonical_json())`` — the
spec *is* the cache key, so any change to the graph, placement, labels,
algorithm options, seed, limits, or the spec schema version yields a new
key and a miss.  Values are single JSON files (two-level fan-out directory
layout, atomic ``os.replace`` writes), so a cache directory is safe to
share between concurrent processes, rsync around, or inspect by hand.

Repeated sweeps and report regenerations hit the cache and skip the
simulation entirely; :class:`ResultCache` counts hits/misses so callers
can report "0 simulations executed" honestly.

**Chunked aggregation** (:meth:`put_batch`): large sweeps produce hundreds
of small records, and one file + one atomic rename per record dominates
cache I/O.  ``put_batch`` packs many records into a single chunk file
under ``chunks/`` (same atomic-write discipline); lookups consult the
per-key files first and an in-memory index of all chunk files second, so
the two layouts interoperate in one directory.  The chunk index is a
per-handle snapshot, loaded lazily and kept current for this handle's own
``put_batch`` calls; a chunk-miss additionally performs a one-``stat``
staleness check on the ``chunks/`` directory, so a record chunk-written by
a *different* handle (another campaign worker, another host sharing the
directory) becomes visible the next time it is asked for.  ``refresh()``
drops the snapshot outright — campaign resume calls it before deriving
completion.  ``execute(..., cache_chunk=N)`` opts a batch into chunked
write-behind — see :mod:`repro.runtime.api` for the
interruption-guarantee trade-off.

**Crash hygiene.**  Writers that die between ``tmp.write_text`` and
``os.replace`` (SIGKILL, OOM) leave ``*.tmp.<pid>`` droppings next to the
entries.  They are invisible to lookups, ``__len__``, and ``clear()``
counting, and :meth:`sweep_stale_tmp` unlinks any whose owning pid is gone
(or whose mtime is older than a grace period) — campaign workers run the
sweep on startup and resume.
"""

from __future__ import annotations

import json
import os
import time
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.analysis.experiments import GatheringRun
from repro.runtime.spec import RunSpec

__all__ = ["ResultCache"]


class ResultCache:
    """Directory-backed map ``RunSpec -> GatheringRun``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Entries that existed on disk but failed to parse (killed writer,
        #: disk trouble) — each one re-executes, and campaign stats surface
        #: the count so chaos runs are observable.
        self.corrupt = 0
        # key -> record payload from chunk files; loaded lazily, then kept
        # current by put_batch and the staleness check (_chunks_sig)
        self._chunk_index: Optional[Dict[str, dict]] = None
        self._chunk_sig: Optional[int] = None

    @staticmethod
    def key_for(spec: RunSpec) -> str:
        return sha256(spec.canonical_json().encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[GatheringRun]:
        """The cached record for ``spec``, or ``None`` (counted as a miss).

        A corrupt or truncated entry (killed writer, disk trouble) is
        treated as a miss rather than an error — the run simply re-executes
        and overwrites it.  Per-key files win over chunk entries (a
        re-executed run's write-through is newer than any chunk).
        """
        key = self.key_for(spec)
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            run = GatheringRun.from_dict(payload["record"])
        except FileNotFoundError:
            run = self._chunk_get(key)
            if run is None:
                self.misses += 1
                return None
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, OSError):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return run

    def put(self, spec: RunSpec, run: GatheringRun) -> None:
        key = self.key_for(spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "spec": json.loads(spec.canonical_json()),
            "record": run.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)  # atomic on POSIX: readers never see a torn file

    # ------------------------------------------------------------------
    # Chunked aggregation
    # ------------------------------------------------------------------
    def _chunks_dir(self) -> Path:
        return self.root / "chunks"

    def _chunks_mtime(self) -> Optional[int]:
        """The ``chunks/`` directory's mtime in ns, or ``None`` when absent.
        A chunk file landing or vanishing bumps the directory mtime on
        POSIX, so one ``stat`` detects another writer's ``put_batch``."""
        try:
            return os.stat(self._chunks_dir()).st_mtime_ns
        except OSError:
            return None

    def _load_chunks(self) -> Dict[str, dict]:
        """The in-memory key -> record index over every chunk file.

        Built on first use by reading each chunk file once — for a
        fully-chunked cache of N records in C chunks that is C file opens
        instead of N, which is the read-side half of the I/O saving.
        Corrupt chunk files are counted and skipped (their records simply
        re-execute).
        """
        if self._chunk_index is None:
            self._chunk_sig = self._chunks_mtime()
            index: Dict[str, dict] = {}
            for path in sorted(self._chunks_dir().glob("*.json")):
                try:
                    payload = json.loads(path.read_text())
                    entries = payload["records"]
                except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, OSError):
                    self.corrupt += 1
                    continue
                if isinstance(entries, dict):
                    index.update(entries)
            self._chunk_index = index
        return self._chunk_index

    def refresh(self) -> None:
        """Drop the chunk-index snapshot so the next lookup re-reads disk.

        Cheap insurance for long-lived handles sharing a directory with
        other writers: campaign resume calls it before deriving which cells
        are complete.  (Ordinary chunk-misses already self-heal through the
        mtime staleness check; ``refresh`` is the explicit, unconditional
        form.)
        """
        self._chunk_index = None
        self._chunk_sig = None

    def _chunk_get(self, key: str) -> Optional[GatheringRun]:
        entry = self._load_chunks().get(key)
        if entry is None:
            # Staleness check: another handle's put_batch since our
            # snapshot?  One stat per miss; reload and retry only when the
            # directory actually changed.
            if self._chunks_mtime() != self._chunk_sig:
                self.refresh()
                entry = self._load_chunks().get(key)
            if entry is None:
                return None
        try:
            return GatheringRun.from_dict(entry["record"])
        except (KeyError, TypeError):
            self.corrupt += 1
            return None

    def put_batch(self, pairs: Iterable[Tuple[RunSpec, GatheringRun]]) -> int:
        """Persist many records as one chunk file; returns how many.

        The chunk is named by the hash of its sorted keys, written with the
        same atomic-replace discipline as per-key files, and folded into
        the in-memory index so subsequent ``get`` calls hit without
        touching disk.
        """
        records = {
            self.key_for(spec): {
                "spec": json.loads(spec.canonical_json()),
                "record": run.to_dict(),
            }
            for spec, run in pairs
        }
        if not records:
            return 0
        chunk_key = sha256("".join(sorted(records)).encode()).hexdigest()
        chunks = self._chunks_dir()
        chunks.mkdir(parents=True, exist_ok=True)
        path = chunks / f"{chunk_key}.json"
        payload = {"chunk": chunk_key, "records": records}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
        self._load_chunks().update(records)
        return len(records)

    # ------------------------------------------------------------------
    # Crash hygiene
    # ------------------------------------------------------------------
    def _tmp_files(self) -> Iterable[Path]:
        yield from self.root.glob("[0-9a-f][0-9a-f]/*.tmp.*")
        yield from self._chunks_dir().glob("*.tmp.*")

    def sweep_stale_tmp(self, max_age: float = 3600.0) -> int:
        """Unlink ``*.tmp.<pid>`` droppings from killed writers; returns
        how many were removed.

        A tmp file is stale when its writing pid is no longer alive, or —
        the cross-host case, where pids mean nothing — when its mtime is
        older than ``max_age`` seconds.  Live writers' in-flight tmp files
        (alive pid, recent mtime) are left alone, so the sweep is safe to
        run concurrently with other workers.  ``max_age=0`` forces removal
        regardless of pid (only safe when no writer can be mid-``put``).
        """
        removed = 0
        now = time.time()
        for path in list(self._tmp_files()):
            try:
                pid = int(path.name.rsplit(".", 1)[-1])
            except ValueError:
                pid = None
            alive = False
            if pid is not None and max_age > 0:
                try:
                    os.kill(pid, 0)
                    alive = True
                except PermissionError:  # exists, owned by someone else
                    alive = True
                except OSError:
                    alive = False
            try:
                if alive and now - path.stat().st_mtime <= max_age:
                    continue
                path.unlink()
                removed += 1
            except OSError:  # vanished under us: another sweeper won
                continue
        return removed

    # ------------------------------------------------------------------
    def contains_key(self, key: str) -> bool:
        """Whether ``key`` resolves, without parsing the record.

        The campaign layer's completion test: a cell is done iff its key
        resolves here (existence, not a recorded bitmap, so interrupt and
        resume cost nothing).  A present-but-corrupt entry still "contains"
        — workers re-check with :meth:`get` before trusting it.
        """
        return self._path(key).exists() or key in self._load_chunks()

    def __len__(self) -> int:
        per_key = sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))
        chunked = self._load_chunks()
        # count chunk records not shadowed by a per-key file
        extra = sum(1 for key in chunked if not self._path(key).exists())
        return per_key + extra

    def __contains__(self, spec: RunSpec) -> bool:
        return self.contains_key(self.key_for(spec))

    def clear(self) -> int:
        """Delete every entry (and any tmp droppings); returns how many
        records were removed (tmp files are hygiene, not records — they
        are unlinked but never counted)."""
        removed = len(self)
        for entry in self.root.glob("[0-9a-f][0-9a-f]/*.json"):
            entry.unlink(missing_ok=True)
        for entry in self._chunks_dir().glob("*.json"):
            entry.unlink(missing_ok=True)
        for entry in list(self._tmp_files()):
            entry.unlink(missing_ok=True)
        self._chunk_index = {}
        self._chunk_sig = self._chunks_mtime()
        return removed
