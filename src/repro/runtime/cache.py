"""Content-addressed on-disk result cache.

A completed run is stored under ``sha256(spec.canonical_json())`` — the
spec *is* the cache key, so any change to the graph, placement, labels,
algorithm options, seed, limits, or the spec schema version yields a new
key and a miss.  Values are single JSON files (two-level fan-out directory
layout, atomic ``os.replace`` writes), so a cache directory is safe to
share between concurrent processes, rsync around, or inspect by hand.

Repeated sweeps and report regenerations hit the cache and skip the
simulation entirely; :class:`ResultCache` counts hits/misses so callers
can report "0 simulations executed" honestly.

**Chunked aggregation** (:meth:`put_batch`): large sweeps produce hundreds
of small records, and one file + one atomic rename per record dominates
cache I/O.  ``put_batch`` packs many records into a single chunk file
under ``chunks/`` (same atomic-write discipline); lookups consult the
per-key files first and an in-memory index of all chunk files second, so
the two layouts interoperate in one directory.  The chunk index is a
per-handle snapshot, loaded lazily and kept current only for this
handle's own ``put_batch`` calls: a record chunk-written by a *different*
handle after the snapshot loaded reads as a clean miss (the run simply
re-executes), never as corruption — and a fresh handle sees the union of
everything on disk.  ``execute(...,
cache_chunk=N)`` opts a batch into chunked write-behind — see
:mod:`repro.runtime.api` for the interruption-guarantee trade-off.
"""

from __future__ import annotations

import json
import os
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.analysis.experiments import GatheringRun
from repro.runtime.spec import RunSpec

__all__ = ["ResultCache"]


class ResultCache:
    """Directory-backed map ``RunSpec -> GatheringRun``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        # key -> record payload from chunk files; loaded lazily, once, then
        # kept current by put_batch
        self._chunk_index: Optional[Dict[str, dict]] = None

    @staticmethod
    def key_for(spec: RunSpec) -> str:
        return sha256(spec.canonical_json().encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[GatheringRun]:
        """The cached record for ``spec``, or ``None`` (counted as a miss).

        A corrupt or truncated entry (killed writer, disk trouble) is
        treated as a miss rather than an error — the run simply re-executes
        and overwrites it.  Per-key files win over chunk entries (a
        re-executed run's write-through is newer than any chunk).
        """
        key = self.key_for(spec)
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            run = GatheringRun.from_dict(payload["record"])
        except FileNotFoundError:
            run = self._chunk_get(key)
            if run is None:
                self.misses += 1
                return None
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            self.misses += 1
            return None
        self.hits += 1
        return run

    def put(self, spec: RunSpec, run: GatheringRun) -> None:
        key = self.key_for(spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "spec": json.loads(spec.canonical_json()),
            "record": run.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)  # atomic on POSIX: readers never see a torn file

    # ------------------------------------------------------------------
    # Chunked aggregation
    # ------------------------------------------------------------------
    def _chunks_dir(self) -> Path:
        return self.root / "chunks"

    def _load_chunks(self) -> Dict[str, dict]:
        """The in-memory key -> record index over every chunk file.

        Built on first use by reading each chunk file once — for a
        fully-chunked cache of N records in C chunks that is C file opens
        instead of N, which is the read-side half of the I/O saving.
        Corrupt chunk files are skipped (their records simply re-execute).
        """
        if self._chunk_index is None:
            index: Dict[str, dict] = {}
            for path in sorted(self._chunks_dir().glob("*.json")):
                try:
                    payload = json.loads(path.read_text())
                    entries = payload["records"]
                except (json.JSONDecodeError, KeyError, TypeError, OSError):
                    continue
                if isinstance(entries, dict):
                    index.update(entries)
            self._chunk_index = index
        return self._chunk_index

    def _chunk_get(self, key: str) -> Optional[GatheringRun]:
        entry = self._load_chunks().get(key)
        if entry is None:
            return None
        try:
            return GatheringRun.from_dict(entry["record"])
        except (KeyError, TypeError):
            return None

    def put_batch(self, pairs: Iterable[Tuple[RunSpec, GatheringRun]]) -> int:
        """Persist many records as one chunk file; returns how many.

        The chunk is named by the hash of its sorted keys, written with the
        same atomic-replace discipline as per-key files, and folded into
        the in-memory index so subsequent ``get`` calls hit without
        touching disk.
        """
        records = {
            self.key_for(spec): {
                "spec": json.loads(spec.canonical_json()),
                "record": run.to_dict(),
            }
            for spec, run in pairs
        }
        if not records:
            return 0
        chunk_key = sha256("".join(sorted(records)).encode()).hexdigest()
        chunks = self._chunks_dir()
        chunks.mkdir(parents=True, exist_ok=True)
        path = chunks / f"{chunk_key}.json"
        payload = {"chunk": chunk_key, "records": records}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
        self._load_chunks().update(records)
        return len(records)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        per_key = sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))
        chunked = self._load_chunks()
        # count chunk records not shadowed by a per-key file
        extra = sum(1 for key in chunked if not self._path(key).exists())
        return per_key + extra

    def __contains__(self, spec: RunSpec) -> bool:
        key = self.key_for(spec)
        return self._path(key).exists() or key in self._load_chunks()

    def clear(self) -> int:
        """Delete every entry; returns how many records were removed."""
        removed = len(self)
        for entry in self.root.glob("[0-9a-f][0-9a-f]/*.json"):
            entry.unlink(missing_ok=True)
        for entry in self._chunks_dir().glob("*.json"):
            entry.unlink(missing_ok=True)
        self._chunk_index = {}
        return removed
