"""Content-addressed on-disk result cache.

A completed run is stored under ``sha256(spec.canonical_json())`` — the
spec *is* the cache key, so any change to the graph, placement, labels,
algorithm options, seed, limits, or the spec schema version yields a new
key and a miss.  Values are single JSON files (two-level fan-out directory
layout, atomic ``os.replace`` writes), so a cache directory is safe to
share between concurrent processes, rsync around, or inspect by hand.

Repeated sweeps and report regenerations hit the cache and skip the
simulation entirely; :class:`ResultCache` counts hits/misses so callers
can report "0 simulations executed" honestly.
"""

from __future__ import annotations

import json
import os
from hashlib import sha256
from pathlib import Path
from typing import Optional, Union

from repro.analysis.experiments import GatheringRun
from repro.runtime.spec import RunSpec

__all__ = ["ResultCache"]


class ResultCache:
    """Directory-backed map ``RunSpec -> GatheringRun``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(spec: RunSpec) -> str:
        return sha256(spec.canonical_json().encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[GatheringRun]:
        """The cached record for ``spec``, or ``None`` (counted as a miss).

        A corrupt or truncated entry (killed writer, disk trouble) is
        treated as a miss rather than an error — the run simply re-executes
        and overwrites it.
        """
        path = self._path(self.key_for(spec))
        try:
            payload = json.loads(path.read_text())
            run = GatheringRun.from_dict(payload["record"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            self.misses += 1
            return None
        self.hits += 1
        return run

    def put(self, spec: RunSpec, run: GatheringRun) -> None:
        key = self.key_for(spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "spec": json.loads(spec.canonical_json()),
            "record": run.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)  # atomic on POSIX: readers never see a torn file

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __contains__(self, spec: RunSpec) -> bool:
        return self._path(self.key_for(spec)).exists()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed
