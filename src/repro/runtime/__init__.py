"""repro.runtime — parallel sweep execution engine.

The layer between "one simulation" (:func:`repro.analysis.experiments.
run_gathering`) and "the paper's experiment suite" (sweeps, benchmarks,
reports):

* :class:`RunSpec` — picklable, declarative description of one run;
* :class:`SerialExecutor` / :class:`ParallelExecutor` — interchangeable
  execution strategies (in-process vs. chunked process-pool fan-out) with
  per-run failure isolation and deterministic seed streams;
* :class:`ResultCache` — content-addressed on-disk cache keyed by the
  spec's canonical hash, so repeated sweeps skip completed work (with
  optional chunked multi-record files for large batches);
* :mod:`~repro.runtime.graph_cache` — per-worker graph/CSR memoization, so
  a batch builds each topology once instead of once per spec;
* :class:`BatchRunSpec` / ``execute(engine="batch-numpy")`` — lockstep
  replica batching: specs that differ only by seed run as one fleet through
  :class:`repro.sim.ReplicaBatch`, amortizing graph checks and per-round
  overhead while keeping records and cache keys bit-identical;
* ``execute(engine=...)`` — single-flag simulation-backend dispatch: every
  registered engine (:func:`repro.sim.engines.list_engines`) is selectable
  by name, with bit-identical records across conforming backends (see
  docs/ENGINES.md);
* :func:`execute` / :func:`run_specs` — the batch API gluing it together.

The crash-safe campaign layer (:mod:`repro.campaigns` — durable
manifests, filesystem-lease work-stealing, resume-from-anywhere; see
docs/CAMPAIGNS.md) builds on this module's cache and executors.

Serial execution is the default everywhere, keeping results bit-identical
to single-process runs; parallel execution returns the exact same outcome
list, just faster.  See docs/RUNTIME.md for the full tour.
"""

from repro.runtime import graph_cache
from repro.runtime.api import ExecutionResult, ExecutionStats, execute, run_specs
from repro.runtime.cache import ResultCache
from repro.sim.engine import Engine, EngineCapabilities, UnsupportedFeature
from repro.sim.engines import DEFAULT_ENGINE, get_engine, list_engines
from repro.runtime.executor import (
    Executor,
    ParallelExecutor,
    ProgressCallback,
    SerialExecutor,
    assign_seeds,
    derive_seed,
    replicate_spec,
)
from repro.runtime.spec import (
    ALGORITHM_BUILDERS,
    NO_DETECTION,
    NO_UXS,
    PLACEMENT_BUILDERS,
    BatchRunSpec,
    RunFailure,
    RunOutcome,
    RunSpec,
    batch_key,
    execute_batch_spec,
    execute_spec,
    group_into_batches,
    materialize,
    register_algorithm,
    unregister_algorithm,
)

__all__ = [
    "graph_cache",
    "RunSpec",
    "BatchRunSpec",
    "RunOutcome",
    "RunFailure",
    "execute_spec",
    "execute_batch_spec",
    "batch_key",
    "group_into_batches",
    "materialize",
    "register_algorithm",
    "unregister_algorithm",
    "ALGORITHM_BUILDERS",
    "PLACEMENT_BUILDERS",
    "NO_UXS",
    "NO_DETECTION",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProgressCallback",
    "derive_seed",
    "assign_seeds",
    "replicate_spec",
    "ResultCache",
    "ExecutionStats",
    "ExecutionResult",
    "execute",
    "run_specs",
    "Engine",
    "EngineCapabilities",
    "UnsupportedFeature",
    "DEFAULT_ENGINE",
    "get_engine",
    "list_engines",
]
