"""High-level entry points tying specs, executors, and the cache together.

:func:`execute` is the one call sites use::

    from repro.runtime import RunSpec, ParallelExecutor, ResultCache, execute

    specs = [RunSpec("faster", "ring", {"n": n}, placement="scatter", k=4)
             for n in (8, 12, 16)]
    result = execute(specs, executor=ParallelExecutor(workers=4),
                     cache=ResultCache(".repro-cache"), root_seed=0)
    for rec in result.records():
        print(rec.n, rec.rounds)

Cache hits short-circuit before dispatch, so a fully cached batch executes
zero simulations; the returned :class:`ExecutionStats` says exactly how
many ran, hit, and failed.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from repro.analysis.experiments import GatheringRun
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    Executor,
    ProgressCallback,
    SerialExecutor,
    assign_seeds,
)
from repro.runtime.spec import RunOutcome, RunSpec, group_into_batches
from repro.sim.batch import HAVE_NUMPY
from repro.sim.engines import get_engine

__all__ = ["ExecutionStats", "ExecutionResult", "execute", "run_specs"]


def _engine_for_legacy_batch(batch: Union[bool, str]) -> str:
    """Map the deprecated ``batch=`` values onto engine names.

    ``True``/``"auto"`` resolve exactly as the replica engine's ``auto``
    backend did: numpy bookkeeping when importable, list otherwise.
    """
    if batch is True or batch == "auto":
        return "batch-numpy" if HAVE_NUMPY else "batch-list"
    if batch in ("numpy", "list", "numpy2d"):
        return f"batch-{batch}"
    raise ValueError(
        f"unknown batch backend {batch!r}; known: ['auto', 'list', 'numpy', 'numpy2d']"
    )


@dataclass
class ExecutionStats:
    """Accounting for one :func:`execute` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0
    #: Runs that executed through the lockstep replica engine (a subset of
    #: ``executed``; results are bit-identical to scalar execution).
    batched: int = 0
    elapsed: float = 0.0
    # -- robustness counters (campaign / chaos observability; all zero on
    #    clean single-process runs, so historical summaries are unchanged)
    #: Lease claims lost to another worker (the cell was taken first).
    contended: int = 0
    #: Stale leases taken over from dead or wedged workers.
    reclaimed: int = 0
    #: Corrupt cache entries detected (torn/garbled files) — each one
    #: reads as a miss and re-executes.
    corrupt: int = 0
    #: Idle backoff passes spent waiting on cells leased to other workers.
    retries: int = 0
    #: Stale ``*.tmp.*`` droppings unlinked by crash-hygiene sweeps.
    tmp_swept: int = 0

    def summary(self) -> str:
        """One stable line for CLI output (deliberately no timing, so runs
        with different worker counts print byte-identical summaries).  The
        batched count appears only when replica batching actually ran, and
        the robustness segment only when something contended, reclaimed,
        healed, or retried — so historical output stays byte-stable."""
        line = (
            f"runtime: {self.total} runs — {self.executed} executed, "
            f"{self.cache_hits} cached, {self.failures} failed"
        )
        if self.batched:
            line += f" ({self.batched} batched)"
        robust = [
            f"{value} {label}"
            for label, value in (
                ("contended", self.contended),
                ("reclaimed", self.reclaimed),
                ("corrupt", self.corrupt),
                ("retries", self.retries),
                ("tmp swept", self.tmp_swept),
            )
            if value
        ]
        if robust:
            line += f" [robustness: {', '.join(robust)}]"
        return line

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another batch's accounting into this one (used by
        multi-sweep call sites like the report to print one total line)."""
        self.total += other.total
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.failures += other.failures
        self.batched += other.batched
        self.elapsed += other.elapsed
        self.contended += other.contended
        self.reclaimed += other.reclaimed
        self.corrupt += other.corrupt
        self.retries += other.retries
        self.tmp_swept += other.tmp_swept


@dataclass
class ExecutionResult:
    """Outcomes in submission order, plus the batch accounting."""

    outcomes: List[RunOutcome] = field(default_factory=list)
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    def records(self) -> List[GatheringRun]:
        """All runs, raising :class:`repro.runtime.RunFailure` on the first
        errored outcome (the historical behavior of serial call sites)."""
        return [o.run_or_raise() for o in self.outcomes]


def execute(
    specs: Iterable[RunSpec],
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[ExecutionStats] = None,
    cache_chunk: Optional[int] = None,
    batch: Union[bool, str] = False,
    engine: Optional[str] = None,
) -> ExecutionResult:
    """Run a batch of specs through an executor, consulting the cache.

    ``root_seed`` fills unset spec seeds deterministically *before* cache
    lookup and dispatch, so seed assignment is independent of executor
    choice and cache state.  ``progress`` fires only for runs that actually
    execute (cache hits are instantaneous).  ``stats``, when given, has this
    batch's accounting merged into it — the hook multi-sweep call sites use
    to report one grand total.

    ``cache_chunk=N`` switches cache persistence from one-file-per-run
    write-through to chunked write-behind: successful runs are buffered and
    flushed as a single multi-record chunk file every N landings (and at
    batch end), cutting cache-file I/O by ~N×.  The trade-off is the
    interruption guarantee — a killed batch loses at most the last
    unflushed N-1 records instead of none.  ``None`` keeps the historical
    per-run write-through.

    ``engine`` selects the simulation backend by name — the single
    dispatch knob (see :func:`repro.sim.engines.list_engines` and
    ``docs/ENGINES.md``).  It is an execution parameter like ``executor``:
    it never enters a spec or its cache key, and conforming backends
    produce bit-identical records, failures, and cache entries.

    * scalar backends (``"reference"``, ``"incremental"``, ``"soa"``, or
      ``None`` for the default) run every pending spec through
      :func:`repro.runtime.spec.execute_spec` under that backend;
    * replica backends (``"batch-list"``, ``"batch-numpy"``) group pending
      specs that differ only by seed into lockstep replica batches
      (:func:`repro.runtime.spec.execute_batch_spec`) — the multi-seed
      campaign fast path.  Ungroupable specs (non-clean, or groups of one)
      fall back to the default scalar path, exactly as replica batching
      always has.  Cache hits short-circuit before grouping, so a
      partially cached campaign batches only what actually runs.

    ``batch=...`` is the deprecated spelling of the replica backends
    (``True``/``"auto"`` → the best available, ``"numpy"``/``"list"`` →
    pinned); it maps onto ``engine`` and warns.
    """
    t0 = time.perf_counter()
    if cache_chunk is not None and cache_chunk < 1:
        raise ValueError("cache_chunk must be >= 1")
    if batch:
        warnings.warn(
            "execute(batch=...) is deprecated; use engine='batch-numpy' or "
            "engine='batch-list' (see docs/ENGINES.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        if engine is None:
            engine = _engine_for_legacy_batch(batch)
    scalar_engine: Optional[str] = None
    batch_backend: Optional[str] = None
    if engine is not None:
        engine_cls = get_engine(engine)  # raises ValueError listing names
        if engine_cls.capabilities.supports_batch:
            batch_backend = engine_cls.batch_backend
        else:
            scalar_engine = engine
    specs = list(specs)
    if root_seed is not None:
        specs = assign_seeds(specs, root_seed)
    executor = executor if executor is not None else SerialExecutor()

    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    pending: List[RunSpec] = []
    pending_idx: List[int] = []
    hits = 0
    corrupt_before = cache.corrupt if cache is not None else 0
    if cache is not None:
        for i, spec in enumerate(specs):
            run = cache.get(spec)
            if run is not None:
                outcomes[i] = RunOutcome(spec=spec, run=run, cached=True)
                hits += 1
            else:
                pending.append(spec)
                pending_idx.append(i)
    else:
        pending = specs
        pending_idx = list(range(len(specs)))

    # Write-through: persist each successful run the moment it lands, so an
    # interrupted batch (Ctrl-C, CI timeout) keeps everything it completed.
    # With cache_chunk, landings buffer instead and flush as chunk files.
    chunk_buffer: List = []
    total_pending = len(pending)
    landed = 0

    def land(outcome: RunOutcome, done: int, total: int) -> None:
        # done/total are recomputed here: with batching the executor may be
        # invoked twice (batches, then singles) and its per-call counters
        # would restart; ``landed``/``total_pending`` span the whole call.
        nonlocal landed
        landed += 1
        if cache is not None and outcome.ok:
            if cache_chunk is None:
                cache.put(outcome.spec, outcome.run)
            else:
                chunk_buffer.append((outcome.spec, outcome.run))
                if len(chunk_buffer) >= cache_chunk:
                    cache.put_batch(chunk_buffer)
                    chunk_buffer.clear()
        if progress is not None:
            progress(outcome, landed, total_pending)

    executed: List[Tuple[int, RunOutcome]] = []
    if pending and batch_backend is not None:
        groups, singles = group_into_batches(pending, backend=batch_backend)
        # Two dispatch phases: batches first, then scalar leftovers.  With a
        # parallel executor the singles therefore wait for the batch pool to
        # drain — a deliberate simplicity trade-off (a unified mixed
        # dispatch would complicate the executor interface for a phase that
        # is small whenever batching is worth turning on).
        if groups:
            group_results = executor.run_batches(
                [bspec for _, bspec in groups], progress=land
            )
            for (local_idx, _), group_outcomes in zip(groups, group_results):
                for li, outcome in zip(local_idx, group_outcomes):
                    executed.append((pending_idx[li], outcome))
        if singles:
            single_outcomes = executor.run([s for _, s in singles], progress=land)
            for (li, _), outcome in zip(singles, single_outcomes):
                executed.append((pending_idx[li], outcome))
    elif pending:
        for i, outcome in zip(
            pending_idx, executor.run(pending, progress=land, engine=scalar_engine)
        ):
            executed.append((i, outcome))
    if chunk_buffer:
        cache.put_batch(chunk_buffer)
        chunk_buffer.clear()
    for i, outcome in executed:
        outcomes[i] = outcome

    final = [o for o in outcomes if o is not None]
    batch_stats = ExecutionStats(
        total=len(specs),
        executed=len(executed),
        cache_hits=hits,
        failures=sum(1 for o in final if not o.ok),
        batched=sum(1 for _, o in executed if o.batched),
        elapsed=time.perf_counter() - t0,
        corrupt=(cache.corrupt - corrupt_before) if cache is not None else 0,
    )
    if stats is not None:
        stats.merge(batch_stats)
    return ExecutionResult(outcomes=final, stats=batch_stats)


def run_specs(
    specs: Iterable[RunSpec],
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    stats: Optional[ExecutionStats] = None,
) -> List[GatheringRun]:
    """:func:`execute`, unwrapped to records (raises on any failure)."""
    return execute(
        specs,
        executor=executor,
        cache=cache,
        root_seed=root_seed,
        progress=progress,
        stats=stats,
    ).records()
