"""Per-process graph/CSR memoization for sweep execution.

A sweep batch typically names a handful of distinct topologies and many
seeds/configurations per topology, yet :func:`repro.runtime.spec.materialize`
historically rebuilt the :class:`~repro.graphs.port_graph.PortGraph` (and,
lazily, its compiled CSR form) once per :class:`RunSpec`.  Graph
construction is pure — ``(family, params)`` determines the graph bit for
bit (generators derive randomness from explicit seeds in ``params``) — and
``PortGraph`` is immutable by convention, so the build can be shared.

:func:`graph_for` is that share point: a keyed, bounded, per-process memo.
Each executor worker process holds its own (no cross-process coordination,
no pickling of graphs); with the chunked dispatch of
:class:`~repro.runtime.executor.ParallelExecutor`, every worker builds each
topology at most once per batch and every spec after the first reuses both
the adjacency and the lazily-compiled CSR kernel.

``benchmarks/bench_sweep.py`` measures the wall-clock effect and writes
``BENCH_sweep.json``; :func:`disabled` is the benchmark's (and any
debugging session's) escape hatch.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Tuple

from repro.graphs.generators import by_name
from repro.graphs.port_graph import PortGraph

__all__ = [
    "graph_for",
    "pair_memo_for",
    "cache_info",
    "clear",
    "disabled",
    "MAX_ENTRIES",
]

#: Retained graphs per process.  Sweeps rarely touch more than a few dozen
#: distinct topologies; eviction is FIFO (dict insertion order), which for
#: the executor's chunk-ordered workloads behaves like LRU at a fraction of
#: the bookkeeping.
MAX_ENTRIES = 64

_cache: Dict[Tuple[str, str], PortGraph] = {}
_hits = 0
_misses = 0
_enabled = True


def _key(family: str, params: Dict[str, Any]) -> Tuple[str, str]:
    return (family, json.dumps(params, sort_keys=True, separators=(",", ":")))


def graph_for(family: str, params: Dict[str, Any]) -> PortGraph:
    """The memoized graph for ``family(**params)``.

    Returns the *shared* instance — callers must treat it as immutable
    (``PortGraph`` already promises that).  Falls back to a fresh build
    when memoization is disabled or the params refuse to serialize
    (non-JSON values cannot key a cache safely).
    """
    global _hits, _misses
    if not _enabled:
        return by_name(family, **params)
    try:
        key = _key(family, params)
    except TypeError:
        return by_name(family, **params)
    graph = _cache.get(key)
    if graph is not None:
        _hits += 1
        return graph
    _misses += 1
    graph = by_name(family, **params)
    if len(_cache) >= MAX_ENTRIES:
        _cache.pop(next(iter(_cache)))
    _cache[key] = graph
    return graph


#: Per-graph BFS pair-distance memos, keyed by graph identity.  The memo
#: holds a strong reference to its graph, so a live entry's ``id`` cannot
#: be recycled; the identity check below guards the (bounded) stale case.
_pair_memos: Dict[int, Any] = {}


def pair_memo_for(graph: PortGraph):
    """The shared :class:`~repro.analysis.placement.PairDistanceMemo` for
    ``graph``.

    Batched campaigns compute a min-pairwise start distance per replica
    over one shared graph; the underlying BFS trees are pure functions of
    the graph, so one memo serves every replica (and every batch) in the
    process.  Answers are bit-identical to a fresh memo — the memo class
    itself guarantees equality with the memo-free path.
    """
    memo = _pair_memos.get(id(graph))
    if memo is not None and memo.graph is graph:
        return memo
    from repro.analysis.placement import PairDistanceMemo  # avoid a cycle

    memo = PairDistanceMemo(graph)
    if len(_pair_memos) >= MAX_ENTRIES:
        _pair_memos.pop(next(iter(_pair_memos)))
    _pair_memos[id(graph)] = memo
    return memo


def cache_info() -> Dict[str, int]:
    """``{"hits", "misses", "size"}`` for this process's memo."""
    return {"hits": _hits, "misses": _misses, "size": len(_cache)}


def clear() -> None:
    """Drop every memoized graph/pair-distance memo and reset the counters."""
    global _hits, _misses
    _cache.clear()
    _pair_memos.clear()
    _hits = 0
    _misses = 0


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily build every graph from scratch (benchmark baseline)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous
