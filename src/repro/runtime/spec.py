"""Declarative run specifications — the unit of work of the runtime layer.

A :class:`RunSpec` is a *picklable, fully declarative* description of one
gathering simulation: graph family + parameters, placement scheme,
label scheme, algorithm + options, knowledge grants, seed, and limits.
Because a spec carries names and plain data instead of live objects
(graphs, program factories, closures), it can

* cross a process boundary untouched (parallel execution),
* be hashed canonically (content-addressed result caching), and
* be rebuilt bit-identically anywhere (``materialize`` + ``execute_spec``).

The registries below map scheme/algorithm names to the concrete builders in
:mod:`repro.analysis.placement` and :mod:`repro.core`; the CLI shares them,
so everything expressible on the command line is expressible as a spec.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, asdict, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    GatheringRun,
    record_from_result,
    run_gathering,
    verify_uxs_for_graph,
)
from repro.analysis.placement import (
    adversarial_scatter,
    assign_labels,
    dispersed_random,
    dispersed_with_pair_distance,
    undispersed_placement,
)
from repro.baselines import dessmark_program, random_walk_program, tz_rendezvous_program
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.ext.faults import FaultPlan
from repro.graphs.port_graph import PortGraph
from repro.graphs.traversal import require_connected
from repro.runtime.graph_cache import graph_for, pair_memo_for
from repro.sim.activation import build_activation
from repro.sim.batch import make_replica_batch
from repro.sim.robot import RobotSpec
from repro.sim.world import DEFAULT_MAX_ROUNDS

__all__ = [
    "RunSpec",
    "BatchRunSpec",
    "RunOutcome",
    "RunFailure",
    "execute_spec",
    "execute_batch_spec",
    "batch_key",
    "group_into_batches",
    "materialize",
    "register_algorithm",
    "unregister_algorithm",
    "ALGORITHM_BUILDERS",
    "PLACEMENT_BUILDERS",
    "NO_UXS",
    "NO_DETECTION",
    "SPEC_SCHEMA",
]

#: Bumped whenever the spec→result contract changes; participates in cache
#: keys so stale cache entries are never replayed against new semantics.
SPEC_SCHEMA = 1


# ---------------------------------------------------------------------------
# Registries (shared with the CLI)
# ---------------------------------------------------------------------------

#: ``algorithm name -> builder(options dict) -> program factory``.
ALGORITHM_BUILDERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "faster": lambda opts: faster_gathering_program(
        max_degree=opts.get("max_degree"), hop_distance=opts.get("hop_distance")
    ),
    "undispersed": lambda opts: undispersed_gathering_program(),
    "uxs": lambda opts: uxs_gathering_program(),
    "tz": lambda opts: tz_rendezvous_program(),
    "dessmark": lambda opts: dessmark_program(max_degree=opts.get("max_degree")),
    "random_walk": lambda opts: random_walk_program(seed=opts.get("seed", 0)),
}

#: Algorithms whose schedules never enter a UXS phase (skip plan checks).
NO_UXS = {"undispersed", "dessmark", "random_walk"}

#: Algorithms without termination detection: measure first-gather instead.
NO_DETECTION = {"tz", "random_walk"}


def register_algorithm(
    name: str,
    builder: Callable[[Dict[str, Any]], Any],
    *,
    uses_uxs: bool = True,
    detects: bool = True,
) -> None:
    """Register a custom algorithm so specs (and the CLI) can name it.

    ``builder(options)`` must return a program factory.  Registration is
    per-process; parallel executors inherit it through ``fork`` on POSIX.
    """
    ALGORITHM_BUILDERS[name] = builder
    if not uses_uxs:
        NO_UXS.add(name)
    if not detects:
        NO_DETECTION.add(name)


def unregister_algorithm(name: str) -> None:
    ALGORITHM_BUILDERS.pop(name, None)
    NO_UXS.discard(name)
    NO_DETECTION.discard(name)


def _place_undispersed(graph: PortGraph, k: int, seed: int, opts: Dict[str, Any]) -> List[int]:
    return undispersed_placement(graph, k, seed=seed)


def _place_dispersed(graph: PortGraph, k: int, seed: int, opts: Dict[str, Any]) -> List[int]:
    return dispersed_random(graph, k, seed=seed)


def _place_scatter(graph: PortGraph, k: int, seed: int, opts: Dict[str, Any]) -> List[int]:
    return adversarial_scatter(graph, k, seed=seed)


def _place_pair_distance(graph: PortGraph, k: int, seed: int, opts: Dict[str, Any]) -> List[int]:
    if "distance" not in opts:
        raise ValueError("placement 'pair-distance' needs placement_args['distance']")
    return dispersed_with_pair_distance(graph, k, opts["distance"], seed=seed)


#: ``placement name -> builder(graph, k, seed, options) -> starts``.
PLACEMENT_BUILDERS: Dict[str, Callable[[PortGraph, int, int, Dict[str, Any]], List[int]]] = {
    "undispersed": _place_undispersed,
    "dispersed": _place_dispersed,
    "scatter": _place_scatter,
    "pair-distance": _place_pair_distance,
}


# ---------------------------------------------------------------------------
# The spec itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """Picklable description of one gathering simulation.

    Seeds resolve in two steps: a scheme's ``*_args["seed"]`` wins when
    present; otherwise the spec-level :attr:`seed` applies (``0`` when that
    is also unset).  Leaving :attr:`seed` as ``None`` lets the runtime
    derive it from a root seed (see ``assign_seeds``) without clobbering
    pinned per-scheme seeds.
    """

    algorithm: str
    family: str
    graph: Dict[str, Any] = field(default_factory=dict)
    placement: str = "dispersed"
    k: int = 2
    placement_args: Dict[str, Any] = field(default_factory=dict)
    labels: str = "random"
    labels_args: Dict[str, Any] = field(default_factory=dict)
    algorithm_args: Dict[str, Any] = field(default_factory=dict)
    knowledge: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    uses_uxs: bool = True
    stop_on_gather: bool = False
    max_rounds: Optional[int] = None
    strict: bool = True
    #: Activation model name (:mod:`repro.sim.activation`); ``"sync"`` is
    #: the paper's model and runs the scheduler's native hot path.
    activation: str = "sync"
    activation_args: Dict[str, Any] = field(default_factory=dict)
    #: Declarative fault campaign: ``FaultPlan.to_dict()`` form, i.e.
    #: ``{"crash": {index: round}, "delay": {index: delay}}``.
    faults: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.faults:
            # Normalize to FaultPlan's canonical string-key form: int and
            # str index keys would otherwise make equivalent fault tables
            # unequal (and differently cache-keyed), and a mixed-key table
            # would crash sort_keys serialization with a TypeError.
            object.__setattr__(
                self, "faults", FaultPlan.from_dict(self.faults).to_dict()
            )

    def canonical_json(self) -> str:
        """Stable serialization — the identity the cache hashes.

        Raises ``TypeError`` for specs holding non-JSON values (functions,
        objects): silently stringifying them would embed memory addresses
        and quietly break cache-key identity across processes.

        The scenario fields (``activation``/``activation_args``/``faults``)
        are omitted at their defaults, so every spec expressible before the
        scenario layer existed keeps its exact historical cache key.
        """
        spec_dict = asdict(self)
        if spec_dict["activation"] == "sync" and not spec_dict["activation_args"]:
            del spec_dict["activation"]
            del spec_dict["activation_args"]
        if not spec_dict["faults"]:
            del spec_dict["faults"]
        payload = {"schema": SPEC_SCHEMA, "spec": spec_dict}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def fault_plan(self) -> Optional[FaultPlan]:
        """The spec's :class:`~repro.ext.faults.FaultPlan`, or ``None``."""
        if not self.faults:
            return None
        return FaultPlan.from_dict(self.faults)

    def is_clean(self) -> bool:
        """Synchronous activation (no stray options) and no faults — the
        paper's exact model.  ``sync`` with non-empty ``activation_args``
        is not clean: it is an invalid spec ``materialize`` rejects."""
        return self.activation == "sync" and not self.activation_args and not self.faults

    def resolved_seed(self, args: Dict[str, Any]) -> int:
        seed = args.get("seed", self.seed)
        return 0 if seed is None else seed


@dataclass
class RunOutcome:
    """What came back from one spec: a record, or an isolated failure."""

    spec: RunSpec
    run: Optional[GatheringRun] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    elapsed: float = 0.0
    cached: bool = False
    #: True when the run came out of the lockstep replica engine
    #: (:func:`execute_batch_spec`); results are bit-identical either way.
    batched: bool = False

    @property
    def ok(self) -> bool:
        return self.run is not None and self.error is None

    def run_or_raise(self) -> GatheringRun:
        if self.run is None:
            raise RunFailure(self)
        return self.run


class RunFailure(RuntimeError):
    """A spec failed inside the runtime (the batch itself survived)."""

    def __init__(self, outcome: RunOutcome):
        super().__init__(
            f"{outcome.error_type or 'error'} while running "
            f"{outcome.spec.algorithm} on {outcome.spec.family}: {outcome.error}"
        )
        self.outcome = outcome


# ---------------------------------------------------------------------------
# Materialization and execution
# ---------------------------------------------------------------------------


def _validate_and_graph(spec: RunSpec) -> PortGraph:
    """The seed-independent half of :func:`materialize`: name validation,
    activation/fault checks, and the (memoized) graph build.  A batch of
    seed-replicas shares one call."""
    if spec.algorithm not in ALGORITHM_BUILDERS:
        raise ValueError(
            f"unknown algorithm {spec.algorithm!r}; known: {sorted(ALGORITHM_BUILDERS)}"
        )
    if spec.placement not in PLACEMENT_BUILDERS:
        raise ValueError(
            f"unknown placement {spec.placement!r}; known: {sorted(PLACEMENT_BUILDERS)}"
        )
    # raises on unknown model names and unknown/typo'd option keys (a
    # silently ignored option would cache a mislabeled experiment)
    build_activation(spec.activation, dict(spec.activation_args))
    plan = spec.fault_plan()  # raises on malformed fault tables
    if plan is not None:
        plan.validate_for(spec.k)
    # per-process memo: a batch naming few topologies and many seeds builds
    # each graph (and its compiled CSR) once per worker, not once per spec
    return graph_for(spec.family, dict(spec.graph))


def _materialize_parts(spec: RunSpec, graph: PortGraph):
    """The seed-dependent half of :func:`materialize`: placement, labels,
    and the program factory — per replica in a batch."""
    starts = PLACEMENT_BUILDERS[spec.placement](
        graph, spec.k, spec.resolved_seed(spec.placement_args), dict(spec.placement_args)
    )
    labels = assign_labels(
        len(starts),
        graph.n,
        scheme=spec.labels,
        seed=spec.resolved_seed(spec.labels_args),
        **{k: v for k, v in spec.labels_args.items() if k not in ("seed",)},
    )
    opts = dict(spec.algorithm_args)
    opts.setdefault("seed", spec.resolved_seed(spec.algorithm_args))
    builder = ALGORITHM_BUILDERS[spec.algorithm]

    def factory_for():
        return builder(opts)

    return starts, labels, factory_for


def materialize(spec: RunSpec):
    """Rebuild the live objects a spec describes.

    Returns ``(graph, starts, labels, factory_for)`` ready for
    :func:`repro.analysis.experiments.run_gathering`.
    """
    graph = _validate_and_graph(spec)
    starts, labels, factory_for = _materialize_parts(spec, graph)
    return graph, starts, labels, factory_for


# ---------------------------------------------------------------------------
# Replica batching
# ---------------------------------------------------------------------------


def _freeze(value: Any):
    """Hashable projection of a spec's plain-data payloads (dict order
    insensitive, like ``canonical_json``'s sorted keys)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def batch_key(spec: RunSpec) -> Optional[tuple]:
    """The grouping identity for replica batching, or ``None`` if the spec
    does not qualify.

    Two specs with the same key differ in their ``seed`` field only — they
    are replicas of one experiment.  Only *clean* specs qualify (the
    batched engine runs the paper's exact synchronous model; activation
    models and fault plans stay on the scalar path).  The key is a cheap
    field tuple, **not** a cache key: per-replica results are still cached
    under each spec's own SHA-256 (see :class:`repro.runtime.cache.
    ResultCache`), and grouping a thousand-spec campaign must not pay a
    thousand canonical-JSON serializations.
    """
    if not spec.is_clean():
        return None
    try:
        return (
            spec.algorithm,
            spec.family,
            _freeze(spec.graph),
            spec.placement,
            spec.k,
            _freeze(spec.placement_args),
            spec.labels,
            _freeze(spec.labels_args),
            _freeze(spec.algorithm_args),
            _freeze(spec.knowledge),
            spec.uses_uxs,
            spec.stop_on_gather,
            spec.max_rounds,
            spec.strict,
        )
    except TypeError:  # unorderable dict keys cannot group safely
        return None


@dataclass(frozen=True)
class BatchRunSpec:
    """R seed-replicas of one :class:`RunSpec`, as a single unit of work.

    ``template`` carries the shared experiment shape (``seed=None``);
    ``seeds`` carries one entry per replica.  ``specs()`` reconstructs the
    concrete per-replica specs — the identities results are cached and
    reported under.  Picklable, so executors can dispatch a whole batch to
    a worker process as one task.
    """

    template: RunSpec
    seeds: Tuple[Optional[int], ...]
    #: Bookkeeping backend for the replica engine (see
    #: :mod:`repro.sim.batch`); results are bit-identical across backends.
    backend: str = "auto"

    def __post_init__(self):
        if not self.seeds:
            raise ValueError("BatchRunSpec needs at least one seed")
        if batch_key(self.template) is None:
            raise ValueError(
                "only clean specs (synchronous activation, no faults) can batch"
            )

    @classmethod
    def from_specs(
        cls, specs: Sequence[RunSpec], backend: str = "auto"
    ) -> "BatchRunSpec":
        """Group concrete specs that differ only by seed into one batch."""
        if not specs:
            raise ValueError("BatchRunSpec needs at least one spec")
        keys = {batch_key(s) for s in specs}
        if len(keys) != 1 or None in keys:
            raise ValueError("specs do not share a batchable identity")
        return cls(
            template=replace(specs[0], seed=None),
            seeds=tuple(s.seed for s in specs),
            backend=backend,
        )

    def specs(self) -> List[RunSpec]:
        return [replace(self.template, seed=s) for s in self.seeds]


def group_into_batches(
    specs: Sequence[RunSpec],
    min_replicas: int = 2,
    backend: str = "auto",
) -> Tuple[List[Tuple[List[int], BatchRunSpec]], List[Tuple[int, RunSpec]]]:
    """Partition specs into seed-replica batches and scalar leftovers.

    Returns ``(batches, singles)`` where each batch is ``(original
    indices, BatchRunSpec)`` and singles are ``(original index, spec)``
    pairs — everything needed to reassemble outcomes in submission order.
    Groups smaller than ``min_replicas`` stay scalar (batching one replica
    buys nothing).
    """
    groups: Dict[tuple, List[int]] = {}
    unbatchable: List[int] = []
    for i, spec in enumerate(specs):
        key = batch_key(spec)
        if key is None:
            unbatchable.append(i)
            continue
        try:
            groups.setdefault(key, []).append(i)
        except TypeError:  # unhashable payload values cannot group safely
            unbatchable.append(i)
    batches: List[Tuple[List[int], BatchRunSpec]] = []
    singles: List[Tuple[int, RunSpec]] = []
    for i in unbatchable:
        singles.append((i, specs[i]))
    for indices in groups.values():
        if len(indices) < min_replicas:
            singles.extend((i, specs[i]) for i in indices)
        else:
            batches.append(
                (
                    indices,
                    BatchRunSpec(
                        template=replace(specs[indices[0]], seed=None),
                        seeds=tuple(specs[i].seed for i in indices),
                        backend=backend,
                    ),
                )
            )
    singles.sort(key=lambda pair: pair[0])
    return batches, singles


def execute_batch_spec(batch: BatchRunSpec) -> List[RunOutcome]:
    """Run a batch of seed-replicas in lockstep; outcomes in seed order.

    The scalar path's per-spec work is split: name/graph validation, UXS
    certification, and the connectivity check run **once** for the shared
    graph; placement, labels, and program construction run per replica;
    the simulation itself runs through :class:`repro.sim.batch.
    ReplicaBatch`.  Failures are isolated exactly as in
    :func:`execute_spec` — per replica, message-identical — and per-outcome
    ``elapsed`` is the batch wall-clock split evenly (lockstep interleaving
    makes true per-replica timing meaningless).
    """
    specs = batch.specs()
    t0 = time.perf_counter()

    def errored(spec: RunSpec, exc: Exception) -> RunOutcome:
        return RunOutcome(
            spec=spec, error=str(exc), error_type=type(exc).__name__, batched=True
        )

    try:
        template = specs[0]
        graph = _validate_and_graph(template)
    except Exception as exc:
        return [errored(s, exc) for s in specs]

    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    fleets: List[List[RobotSpec]] = []
    fleet_idx: List[int] = []
    starts_of: Dict[int, List[int]] = {}
    for i, spec in enumerate(specs):
        try:
            starts, labels, factory_for = _materialize_parts(spec, graph)
            if not starts:
                raise ValueError("need at least one robot")
            factory = factory_for()
            fleet = [
                RobotSpec(label=l, start=s, factory=factory, knowledge=dict(spec.knowledge))
                for l, s in zip(labels, starts)
            ]
        except Exception as exc:
            outcomes[i] = errored(spec, exc)
            continue
        starts_of[i] = list(starts)
        fleets.append(fleet)
        fleet_idx.append(i)

    # Graph-pure checks, shared by every replica (the scalar path pays them
    # per run); a failure here fails each healthy replica identically.
    try:
        if template.uses_uxs:
            verify_uxs_for_graph(graph)
        require_connected(graph)
    except Exception as exc:
        for i in fleet_idx:
            outcomes[i] = errored(specs[i], exc)
        return [o for o in outcomes if o is not None]

    engine = make_replica_batch(
        graph, fleets, strict=template.strict, backend=batch.backend
    )
    max_rounds = (
        template.max_rounds if template.max_rounds is not None else DEFAULT_MAX_ROUNDS
    )
    replica_outcomes = engine.run(
        max_rounds=max_rounds, stop_on_gather=template.stop_on_gather
    )
    memo = pair_memo_for(graph)  # shared per process; answers bit-identical
    elapsed = (time.perf_counter() - t0) / len(specs)
    for i, rep in zip(fleet_idx, replica_outcomes):
        spec = specs[i]
        if rep.ok:
            rec = record_from_result(
                spec.algorithm,
                graph,
                starts_of[i],
                rep.result,
                min_pair_distance=memo.min_pairwise_distance(starts_of[i]),
            )
            outcomes[i] = RunOutcome(spec=spec, run=rec, elapsed=elapsed, batched=True)
        else:
            outcomes[i] = RunOutcome(
                spec=spec,
                error=rep.error,
                error_type=rep.error_type,
                elapsed=elapsed,
                batched=True,
            )
    return [o for o in outcomes if o is not None]


def execute_spec(spec: RunSpec, engine: Optional[str] = None) -> RunOutcome:
    """Run one spec to completion, isolating any failure in the outcome.

    This is the (module-level, hence picklable) function parallel workers
    execute.  It never raises: a :class:`ProtocolViolation`, a UXS
    certification failure, or a bad spec becomes an errored outcome so one
    poisoned run cannot kill a batch.

    ``engine`` pins a scalar simulation backend by name (see
    :func:`repro.sim.engines.list_engines`); ``None`` keeps the default.
    It is an *execution* parameter, like the executor choice — it never
    enters the spec or its cache key, because conforming backends return
    bit-identical records.
    """
    start = time.perf_counter()
    try:
        graph, starts, labels, factory_for = materialize(spec)
        rec = run_gathering(
            spec.algorithm,
            graph,
            starts,
            labels,
            factory_for,
            knowledge=dict(spec.knowledge),
            uses_uxs=spec.uses_uxs,
            stop_on_gather=spec.stop_on_gather,
            max_rounds=spec.max_rounds,
            strict=spec.strict,
            activation=spec.activation,
            activation_args=dict(spec.activation_args),
            fault_plan=spec.fault_plan(),
            engine=engine,
        )
        return RunOutcome(spec=spec, run=rec, elapsed=time.perf_counter() - start)
    except Exception as exc:
        return RunOutcome(
            spec=spec,
            error=str(exc),
            error_type=type(exc).__name__,
            elapsed=time.perf_counter() - start,
        )
