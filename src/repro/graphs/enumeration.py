"""Exhaustive enumeration of small port-labeled graphs.

Used by the exhaustive UXS search and by property tests.  The number of
port-labeled graphs explodes quickly — every node independently permutes its
incident edges — so exhaustive enumeration is only offered for ``n <= 4``
(and is already in the tens of thousands there); beyond that, use the seeded
samplers in :mod:`repro.graphs.generators`.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Iterator, List, Tuple

from repro.graphs.port_graph import Edge, PortGraph

__all__ = ["connected_edge_sets", "port_numberings", "all_port_graphs", "count_port_graphs"]

#: Guard: enumeration beyond this is combinatorially explosive.
MAX_EXHAUSTIVE_N = 4


def connected_edge_sets(n: int) -> Iterator[Tuple[Tuple[int, int], ...]]:
    """All connected simple graphs on exactly the nodes ``0..n-1``.

    Yields edge tuples.  Isolated nodes are not allowed (connectivity on all
    ``n`` nodes); for ``n = 1``, yields the empty edge set once.
    """
    if n == 1:
        yield ()
        return
    all_pairs = list(combinations(range(n), 2))
    for r in range(n - 1, len(all_pairs) + 1):
        for subset in combinations(all_pairs, r):
            if _connected(n, subset):
                yield subset


def _connected(n: int, pairs) -> bool:
    adj = [[] for _ in range(n)]
    for (u, v) in pairs:
        adj[u].append(v)
        adj[v].append(u)
    seen = [False] * n
    stack = [0]
    seen[0] = True
    cnt = 1
    while stack:
        v = stack.pop()
        for u in adj[v]:
            if not seen[u]:
                seen[u] = True
                cnt += 1
                stack.append(u)
    return cnt == n


def port_numberings(n: int, pairs: Tuple[Tuple[int, int], ...]) -> Iterator[PortGraph]:
    """All port numberings of one edge set (product of per-node permutations)."""
    inc: List[List[int]] = [[] for _ in range(n)]
    for (u, v) in pairs:
        inc[u].append(v)
        inc[v].append(u)
    perms_per_node = [list(permutations(sorted(neigh))) for neigh in inc]

    def rec(v: int, port_of: dict) -> Iterator[PortGraph]:
        if v == n:
            edges = [
                Edge(u, w, port_of[(u, w)], port_of[(w, u)]) for (u, w) in pairs
            ]
            yield PortGraph(n, edges)
            return
        for perm in perms_per_node[v]:
            for p, u in enumerate(perm):
                port_of[(v, u)] = p
            yield from rec(v + 1, port_of)

    yield from rec(0, {})


def all_port_graphs(n: int, allow_large: bool = False) -> Iterator[PortGraph]:
    """Every connected port-labeled graph on exactly ``n`` nodes.

    ``allow_large`` overrides the ``n <= 4`` guard (only do this knowingly).
    """
    if n > MAX_EXHAUSTIVE_N and not allow_large:
        raise ValueError(
            f"exhaustive enumeration for n={n} is explosive; "
            f"cap is {MAX_EXHAUSTIVE_N} (pass allow_large=True to override)"
        )
    for pairs in connected_edge_sets(n):
        yield from port_numberings(n, pairs)


def count_port_graphs(n: int) -> int:
    return sum(1 for _ in all_port_graphs(n))
