"""Graph families used by the paper's experiments.

All generators return a connected :class:`~repro.graphs.port_graph.PortGraph`
with ports assigned by a chosen strategy (default ``canonical``; experiments
typically rerun with ``random`` numbering to exercise anonymity).

The families cover the shapes that matter for gathering:

* **ring / path / grid / torus** — low degree, large diameter; worst cases
  for the trivial ``Ω(n)`` lower bound and friendly cases for hop-meeting.
* **complete / star** — small diameter, high degree; stress the
  ``(n-1)^i``-padding of hop-meeting cycles.
* **trees** (balanced binary, caterpillar, random) — no cycles, so map
  construction's frontier logic is exercised without merges.
* **erdos_renyi / random_regular** — the generic "arbitrary graph" setting.
* **lollipop / barbell** — classic worst cases for cover time (``Θ(n^3)``
  random-walk cover), included to keep UXS certification honest.
* **hypercube / cycle_with_chords** — structured symmetric graphs where
  anonymous walks tend to stay in lockstep; good adversaries for meetings.

Every generator is deterministic given its arguments (random families take a
``seed``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.graphs.csr import is_connected_csr
from repro.graphs.port_graph import PortGraph
from repro.graphs.port_numbering import assign_ports

__all__ = [
    "ring",
    "path",
    "grid",
    "torus",
    "complete",
    "star",
    "binary_tree",
    "caterpillar",
    "random_tree",
    "erdos_renyi",
    "random_regular",
    "lollipop",
    "barbell",
    "hypercube",
    "wheel",
    "complete_bipartite",
    "broom",
    "cycle_with_chords",
    "FAMILIES",
    "by_name",
]


def _build(n: int, pairs: List[Tuple[int, int]], numbering: str, seed: int) -> PortGraph:
    g = assign_ports(n, pairs, strategy=numbering, seed=seed)
    return g


# ---------------------------------------------------------------------------
# Deterministic families
# ---------------------------------------------------------------------------
def ring(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    pairs = [(i, (i + 1) % n) for i in range(n)]
    return _build(n, pairs, numbering, seed)


def path(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Simple path on ``n >= 2`` nodes (the line graph of the lower bound)."""
    if n < 2:
        raise ValueError("path needs n >= 2")
    pairs = [(i, i + 1) for i in range(n - 1)]
    return _build(n, pairs, numbering, seed)


def grid(rows: int, cols: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """``rows x cols`` 4-neighbor grid."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid needs at least 2 nodes")
    def idx(r: int, c: int) -> int:
        return r * cols + c

    pairs = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                pairs.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                pairs.append((idx(r, c), idx(r + 1, c)))
    return _build(rows * cols, pairs, numbering, seed)


def torus(rows: int, cols: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """``rows x cols`` grid with wraparound; 4-regular when both dims >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs rows, cols >= 3")
    def idx(r: int, c: int) -> int:
        return r * cols + c

    pairs = set()
    for r in range(rows):
        for c in range(cols):
            a = idx(r, c)
            for b in (idx(r, (c + 1) % cols), idx((r + 1) % rows, c)):
                pairs.add((min(a, b), max(a, b)))
    return _build(rows * cols, sorted(pairs), numbering, seed)


def complete(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Complete graph ``K_n``, ``n >= 2``."""
    if n < 2:
        raise ValueError("complete needs n >= 2")
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _build(n, pairs, numbering, seed)


def star(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Star with center 0 and ``n-1`` leaves."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    pairs = [(0, i) for i in range(1, n)]
    return _build(n, pairs, numbering, seed)


def binary_tree(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Complete-ish binary tree on ``n >= 2`` nodes (heap order)."""
    if n < 2:
        raise ValueError("binary_tree needs n >= 2")
    pairs = [((i - 1) // 2, i) for i in range(1, n)]
    return _build(n, pairs, numbering, seed)


def caterpillar(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Caterpillar: a spine path with alternating legs, ``n >= 2``."""
    if n < 2:
        raise ValueError("caterpillar needs n >= 2")
    spine = (n + 1) // 2
    pairs = [(i, i + 1) for i in range(spine - 1)]
    node = spine
    i = 0
    while node < n:
        pairs.append((i % spine, node))
        node += 1
        i += 1
    return _build(n, pairs, numbering, seed)


def hypercube(dim: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """The ``dim``-dimensional hypercube (``2^dim`` nodes)."""
    if dim < 1:
        raise ValueError("hypercube needs dim >= 1")
    n = 1 << dim
    pairs = []
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                pairs.append((v, u))
    return _build(n, pairs, numbering, seed)


def lollipop(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Clique on ``ceil(n/2)`` nodes with a path tail — cover-time worst case."""
    if n < 4:
        raise ValueError("lollipop needs n >= 4")
    head = (n + 1) // 2
    pairs = [(i, j) for i in range(head) for j in range(i + 1, head)]
    pairs += [(i, i + 1) for i in range(head - 1, n - 1)]
    return _build(n, pairs, numbering, seed)


def barbell(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Two cliques joined by a path (three roughly equal parts)."""
    if n < 6:
        raise ValueError("barbell needs n >= 6")
    a = n // 3  # clique size; the connecting path has n - 2a >= a nodes
    pairs = [(i, j) for i in range(a) for j in range(i + 1, a)]
    hi = n - a
    pairs += [(i, j) for i in range(hi, n) for j in range(i + 1, n)]
    # path connecting node a-1 .. a .. hi-1 .. hi
    chain = [a - 1] + list(range(a, hi)) + [hi]
    pairs += [(chain[i], chain[i + 1]) for i in range(len(chain) - 1)]
    dedup = sorted({(min(u, v), max(u, v)) for (u, v) in pairs})
    return _build(n, dedup, numbering, seed)


def wheel(n: int, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """Wheel: a hub (node 0) connected to every node of an (n-1)-ring."""
    if n < 5:
        raise ValueError("wheel needs n >= 5")
    rim = n - 1
    pairs = [(0, i) for i in range(1, n)]
    pairs += [(i, i % rim + 1) for i in range(1, n)]
    dedup = sorted({(min(u, v), max(u, v)) for (u, v) in pairs})
    return _build(n, dedup, numbering, seed)


def complete_bipartite(
    a: int, b: int, numbering: str = "canonical", seed: int = 0
) -> PortGraph:
    """``K_{a,b}``: every left node adjacent to every right node."""
    if a < 1 or b < 1 or a + b < 2:
        raise ValueError("complete_bipartite needs a, b >= 1")
    pairs = [(i, a + j) for i in range(a) for j in range(b)]
    return _build(a + b, pairs, numbering, seed)


def broom(n: int, handle: int | None = None, numbering: str = "canonical", seed: int = 0) -> PortGraph:
    """A path ("handle") ending in a star ("brush") — asymmetric tree.

    ``handle`` defaults to ``n // 2``.  A classic adversary for anonymous
    walks: long thin stretch plus a high-degree hub.
    """
    if n < 4:
        raise ValueError("broom needs n >= 4")
    h = handle if handle is not None else n // 2
    if not (2 <= h <= n - 2):
        raise ValueError("handle must leave at least 2 brush nodes")
    pairs = [(i, i + 1) for i in range(h - 1)]
    pairs += [(h - 1, j) for j in range(h, n)]
    return _build(n, pairs, numbering, seed)


def cycle_with_chords(
    n: int, chords: int = 2, numbering: str = "canonical", seed: int = 0
) -> PortGraph:
    """Ring plus ``chords`` long chords (deterministic chord placement)."""
    if n < 5:
        raise ValueError("cycle_with_chords needs n >= 5")
    pairs = {(i, (i + 1) % n) for i in range(n)}
    pairs = {(min(u, v), max(u, v)) for (u, v) in pairs}
    added = 0
    step = max(2, n // (chords + 1))
    i = 0
    while added < chords and i < n:
        a, b = i, (i + n // 2) % n
        key = (min(a, b), max(a, b))
        if a != b and key not in pairs:
            pairs.add(key)
            added += 1
        i += step
    return _build(n, sorted(pairs), numbering, seed)


# ---------------------------------------------------------------------------
# Random families (seeded, deterministic)
# ---------------------------------------------------------------------------
def random_tree(n: int, seed: int = 0, numbering: str = "canonical") -> PortGraph:
    """Uniform random labeled tree via a random Prüfer sequence."""
    if n < 2:
        raise ValueError("random_tree needs n >= 2")
    if n == 2:
        return _build(2, [(0, 1)], numbering, seed)
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    pairs = []
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        pairs.append((min(leaf, v), max(leaf, v)))
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    pairs.append((min(u, v), max(u, v)))
    return _build(n, sorted(pairs), numbering, seed)


def erdos_renyi(
    n: int, p: float | None = None, seed: int = 0, numbering: str = "canonical"
) -> PortGraph:
    """Connected Erdős–Rényi graph.

    ``p`` defaults to ``min(1, 2 ln n / n)`` (just above the connectivity
    threshold).  Edges are sampled with a seeded RNG and, if the sample is
    disconnected, a spanning-tree patch-up connects the components (keeping
    the sample deterministic rather than resampling forever).
    """
    import math

    if n < 2:
        raise ValueError("erdos_renyi needs n >= 2")
    if p is None:
        p = min(1.0, 2.0 * math.log(max(n, 2)) / n)
    rng = random.Random(seed)
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                pairs.add((i, j))

    # connect components deterministically
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for (u, v) in pairs:
        union(u, v)
    roots = sorted({find(v) for v in range(n)})
    for a, b in zip(roots, roots[1:]):
        pairs.add((min(a, b), max(a, b)))
        union(a, b)
    return _build(n, sorted(pairs), numbering, seed)


def random_regular(
    n: int, d: int = 3, seed: int = 0, numbering: str = "canonical"
) -> PortGraph:
    """Random ``d``-regular connected graph (configuration model + retries)."""
    if n * d % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph")
    if d >= n:
        raise ValueError("need d < n")
    if d < 2:
        raise ValueError("need d >= 2 for connectivity")
    rng = random.Random(seed)
    for attempt in range(1000):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        pairs = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            key = (min(u, v), max(u, v))
            if u == v or key in pairs:
                ok = False
                break
            pairs.add(key)
        if not ok:
            continue
        g = _build(n, sorted(pairs), numbering, seed)
        # connectivity over the compiled flat-array form; the CSR is cached
        # on the graph, so the accepted sample's kernel is already built
        if is_connected_csr(g.csr):
            return g
    raise RuntimeError(f"could not sample a connected {d}-regular graph on {n} nodes")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
FAMILIES: Dict[str, Callable[..., PortGraph]] = {
    "ring": ring,
    "path": path,
    "grid": grid,
    "torus": torus,
    "complete": complete,
    "star": star,
    "binary_tree": binary_tree,
    "caterpillar": caterpillar,
    "random_tree": random_tree,
    "erdos_renyi": erdos_renyi,
    "random_regular": random_regular,
    "lollipop": lollipop,
    "barbell": barbell,
    "hypercube": hypercube,
    "wheel": wheel,
    "complete_bipartite": complete_bipartite,
    "broom": broom,
    "cycle_with_chords": cycle_with_chords,
}


def by_name(name: str, **kwargs) -> PortGraph:
    """Instantiate a family from the registry (used by the experiment CLI)."""
    try:
        fn = FAMILIES[name]
    except KeyError:
        raise ValueError(f"unknown family {name!r}; known: {sorted(FAMILIES)}") from None
    return fn(**kwargs)
