"""Serialization of port graphs (and experiment artifacts) to JSON.

Port numbering is the whole point of this model, so the interchange format
keeps it explicit: an edge is ``[u, v, pu, pv]``.  The format is versioned
and round-trip tested; `loads`/`load` validate through the normal
:class:`~repro.graphs.port_graph.PortGraph` constructor, so malformed files
fail with the same errors as malformed programmatic input.

Example document::

    {
      "format": "repro-port-graph",
      "version": 1,
      "n": 3,
      "edges": [[0, 1, 0, 0], [1, 2, 1, 0]]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.graphs.port_graph import Edge, PortGraph

__all__ = ["dumps", "loads", "save", "load"]

FORMAT_NAME = "repro-port-graph"
FORMAT_VERSION = 1


def to_dict(graph: PortGraph) -> Dict[str, Any]:
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "n": graph.n,
        "edges": [[e.u, e.v, e.pu, e.pv] for e in graph.edges],
    }


def from_dict(doc: Dict[str, Any]) -> PortGraph:
    if doc.get("format") != FORMAT_NAME:
        raise ValueError(f"not a {FORMAT_NAME} document: format={doc.get('format')!r}")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {doc.get('version')!r}")
    try:
        n = int(doc["n"])
        edges = [Edge(*map(int, item)) for item in doc["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed port-graph document: {exc}") from exc
    return PortGraph(n, edges)


def dumps(graph: PortGraph, indent: int | None = None) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(graph), indent=indent)


def loads(text: str) -> PortGraph:
    """Parse a JSON string produced by :func:`dumps` (validating fully)."""
    return from_dict(json.loads(text))


def save(graph: PortGraph, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps(graph, indent=2) + "\n")


def load(path: Union[str, Path]) -> PortGraph:
    return loads(Path(path).read_text())
