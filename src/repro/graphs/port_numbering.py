"""Port-numbering strategies.

Anonymity results are sensitive to *how* ports are labeled: an algorithm
that accidentally relies on "port 0 points clockwise" is wrong in the model.
Experiments therefore run every graph family under several numberings:

* ``canonical`` — ports ordered by neighbor index (deterministic, friendly);
* ``random`` — a seeded random permutation of each node's incident edges
  (the default for experiments; deterministic given the seed);
* ``reversed`` — canonical reversed, a cheap structured adversary;
* ``rotated`` — canonical rotated by a per-node offset derived from the
  seed, another structured adversary that tends to break lockstep walks.

All strategies produce a valid :class:`~repro.graphs.port_graph.PortGraph`;
they differ only in the bijection ``incident edge -> port`` at each node.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.graphs.port_graph import Edge, PortGraph

__all__ = ["STRATEGIES", "assign_ports", "renumber"]

STRATEGIES = ("canonical", "random", "reversed", "rotated")


def _incidences(n: int, pairs: Sequence[Tuple[int, int]]) -> List[List[int]]:
    """For each node, the sorted list of neighbor indices."""
    inc: List[List[int]] = [[] for _ in range(n)]
    for (u, v) in pairs:
        if u == v:
            raise ValueError(f"self-loop at {u}")
        inc[u].append(v)
        inc[v].append(u)
    for lst in inc:
        lst.sort()
    return inc


def assign_ports(
    n: int,
    pairs: Sequence[Tuple[int, int]],
    strategy: str = "canonical",
    seed: int = 0,
) -> PortGraph:
    """Assign port numbers to an edge list and return the resulting graph.

    Parameters
    ----------
    n:
        Node count; nodes are ``0..n-1``.
    pairs:
        Undirected edges as ``(u, v)`` pairs (order irrelevant, no
        duplicates).
    strategy:
        One of :data:`STRATEGIES`.
    seed:
        Seed for the ``random`` and ``rotated`` strategies.  Ignored by the
        deterministic ones, so calls are reproducible either way.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown port strategy {strategy!r}; pick from {STRATEGIES}")

    inc = _incidences(n, pairs)
    order: List[List[int]] = []
    rng = random.Random(seed ^ 0x9E3779B9)
    for v, neighbors in enumerate(inc):
        neighbors = list(neighbors)
        if strategy == "canonical":
            pass
        elif strategy == "reversed":
            neighbors.reverse()
        elif strategy == "rotated":
            if neighbors:
                off = rng.randrange(len(neighbors))
                neighbors = neighbors[off:] + neighbors[:off]
        elif strategy == "random":
            rng.shuffle(neighbors)
        order.append(neighbors)

    port_of: Dict[Tuple[int, int], int] = {}
    for v, neighbors in enumerate(order):
        for p, u in enumerate(neighbors):
            port_of[(v, u)] = p

    edges = [Edge(u, v, port_of[(u, v)], port_of[(v, u)]) for (u, v) in pairs]
    return PortGraph(n, edges)


def renumber(graph: PortGraph, strategy: str, seed: int = 0) -> PortGraph:
    """Return the same underlying graph with freshly assigned ports."""
    pairs = [(e.u, e.v) for e in graph.edges]
    return assign_ports(graph.n, pairs, strategy=strategy, seed=seed)
