"""The anonymous port-labeled graph data structure.

A :class:`PortGraph` is an undirected, connected graph on nodes
``0 .. n-1`` where each node ``v`` numbers its incident edges with distinct
*ports* ``0 .. deg(v)-1``.  An edge between ``u`` and ``v`` therefore carries
two port numbers — one assigned by each endpoint — and these need not agree,
exactly as in the paper's model (Section 1.1).

Node integers exist only for the simulator's bookkeeping; the robot-facing
API (:mod:`repro.sim`) never leaks them.  All robot algorithms interact with
the graph exclusively through two primitives:

* ``degree(v)`` — how many ports the current node has;
* ``traverse(v, p) -> (u, q)`` — walk out of port ``p``; arrive at the
  neighbor ``u`` through its port ``q``.

The structure is immutable after construction, hashable by content, and
validates itself on creation so that every downstream component can assume a
well-formed port numbering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graphs.csr import CSRPortGraph

__all__ = ["Edge", "PortGraph", "PortGraphError"]


class PortGraphError(ValueError):
    """Raised when a port-graph description is malformed."""


@dataclass(frozen=True)
class Edge:
    """An undirected edge with its two endpoint port numbers.

    ``u``/``v`` are node indices; ``pu`` is the port number the edge has at
    ``u`` and ``pv`` the port number at ``v``.  Self-loops are disallowed
    (the gathering model assumes simple graphs); parallel edges likewise.
    """

    u: int
    v: int
    pu: int
    pv: int

    def endpoints(self) -> Tuple[int, int]:
        return (self.u, self.v)

    def other(self, w: int) -> int:
        """The endpoint that is not ``w``."""
        if w == self.u:
            return self.v
        if w == self.v:
            return self.u
        raise PortGraphError(f"node {w} is not an endpoint of {self}")


class PortGraph:
    """Immutable anonymous port-labeled graph.

    Parameters
    ----------
    n:
        Number of nodes.  Nodes are ``0 .. n-1``.
    edges:
        Iterable of :class:`Edge` (or ``(u, v, pu, pv)`` tuples).  Each node's
        ports must form exactly ``{0, .., deg-1}``.

    Notes
    -----
    * The graph must be simple (no self-loops, no parallel edges).
    * Connectivity is *not* enforced here (subgraphs and partial maps are
      legitimate values during map construction); use :meth:`is_connected`
      or :func:`repro.graphs.traversal.require_connected` where the model
      demands it.
    """

    __slots__ = ("_n", "_edges", "_adj", "_degrees", "_hash", "_csr")

    def __init__(self, n: int, edges: Iterable[Edge | Tuple[int, int, int, int]]):
        if n <= 0:
            raise PortGraphError(f"graph needs at least one node, got n={n}")
        norm: List[Edge] = []
        for e in edges:
            if not isinstance(e, Edge):
                e = Edge(*e)
            norm.append(e)

        # adjacency: node -> port -> (neighbor, neighbor's port)
        adj: List[Dict[int, Tuple[int, int]]] = [dict() for _ in range(n)]
        seen_pairs = set()
        for e in norm:
            if not (0 <= e.u < n and 0 <= e.v < n):
                raise PortGraphError(f"edge {e} references a node outside [0, {n})")
            if e.u == e.v:
                raise PortGraphError(f"self-loop at node {e.u} is not allowed")
            key = (min(e.u, e.v), max(e.u, e.v))
            if key in seen_pairs:
                raise PortGraphError(f"parallel edge between {e.u} and {e.v}")
            seen_pairs.add(key)
            if e.pu in adj[e.u]:
                raise PortGraphError(f"duplicate port {e.pu} at node {e.u}")
            if e.pv in adj[e.v]:
                raise PortGraphError(f"duplicate port {e.pv} at node {e.v}")
            adj[e.u][e.pu] = (e.v, e.pv)
            adj[e.v][e.pv] = (e.u, e.pu)

        degrees: List[int] = []
        for v, ports in enumerate(adj):
            deg = len(ports)
            if set(ports.keys()) != set(range(deg)):
                raise PortGraphError(
                    f"node {v}: ports must be exactly 0..{deg - 1}, got {sorted(ports)}"
                )
            degrees.append(deg)

        # Freeze into tuples for immutability and fast access.
        object.__setattr__  # appease linters; we use __slots__ assignment below
        self._n = n
        self._edges = tuple(
            sorted(norm, key=lambda e: (min(e.u, e.v), max(e.u, e.v)))
        )
        self._adj = tuple(
            tuple(ports[p] for p in range(len(ports))) for ports in adj
        )
        self._degrees = tuple(degrees)
        self._hash = None
        self._csr = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return self._edges

    def nodes(self) -> range:
        return range(self._n)

    def degree(self, v: int) -> int:
        return self._degrees[v]

    @property
    def max_degree(self) -> int:
        return max(self._degrees)

    @property
    def min_degree(self) -> int:
        return min(self._degrees)

    def traverse(self, v: int, port: int) -> Tuple[int, int]:
        """Walk out of ``v`` through ``port``.

        Returns ``(u, q)``: the neighbor reached and the port of the edge at
        that neighbor (the "entry port" a robot observes on arrival).
        """
        try:
            return self._adj[v][port]
        except IndexError:
            raise PortGraphError(
                f"node {v} has degree {self._degrees[v]}; port {port} is invalid"
            ) from None

    def neighbor(self, v: int, port: int) -> int:
        """The node reached by leaving ``v`` through ``port``."""
        return self._adj[v][port][0]

    def neighbors(self, v: int) -> Iterator[int]:
        """All neighbors of ``v``, in port order."""
        return (u for (u, _q) in self._adj[v])

    def ports(self, v: int) -> range:
        return range(self._degrees[v])

    @property
    def csr(self) -> "CSRPortGraph":
        """The compiled flat-array (CSR) form, built lazily and cached.

        Hot loops (the scheduler, BFS utilities) bind its ``row_offsets`` /
        ``neighbor`` / ``entry_port`` / ``degree`` lists locally and index
        them directly instead of going through :meth:`traverse` /
        :meth:`degree`.  The compiled form is shared and must never be
        mutated.
        """
        c = self._csr
        if c is None:
            from repro.graphs.csr import CSRPortGraph

            c = CSRPortGraph(self._adj)
            self._csr = c
        return c

    def port_to(self, v: int, u: int) -> int:
        """The (smallest) port at ``v`` leading to ``u``.

        Simulator-side helper; robots cannot call this (they do not know node
        identities).
        """
        for p, (w, _q) in enumerate(self._adj[v]):
            if w == u:
                return p
        raise PortGraphError(f"{u} is not adjacent to {v}")

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        from repro.graphs.csr import is_connected_csr

        return is_connected_csr(self.csr)

    # ------------------------------------------------------------------
    # Interop & dunder protocol
    # ------------------------------------------------------------------
    def adjacency(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Raw adjacency: ``adjacency()[v][p] == (u, q)``."""
        return self._adj

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with port attributes.

        Edge attributes ``port_u``/``port_v`` record the port at the lower-
        and higher-numbered endpoint respectively.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for e in self._edges:
            a, b = sorted((e.u, e.v))
            pa = e.pu if a == e.u else e.pv
            pb = e.pv if b == e.v else e.pu
            g.add_edge(a, b, port_u=pa, port_v=pb)
        return g

    @classmethod
    def from_networkx(cls, g, numbering: str = "canonical", seed: int = 0) -> "PortGraph":
        """Build a :class:`PortGraph` from a networkx graph.

        Nodes are relabeled ``0..n-1`` in sorted order.  Ports are assigned
        by :func:`repro.graphs.port_numbering.assign_ports` with the given
        strategy.
        """
        from repro.graphs.port_numbering import assign_ports

        nodes = sorted(g.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        pairs = sorted(
            (min(index[a], index[b]), max(index[a], index[b])) for a, b in g.edges()
        )
        return assign_ports(len(nodes), pairs, strategy=numbering, seed=seed)

    def relabel(self, perm: Sequence[int]) -> "PortGraph":
        """Apply a node permutation, keeping every port number.

        ``perm[v]`` is the new name of node ``v``.  The result is
        port-preservingly isomorphic to ``self`` — robots, which never see
        node names, behave *identically* on it (a property the anonymity
        tests assert).
        """
        if sorted(perm) != list(range(self._n)):
            raise PortGraphError("perm must be a permutation of 0..n-1")
        edges = [Edge(perm[e.u], perm[e.v], e.pu, e.pv) for e in self._edges]
        return PortGraph(self._n, edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortGraph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._n, self._adj))
        return self._hash

    def __repr__(self) -> str:
        return f"PortGraph(n={self._n}, m={self.m})"

    # Pickle support despite __slots__ -------------------------------------
    def __getstate__(self):
        return (self._n, self._edges)

    def __setstate__(self, state):
        n, edges = state
        self.__init__(n, edges)


def build_from_pairs(
    n: int, pairs: Sequence[Tuple[int, int]], ports: Dict[Tuple[int, int], int]
) -> PortGraph:
    """Assemble a :class:`PortGraph` from node pairs and a full port map.

    ``ports[(u, v)]`` is the port of edge ``{u, v}`` at ``u`` (both
    orientations must be present).  Mostly a convenience for tests that need
    exact control over port labels.
    """
    edges = []
    for (u, v) in pairs:
        edges.append(Edge(u, v, ports[(u, v)], ports[(v, u)]))
    return PortGraph(n, edges)
