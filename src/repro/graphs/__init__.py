"""Anonymous port-labeled graph substrate.

Mobile-robot algorithms on anonymous graphs never see node identities: a
robot standing on a node observes only the node's *degree* and, after a move,
the *port* through which it arrived.  This subpackage provides:

* :class:`~repro.graphs.port_graph.PortGraph` — the immutable core data
  structure: an undirected connected graph whose every edge endpoint carries a
  local port number in ``[0, deg)``.
* :mod:`~repro.graphs.generators` — graph families used throughout the
  paper's experiments (rings, grids, trees, random graphs, lollipops, ...).
* :mod:`~repro.graphs.port_numbering` — strategies for assigning port
  numbers; anonymity lower bounds live and die by adversarial port labels, so
  experiments exercise several.
* :mod:`~repro.graphs.traversal` — BFS layers, balls, diameter, spanning
  trees, Euler tours and port-walk navigation.
* :mod:`~repro.graphs.isomorphism` — port-labeled isomorphism checking, used
  to validate maps built by the token-explorer.
"""

from repro.graphs.port_graph import PortGraph, Edge
from repro.graphs.csr import CSRPortGraph
from repro.graphs import generators
from repro.graphs import port_numbering
from repro.graphs import traversal
from repro.graphs import isomorphism

__all__ = [
    "PortGraph",
    "Edge",
    "CSRPortGraph",
    "generators",
    "port_numbering",
    "traversal",
    "isomorphism",
]
