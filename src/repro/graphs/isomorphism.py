"""Port-labeled graph isomorphism.

The token-explorer of Phase 1 produces a *map*: a port graph that should be
isomorphic to the ground truth **including port numbers** — an isomorphism
here is a node bijection ``f`` such that leaving ``v`` by port ``p`` lands on
``u`` through port ``q`` iff leaving ``f(v)`` by port ``p`` lands on ``f(u)``
through port ``q``.

Because port numbers rigidify the structure, isomorphism is decidable by a
simple anchored walk: fix a candidate image for one node and propagate — the
map is forced.  Checking all ``n`` anchor choices gives an ``O(n·m)``
decision procedure, plenty fast at repo scale and with none of the generic
graph-isomorphism machinery.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.graphs.port_graph import PortGraph

__all__ = ["find_isomorphism", "is_isomorphic", "automorphisms"]


def _try_anchor(a: PortGraph, b: PortGraph, start_a: int, start_b: int) -> Optional[Dict[int, int]]:
    """Propagate the forced mapping from ``start_a -> start_b``.

    Returns the full bijection or ``None`` on any conflict.
    """
    if a.degree(start_a) != b.degree(start_b):
        return None
    mapping: Dict[int, int] = {start_a: start_b}
    used = {start_b}
    q = deque([start_a])
    while q:
        va = q.popleft()
        vb = mapping[va]
        for p in a.ports(va):
            ua, qa = a.traverse(va, p)
            ub, qb = b.traverse(vb, p)
            if qa != qb:
                return None
            if ua in mapping:
                if mapping[ua] != ub:
                    return None
                continue
            if ub in used:
                return None
            if a.degree(ua) != b.degree(ub):
                return None
            mapping[ua] = ub
            used.add(ub)
            q.append(ua)
    if len(mapping) != a.n:
        # disconnected graphs: only the component of the anchor is mapped
        return None
    return mapping


def find_isomorphism(a: PortGraph, b: PortGraph) -> Optional[Dict[int, int]]:
    """A port-preserving isomorphism ``a -> b``, or ``None``.

    Requires both graphs connected (the anchored propagation only reaches the
    anchor's component).
    """
    if a.n != b.n or a.m != b.m:
        return None
    if sorted(a.degree(v) for v in a.nodes()) != sorted(b.degree(v) for v in b.nodes()):
        return None
    for cand in b.nodes():
        mapping = _try_anchor(a, b, 0, cand)
        if mapping is not None:
            return mapping
    return None


def is_isomorphic(a: PortGraph, b: PortGraph) -> bool:
    return find_isomorphism(a, b) is not None


def automorphisms(g: PortGraph) -> List[Dict[int, int]]:
    """All port-preserving automorphisms of ``g``.

    On port-labeled graphs the automorphism group is sharply constrained
    (each anchor image forces everything), so enumeration is ``O(n·m)``.
    Useful in tests: a map builder cannot distinguish automorphic nodes, and
    assertions must be up-to-automorphism.
    """
    out = []
    for cand in g.nodes():
        mapping = _try_anchor(g, g, 0, cand)
        if mapping is not None:
            out.append(mapping)
    return out
