"""Compiled flat-array (CSR) form of a port graph — the simulation kernel.

:class:`~repro.graphs.port_graph.PortGraph` stores its adjacency as a tuple
of per-node tuples of ``(neighbor, entry_port)`` pairs.  That layout is
convenient and immutable, but every hot-loop access chases two tuple
indirections and allocates nothing reusable.  ``CSRPortGraph`` is the same
graph *compiled* into four parallel flat integer lists in CSR (compressed
sparse row) order:

* ``row_offsets`` — length ``n + 1``; node ``v``'s ports occupy the slots
  ``row_offsets[v] .. row_offsets[v+1] - 1``, in port order;
* ``neighbor[row_offsets[v] + p]`` — the node reached from ``v`` via port
  ``p``;
* ``entry_port[row_offsets[v] + p]`` — the port observed on arrival there;
* ``degree[v]`` — ``row_offsets[v+1] - row_offsets[v]``, pre-extracted.

A traverse is then two flat list reads at a precomputed index; a degree is
one.  Plain Python ``list`` is deliberately chosen over :mod:`array` —
indexing an ``array('l')`` must box a fresh ``int`` on every read, while a
list returns the already-boxed object, which is measurably faster in the
pure-Python loops this kernel feeds (see ``docs/PERF.md``).

The compiled form is immutable by convention (never mutate the lists) and is
built lazily, once, by :attr:`PortGraph.csr`.  All flat-array graph
algorithms used by the traversal layer live here so every caller — the
scheduler, BFS utilities, generators' connectivity checks — shares one
kernel.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

__all__ = ["CSRPortGraph", "bfs_distances_csr", "is_connected_csr"]


class CSRPortGraph:
    """Flat-array compiled view of one port graph (see module docstring)."""

    __slots__ = ("n", "row_offsets", "neighbor", "entry_port", "degree", "_selfloop")

    def __init__(self, adjacency: Iterable[Tuple[Tuple[int, int], ...]]):
        row_offsets: List[int] = [0]
        neighbor: List[int] = []
        entry_port: List[int] = []
        degree: List[int] = []
        off = 0
        for ports in adjacency:
            off += len(ports)
            row_offsets.append(off)
            degree.append(len(ports))
            for (u, q) in ports:
                neighbor.append(u)
                entry_port.append(q)
        self.n = len(degree)
        self.row_offsets = row_offsets
        self.neighbor = neighbor
        self.entry_port = entry_port
        self.degree = degree
        self._selfloop: bool | None = None

    @property
    def has_self_loop(self) -> bool:
        """Whether any edge returns to its own endpoint.

        Computed once, lazily, and cached on the (shared, immutable)
        compiled graph: the scheduler's SoA regime relies on "position
        changed <=> robot moved", which a self-loop would break, so it
        checks this flag at construction time.
        """
        if self._selfloop is None:
            row = self.row_offsets
            nbr = self.neighbor
            found = False
            for v in range(self.n):
                for i in range(row[v], row[v + 1]):
                    if nbr[i] == v:
                        found = True
                        break
                if found:
                    break
            self._selfloop = found
        return self._selfloop

    # ------------------------------------------------------------------
    # O(1) primitives.  Hot loops should not call these methods — bind the
    # arrays locally and index directly; these exist for occasional callers
    # and tests.
    # ------------------------------------------------------------------
    def traverse(self, v: int, port: int) -> Tuple[int, int]:
        """``(neighbor, entry_port)`` of leaving ``v`` through ``port``.

        Validates ``port`` (including negatives, which raw list indexing
        would silently wrap).
        """
        if not 0 <= port < self.degree[v]:
            from repro.graphs.port_graph import PortGraphError

            raise PortGraphError(
                f"node {v} has degree {self.degree[v]}; port {port} is invalid"
            )
        i = self.row_offsets[v] + port
        return (self.neighbor[i], self.entry_port[i])

    def neighbors(self, v: int) -> List[int]:
        """Neighbors of ``v`` in port order (a fresh list slice)."""
        return self.neighbor[self.row_offsets[v]:self.row_offsets[v + 1]]


def bfs_distances_csr(csr: CSRPortGraph, source: int) -> List[int]:
    """Hop distance from ``source`` to every node (``-1`` if unreachable).

    Level-synchronized BFS over the flat arrays: the frontier is a plain
    list scanned with direct index reads, which beats a deque of method
    calls in pure Python.  Visit order matches FIFO BFS exactly (frontiers
    are expanded in insertion order), so any caller deriving parents or
    routes from first-discovery gets identical answers.
    """
    row = csr.row_offsets
    nbr = csr.neighbor
    dist = [-1] * csr.n
    dist[source] = 0
    frontier = [source]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for v in frontier:
            for i in range(row[v], row[v + 1]):
                u = nbr[i]
                if dist[u] < 0:
                    dist[u] = d
                    nxt.append(u)
        frontier = nxt
    return dist


def is_connected_csr(csr: CSRPortGraph) -> bool:
    """Connectivity via flat-array BFS from node 0."""
    if csr.n <= 1:
        return True
    row = csr.row_offsets
    nbr = csr.neighbor
    seen = bytearray(csr.n)
    seen[0] = 1
    count = 1
    frontier = [0]
    while frontier:
        nxt = []
        for v in frontier:
            for i in range(row[v], row[v + 1]):
                u = nbr[i]
                if not seen[u]:
                    seen[u] = 1
                    count += 1
                    nxt.append(u)
        frontier = nxt
    return count == csr.n
