"""Graph traversal utilities on port graphs.

These run on the *simulator side* (they see node identities) and implement
the geometric primitives the experiments and the robots' map-navigation layer
need:

* BFS layers, distances, eccentricity, diameter;
* balls of radius ``i`` (hop-meeting's reach);
* spanning trees and their closed Euler tours — the paper's Phase-2 finder
  walks a spanning tree of its *map* in exactly ``2(n-1)`` moves;
* port-walk execution and shortest port routes, used to convert map paths
  into port sequences a robot can follow.

All walks run over the graph's compiled flat-array form
(:attr:`~repro.graphs.port_graph.PortGraph.csr`): the four CSR lists are
bound locally and indexed directly, so the inner loops touch no tuples of
tuples and make no method calls (see ``docs/PERF.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.graphs.csr import bfs_distances_csr
from repro.graphs.port_graph import PortGraph, PortGraphError

__all__ = [
    "bfs_distances",
    "bfs_layers",
    "distance",
    "eccentricity",
    "diameter",
    "ball",
    "spanning_tree_ports",
    "euler_tour_ports",
    "walk",
    "shortest_port_route",
    "require_connected",
    "pairwise_distances",
]


def require_connected(graph: PortGraph) -> None:
    """Raise :class:`PortGraphError` unless ``graph`` is connected."""
    if not graph.is_connected():
        raise PortGraphError("graph must be connected for the gathering model")


def bfs_distances(graph: PortGraph, source: int) -> List[int]:
    """Hop distance from ``source`` to every node (``-1`` if unreachable)."""
    return bfs_distances_csr(graph.csr, source)


def bfs_layers(graph: PortGraph, source: int) -> List[List[int]]:
    """Nodes grouped by distance from ``source`` (layer 0 = the source)."""
    dist = bfs_distances(graph, source)
    radius = max(dist)
    layers: List[List[int]] = [[] for _ in range(radius + 1)]
    for v, d in enumerate(dist):
        if d >= 0:
            layers[d].append(v)
    return layers


def distance(graph: PortGraph, u: int, v: int) -> int:
    """Hop distance between two nodes."""
    return bfs_distances(graph, u)[v]


def pairwise_distances(graph: PortGraph) -> List[List[int]]:
    """All-pairs hop distances (BFS from every node; fine at repo scale)."""
    csr = graph.csr
    return [bfs_distances_csr(csr, v) for v in graph.nodes()]


def eccentricity(graph: PortGraph, v: int) -> int:
    return max(bfs_distances(graph, v))


def diameter(graph: PortGraph) -> int:
    csr = graph.csr
    return max(max(bfs_distances_csr(csr, v)) for v in graph.nodes())


def ball(graph: PortGraph, center: int, radius: int) -> List[int]:
    """All nodes within ``radius`` hops of ``center`` (center included)."""
    dist = bfs_distances(graph, center)
    return [v for v, d in enumerate(dist) if 0 <= d <= radius]


def spanning_tree_ports(
    graph: PortGraph, root: int
) -> Dict[int, List[Tuple[int, int, int]]]:
    """BFS spanning tree as per-node child lists.

    Returns ``tree[v] = [(child, port_out, port_back), ...]`` in increasing
    ``port_out`` order.  ``port_out`` is the port at ``v`` leading to
    ``child``; ``port_back`` the reverse port.
    """
    csr = graph.csr
    row, nbr, ent = csr.row_offsets, csr.neighbor, csr.entry_port
    tree: Dict[int, List[Tuple[int, int, int]]] = {v: [] for v in graph.nodes()}
    seen = bytearray(graph.n)
    seen[root] = 1
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            base = row[v]
            children = tree[v]
            for i in range(base, row[v + 1]):
                u = nbr[i]
                if not seen[u]:
                    seen[u] = 1
                    children.append((u, i - base, ent[i]))
                    nxt.append(u)
        frontier = nxt
    return tree


def euler_tour_ports(graph: PortGraph, root: int) -> List[int]:
    """Closed Euler tour of a BFS spanning tree, as a port sequence.

    Walking the returned ports from ``root`` visits every node of the
    connected component and returns to ``root`` in exactly ``2(n'-1)`` moves
    where ``n'`` is the component size — the Phase-2 sweep of the paper.
    """
    tree = spanning_tree_ports(graph, root)
    ports: List[int] = []

    stack: List[Tuple[int, int]] = [(root, 0)]
    # iterative DFS to avoid recursion limits on path graphs
    back_ports: List[int] = []
    while stack:
        v, idx = stack.pop()
        children = tree[v]
        if idx < len(children):
            child, p_out, p_back = children[idx]
            stack.append((v, idx + 1))
            ports.append(p_out)
            back_ports.append(p_back)
            stack.append((child, 0))
        else:
            if back_ports:
                # done with v's subtree; return to parent unless v is root
                if stack:
                    ports.append(back_ports.pop())
    return ports


def walk(graph: PortGraph, start: int, ports: Iterable[int]) -> List[int]:
    """Execute a port walk; returns the node sequence including ``start``.

    Raises :class:`PortGraphError` on an invalid port (walks produced by the
    library are always valid; this guards hand-written test walks).
    """
    csr = graph.csr
    row, nbr, deg = csr.row_offsets, csr.neighbor, csr.degree
    v = start
    visited = [v]
    for p in ports:
        if not 0 <= p < deg[v]:
            raise PortGraphError(
                f"node {v} has degree {deg[v]}; port {p} is invalid"
            )
        v = nbr[row[v] + p]
        visited.append(v)
    return visited


def shortest_port_route(graph: PortGraph, source: int, target: int) -> List[int]:
    """Ports of one shortest path from ``source`` to ``target``.

    Deterministic: BFS explores ports in increasing order, so the route is
    the lexicographically-first shortest path.
    """
    if source == target:
        return []
    csr = graph.csr
    row, nbr = csr.row_offsets, csr.neighbor
    n = graph.n
    prev_node = [-1] * n  # parent in the BFS tree
    prev_port = [0] * n  # port at the parent leading here
    seen = bytearray(n)
    seen[source] = 1
    frontier = [source]
    found = False
    while frontier and not found:
        nxt = []
        for v in frontier:
            base = row[v]
            for i in range(base, row[v + 1]):
                u = nbr[i]
                if not seen[u]:
                    seen[u] = 1
                    prev_node[u] = v
                    prev_port[u] = i - base
                    if u == target:
                        found = True
                        break
                    nxt.append(u)
            if found:
                break
        frontier = nxt
    if not found:
        raise PortGraphError(f"{target} unreachable from {source}")
    route: List[int] = []
    v = target
    while v != source:
        route.append(prev_port[v])
        v = prev_node[v]
    route.reverse()
    return route
