"""The seed (pre-fast-path) scheduler, kept verbatim as a reference.

:class:`ReferenceScheduler` preserves the original straightforward
``_step``: it rebuilds the full node-occupancy dict every round, re-sorts
co-located robots, resolves follows with a recursive memoized closure, and
cascades terminations with an iterated fixpoint over all robots.  It is the
*executable specification* of the round semantics.

Two consumers:

* ``tests/test_fastpath_differential.py`` runs it side-by-side with the
  optimized :class:`~repro.sim.scheduler.Scheduler` and asserts bit-identical
  traces, positions and metrics;
* ``benchmarks/bench_simcore.py`` measures the fast path's speedup against
  it, so the optimization claim in ``BENCH_simcore.json`` is a number, not
  an assertion.

It must not be "improved": its value is being the unoptimized original.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim import robot as rb
from repro.sim.actions import (
    Action,
    Observation,
    STAY,
    MOVE,
    SLEEP,
    FOLLOW,
    FOLLOW_ONCE,
    TERMINATE,
)
from repro.sim.errors import ProtocolViolation, SimulationDeadlock
from repro.sim.metrics import card_bits
from repro.sim.robot import RobotState
from repro.sim.scheduler import Scheduler

__all__ = ["ReferenceScheduler"]


class ReferenceScheduler(Scheduler):
    """Seed scheduler: the original ``_step`` and cascade, unoptimized.

    Shares construction, ``positions`` and ``run`` with :class:`Scheduler`,
    but overrides the whole per-round machinery — ``_step``, ``_wake_due``,
    ``_apply_card``, ``_terminate``, the cascade and the ``all_*`` queries —
    with the seed versions, so benchmark comparisons measure the true
    pre-fast-path cost (the fast path's incremental caches initialized by
    ``__init__`` simply go unused here).
    """

    #: RobotState attributes stay authoritative for the whole run; the SoA
    #: arrays the shared ``__init__`` builds are never written, so shared
    #: queries (``positions``, ``run``'s final sync) must not trust them.
    _uses_soa = False

    # -- seed queries (linear scans; the fast path keeps counters) ------
    def all_terminated(self) -> bool:
        """Linear scan: has every robot terminated?"""
        return all(r.status == rb.TERMINATED for r in self.robots)

    def all_gathered(self) -> bool:
        """Linear scan: are all robots on one node?"""
        nodes = {r.node for r in self.robots}
        return len(nodes) == 1

    def _next_wake_round(self) -> Optional[int]:
        """Seed scan over all robots (the fast path reads its wake-schedule
        heap instead, which seed sleep/follow branches never feed)."""
        best: Optional[int] = None
        for r in self.robots:
            if r.status in (rb.SLEEPING, rb.FOLLOWING) and r.wake_round is not None:
                if best is None or r.wake_round < best:
                    best = r.wake_round
        return best

    def _wake_due(self) -> List[RobotState]:
        """Apply due wake-ups; return the robots active this round."""
        active = []
        for r in self.robots:
            if r.status == rb.SLEEPING:
                due = r.wake_round is not None and self.round >= r.wake_round
                if due or r.woken_early:
                    r.status = rb.ACTIVE
                    r.woken_early = False
                    r.wake_round = None
                    r.wake_on_meet = False
                    if self.trace is not None:
                        self.trace.record(self.round, "wake", r.label, "due" if due else "meet")
            elif r.status == rb.FOLLOWING:
                if r.wake_round is not None and self.round >= r.wake_round:
                    r.status = rb.ACTIVE
                    r.leader_label = None
                    r.wake_round = None
                if r.woken_early:
                    # set when the leader terminated with on_leader_terminate="wake"
                    r.status = rb.ACTIVE
                    r.leader_label = None
                    r.woken_early = False
                    r.wake_round = None
            if r.status == rb.ACTIVE:
                active.append(r)
        return active

    def _apply_card(self, r: RobotState, action: Action) -> None:
        if action.card is not None:
            card = dict(action.card)
            card["id"] = r.label  # the label is not forgeable
            r.card = card
            bits = card_bits(card)
            if bits > self.metrics.max_card_bits:
                self.metrics.max_card_bits = bits

    def _terminate(self, r: RobotState) -> None:
        if r.status == rb.TERMINATED:
            return
        r.status = rb.TERMINATED
        r.terminated_round = self.round
        if not self.all_gathered():
            self.metrics.terminations_all_gathered = False
        if self.trace is not None:
            self.trace.record(self.round, "terminate", r.label, None)
        try:
            r.gen.close()
        except RuntimeError:  # pragma: no cover - generator refusing to close
            pass

    def _step(self) -> None:
        active = self._wake_due()

        if not active:
            nxt = self._next_wake_round()
            if nxt is None:
                statuses = ", ".join(
                    f"{r.label}:{rb.STATUS_NAMES[r.status]}" for r in self.robots
                )
                raise SimulationDeadlock(
                    f"round {self.round}: no robot can ever act again ({statuses})"
                )
            if self.trace is not None:
                self.trace.record(self.round, "jump", None, nxt)
            self.round = max(self.round + 1, nxt)
            return

        # --- observation & compute -----------------------------------
        occupants: Dict[int, List[RobotState]] = {}
        for r in self.robots:
            occupants.setdefault(r.node, []).append(r)
        cards_at: Dict[int, Tuple[dict, ...]] = {
            node: tuple(x.card for x in sorted(occ, key=lambda s: s.label))
            for node, occ in occupants.items()
        }

        movers: List[Tuple[RobotState, int]] = []  # (robot, port)
        followers_once: List[RobotState] = []
        terminators: List[RobotState] = []

        for r in active:  # already in label order
            obs = Observation(
                self.round,
                self.graph.degree(r.node),
                r.entry_port,
                cards_at[r.node],
            )
            r.active_rounds += 1
            try:
                action = r.gen.send(obs)
            except StopIteration:
                raise ProtocolViolation(
                    f"robot {r.label}: program returned without terminating"
                ) from None
            if action is None:
                raise ProtocolViolation(f"robot {r.label}: yielded None instead of an Action")
            self._apply_card(r, action)
            if action.note and self.trace is not None:
                self.trace.record(self.round, "note", r.label, action.note)

            kind = action.kind
            if kind == STAY:
                pass
            elif kind == MOVE:
                # (the seed's original expression, kept verbatim; the fast
                # path reorders it so None is rejected before range-checking)
                if not (0 <= (action.port or 0) < self.graph.degree(r.node)) or action.port is None:
                    raise ProtocolViolation(
                        f"robot {r.label}: invalid port {action.port} on a degree-"
                        f"{self.graph.degree(r.node)} node"
                    )
                movers.append((r, action.port))
            elif kind == SLEEP:
                if action.wake_round is not None and action.wake_round <= self.round:
                    raise ProtocolViolation(
                        f"robot {r.label}: sleep until round {action.wake_round} "
                        f"is not in the future (now {self.round})"
                    )
                if action.wake_round is None and not action.wake_on_meet:
                    raise ProtocolViolation(
                        f"robot {r.label}: unwakeable forever-sleep"
                    )
                r.status = rb.SLEEPING
                r.wake_round = action.wake_round
                r.wake_on_meet = action.wake_on_meet
                if self.trace is not None:
                    self.trace.record(self.round, "sleep", r.label, action.wake_round)
            elif kind == FOLLOW:
                self._check_follow_target(r, action.target)
                r.status = rb.FOLLOWING
                r.leader_label = action.target
                r.wake_round = action.wake_round
                r.on_leader_terminate = action.on_leader_terminate
                if self.trace is not None:
                    self.trace.record(self.round, "follow", r.label, action.target)
            elif kind == FOLLOW_ONCE:
                self._check_follow_target(r, action.target)
                r.leader_label = action.target
                followers_once.append(r)
            elif kind == TERMINATE:
                terminators.append(r)
            else:  # pragma: no cover - factory methods make this unreachable
                raise ProtocolViolation(f"robot {r.label}: unknown action kind {kind}")

        # --- resolve follows ------------------------------------------
        # resolved move per label: port or None (stay), computed lazily with
        # memoization over the follow chains.
        resolved: Dict[int, Optional[int]] = {}
        once_labels = {r.label for r in followers_once}
        for r, port in movers:
            resolved[r.label] = port
        for r in self.robots:
            if r.status == rb.TERMINATED:
                resolved.setdefault(r.label, None)

        def resolve(label: int, chain: set) -> Optional[int]:
            if label in resolved:
                return resolved[label]
            st = self.by_label[label]
            if st.status == rb.FOLLOWING or label in once_labels:
                if label in chain:  # follow cycle: nobody moves
                    resolved[label] = None
                    return None
                chain.add(label)
                leader = st.leader_label
                if leader is None or leader not in self.by_label:
                    resolved[label] = None
                    return None
                resolved[label] = resolve(leader, chain)
                return resolved[label]
            resolved[label] = None
            return None

        moving: List[Tuple[RobotState, int]] = list(movers)
        for r in self.robots:
            if r.status == rb.FOLLOWING or r.label in once_labels:
                port = resolve(r.label, set())
                if port is not None:
                    # follower must share the leader's node to take the same port
                    moving.append((r, port))

        # one-round follows release leadership after resolution
        for r in followers_once:
            r.leader_label = None

        # --- apply moves simultaneously --------------------------------
        arrivals: Dict[int, int] = {}
        for r, port in moving:
            new_node, entry = self.graph.traverse(r.node, port)
            r.node = new_node
            r.entry_port = entry
            r.moves += 1
            arrivals[new_node] = arrivals.get(new_node, 0) + 1
            if self.trace is not None:
                self.trace.record(self.round, "move", r.label, (port, entry))

        # --- wake sleepers on arrivals ---------------------------------
        if arrivals:
            for r in self.robots:
                if (
                    r.status == rb.SLEEPING
                    and r.wake_on_meet
                    and r.node in arrivals
                ):
                    r.woken_early = True

        # --- terminations + cascade ------------------------------------
        if terminators:
            for r in terminators:
                self._terminate(r)
            self._cascade_terminations()

        # --- bookkeeping ------------------------------------------------
        if self.metrics.first_gather_round is None and self.all_gathered():
            self.metrics.first_gather_round = self.round
        if self.replay is not None:
            self.replay.snapshot(self.round, self.positions())
        self.metrics.rounds_executed += 1
        self.round += 1

    def _cascade_terminations(self) -> None:
        """Followers whose (transitive) leader terminated react per their mode."""
        changed = True
        while changed:
            changed = False
            for r in self.robots:
                if r.status != rb.FOLLOWING or r.leader_label is None:
                    continue
                leader = self.by_label.get(r.leader_label)
                if leader is None or leader.status != rb.TERMINATED:
                    continue
                if r.on_leader_terminate == "terminate":
                    self._terminate(r)
                    changed = True
                else:  # "wake"
                    r.woken_early = True
