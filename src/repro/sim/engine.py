"""The engine protocol: one simulation contract, N interchangeable backends.

Four execution paths grew up in this repository — the seed
:class:`~repro.sim.reference.ReferenceScheduler` (the executable spec), the
incremental general path, the struct-of-arrays hot loop (both inside
:class:`~repro.sim.scheduler.Scheduler`), and the lockstep replica engine
(:class:`~repro.sim.batch.ReplicaBatch`).  This module defines the contract
they all satisfy, so call sites select a backend by *name* instead of
hard-coding a class:

* :class:`EngineRequest` — everything one run needs: the graph, the robot
  fleet, and the optional instrumentation (trace / replay / activation).
* :class:`EngineCapabilities` — what a backend honestly supports.  A
  request asking for a feature the backend lacks raises a typed
  :class:`UnsupportedFeature` at construction time — never a silent
  fallback, never silently ignored instrumentation.
* :class:`Engine` — construct from a request, then either drive it
  coarsely (:meth:`Engine.run`) or round-by-round (:meth:`Engine.step` /
  :meth:`Engine.sync_state` / :meth:`Engine.finalize`).

Backends register by name in :mod:`repro.sim.engines`; the conformance
harness (``tests/test_engine_conformance.py``) runs every registered
backend against the reference oracle and asserts the capability flags are
honest.  See ``docs/ENGINES.md`` for the full contract and how to add a
backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Dict, Sequence

from repro.sim.errors import SimulationError
from repro.sim.robot import RobotSpec

if TYPE_CHECKING:  # pragma: no cover — annotation-only; avoids an import cycle
    from repro.sim.world import RunResult

__all__ = [
    "Engine",
    "EngineCapabilities",
    "EngineRequest",
    "UnsupportedFeature",
]


class UnsupportedFeature(SimulationError):
    """A request asked an engine for a feature it does not implement.

    Raised at engine *construction*, so an unsupported combination fails
    loudly before a single round executes — a backend silently ignoring a
    trace recorder or an activation model would report results for an
    experiment that never ran.
    """

    def __init__(self, engine: str, feature: str):
        super().__init__(
            f"engine {engine!r} does not support {feature} "
            f"(see repro.sim.engines.list_engines() and docs/ENGINES.md)"
        )
        self.engine = engine
        self.feature = feature


@dataclass(frozen=True)
class EngineCapabilities:
    """Honest feature flags for one backend.

    ``supports_batch`` — the backend can run many seed-replicas in lockstep
    (the runtime routes ``group_into_batches`` output through it).
    ``supports_activation`` — non-synchronous activation models.
    ``supports_tracing`` — event tracing (:class:`~repro.sim.trace.
    TraceRecorder`).
    ``supports_replay`` — per-round position snapshots
    (:class:`~repro.sim.replay.ReplayRecorder`).
    """

    supports_batch: bool = False
    supports_activation: bool = False
    supports_tracing: bool = False
    supports_replay: bool = False


@dataclass
class EngineRequest:
    """One simulation, fully described: what every backend consumes.

    The fields mirror ``World.run``'s surface — the graph and fleet come
    from the :class:`~repro.sim.world.World`, the rest are per-run options.
    Validation (connectivity, label uniqueness) stays in ``World`` /
    ``Scheduler``; the request is a plain carrier.
    """

    graph: Any
    robots: Sequence[RobotSpec]
    strict: bool = False
    trace: Any = None
    replay: Any = None
    activation: Any = None


class Engine(ABC):
    """One simulation backend driving an :class:`EngineRequest`.

    Subclasses declare a unique :attr:`name` and honest
    :attr:`capabilities`, and implement the stepwise protocol.  The
    constructor enforces capabilities against the request; backends never
    see instrumentation they did not claim.

    The stepwise protocol: :meth:`step` advances the simulation by at least
    one round (a backend may advance further — the replica engine retires
    whole slices), :attr:`done` reports completion, :meth:`sync_state`
    makes label-level queries (:meth:`positions`) current mid-run, and
    :meth:`finalize` packages the finished run.  :meth:`run` drives the
    whole thing and is what ``World.run`` calls.
    """

    #: Registry key; unique across registered backends.
    name: ClassVar[str] = "abstract"
    capabilities: ClassVar[EngineCapabilities] = EngineCapabilities()

    def __init__(self, request: EngineRequest):
        caps = type(self).capabilities
        if request.trace is not None and not caps.supports_tracing:
            raise UnsupportedFeature(type(self).name, "event tracing (trace=...)")
        if request.replay is not None and not caps.supports_replay:
            raise UnsupportedFeature(type(self).name, "replay recording (replay=...)")
        if request.activation is not None and not caps.supports_activation:
            raise UnsupportedFeature(
                type(self).name, "activation models (activation=...)"
            )
        self.request = request

    # -- stepwise protocol ---------------------------------------------
    @property
    @abstractmethod
    def done(self) -> bool:
        """Every robot terminated (the run can be finalized)."""

    @property
    @abstractmethod
    def rounds(self) -> int:
        """Simulated rounds elapsed so far."""

    @abstractmethod
    def step(self) -> None:
        """Advance the simulation by at least one round."""

    @abstractmethod
    def sync_state(self) -> None:
        """Make label-level state current (cheap when already current).

        Backends with internal array state flush it to their queryable
        form; afterwards :meth:`positions` reflects the last executed
        round.
        """

    @abstractmethod
    def positions(self) -> Dict[int, int]:
        """label -> node for every robot; call :meth:`sync_state` first
        when stepping manually."""

    @abstractmethod
    def finalize(self) -> "RunResult":
        """Package the completed run (see :func:`repro.sim.world.
        package_result`); call once, after :attr:`done` (or a
        ``stop_on_gather`` early exit)."""

    # -- coarse driver --------------------------------------------------
    @abstractmethod
    def run(self, max_rounds: int, stop_on_gather: bool = False) -> "RunResult":
        """Drive the request to completion and return its result.

        Semantics are those of ``Scheduler.run`` + ``package_result``: the
        same ``stop_on_gather`` early exit, the same
        :class:`~repro.sim.errors.SimulationTimeout` past ``max_rounds``,
        bit-identical results across conforming backends.
        """
