"""Simulator exceptions."""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "SimulationTimeout",
    "SimulationDeadlock",
    "ProtocolViolation",
]


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class SimulationTimeout(SimulationError):
    """The run exceeded ``max_rounds`` without every robot terminating.

    For the deterministic algorithms in this library a timeout is always a
    bug (their schedules are bounded); the exception carries the round count
    and per-robot status to aid debugging.
    """

    def __init__(self, round_: int, detail: str = ""):
        super().__init__(f"simulation exceeded {round_} rounds{': ' + detail if detail else ''}")
        self.round = round_


class SimulationDeadlock(SimulationError):
    """No robot can ever act again, yet not all robots have terminated.

    Happens when every non-terminated robot sleeps forever with no possible
    wake-up (no movers left, no finite wake round).  Deterministic gathering
    algorithms must never reach this state; the scheduler surfaces it rather
    than spinning.
    """


class ProtocolViolation(SimulationError):
    """A robot program broke the action protocol.

    Examples: moving through an out-of-range port, following a robot that is
    not co-located, yielding after terminating, or sleeping into the past.
    """
