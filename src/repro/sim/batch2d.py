"""Replica-major batch engine: whole replicas retired by array kernels.

:class:`~repro.sim.batch.ReplicaBatch` (PR 5) runs R replicas in lockstep
but still activates every robot by stepping its Python generator — the
per-robot interpreter round-trip is the floor it cannot break.  This
module inverts the layout: for fleets that declare a
:class:`~repro.sim.vector.VectorProgram`, the whole R×k hot state
(positions, CSR slots, wake offsets) lives in 2D NumPy arrays and entire
*runs* execute as array kernels over the single shared CSR — one
``np.take`` advances every robot of every hot replica one round.

Hot/cold split
--------------

:class:`Replica2DBatch` subclasses :class:`ReplicaBatch` and overrides the
``_vector_phase`` hook, which runs once before the lockstep loop:

1. **Hot candidates.**  A replica qualifies only if every robot in its
   fleet shares one :class:`VectorProgram`, its scheduler is pristine
   (round 0, every robot active, no wakes pending), and the run is a plain
   run-to-completion (``stop_on_gather`` falls back wholesale — the early
   exit is round-accurate only in the scalar drive).
2. **Kernel vetting.**  Candidates group by ``(kernel, shared, k)``; the
   kernel compiles one plan per graph (memoized process-wide) and then
   vets each replica's scalar params against ``max_rounds``.  *Any* doubt
   — irregular graph, timeout-bound overrun, non-integer param — declines
   the replica.
3. **Array execution.**  Each surviving group executes as one batch of 2D
   kernels; the kernel returns per-replica
   :class:`~repro.sim.vector.ReplicaFinal` end states.
4. **Write-back + scalar retirement.**  The final state is written onto
   the replica's pristine scheduler (arrays, counters, statuses) and the
   replica retires through the ordinary ``_finalize`` →
   ``package_result`` path — the packaged result is produced by the exact
   code a scalar run uses, from the exact state a scalar run would hold.
   The robots' generators are never sent an observation; they are simply
   closed, still suspended at their priming yield.

Everything that does not qualify — cold regimes (mid-round follows,
meet-sleeps, traced or activation-model rounds never reach this engine;
the runtime only batches clean specs, but scripted sleeps, card publishes,
and irregular graphs do), construction failures, kernel declines — stays
in ``live`` untouched and runs the inherited lockstep scalar drive from
round 0.  Bit-identity with ``batch-list``/``batch-numpy`` (and the error
parity of timeouts, bad ports, and deadlocks) is therefore structural:
the scalar path is not an approximation of the hot path, it *is* the
semantics, and the hot path must prove it can reproduce it before it is
allowed to run (``tests/test_batch2d.py`` pins both sides).

Instrumentation: :attr:`Replica2DBatch.vector_stats` counts replicas
retired by kernels vs. fallen back, for benchmarks and tests;
:class:`~repro.sim.batch.BatchSummary` stays backend-agnostic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.graphs.port_graph import PortGraph
from repro.sim.batch import ReplicaBatch
from repro.sim.robot import TERMINATED, RobotSpec
from repro.sim.vector import ReplicaFinal, VectorProgram, plan_for

__all__ = ["Replica2DBatch"]


class Replica2DBatch(ReplicaBatch):
    """R replicas with a replica-major NumPy front-run (see module docs).

    Construction is exactly :class:`ReplicaBatch`'s (same per-replica
    scheduler isolation, same views) plus one pass over the fleets to
    detect shared :class:`VectorProgram` factories.  ``backend`` is pinned
    to ``"numpy2d"`` — use :func:`repro.sim.batch.make_replica_batch` to
    select engines by name.
    """

    def __init__(
        self,
        graph: PortGraph,
        fleets: Sequence[Sequence[RobotSpec]],
        strict: bool = False,
    ):
        fleets = [list(specs) for specs in fleets]
        super().__init__(graph, fleets, strict=strict, backend="numpy2d")
        self._programs: List[VectorProgram | None] = []
        for specs in fleets:
            prog = specs[0].factory if specs else None
            if isinstance(prog, VectorProgram) and all(
                s.factory is prog for s in specs
            ):
                self._programs.append(prog)
            else:
                self._programs.append(None)
        #: Hot/cold accounting for the last ``run``: replicas retired by a
        #: kernel vs. replicas that declared a VectorProgram but ran scalar.
        self.vector_stats: Dict[str, int] = {"vectorized": 0, "fallbacks": 0}

    # ------------------------------------------------------------------
    def _vector_phase(
        self, live, rounds_arr, executed_arr, moves_arr, error_arr,
        max_rounds: int, stop_on_gather: bool,
    ) -> List[int]:
        """Retire hot replicas through array kernels; return the rest.

        Falls back — per replica, silently, and before any state is
        touched — whenever exactness cannot be proven; see the module
        docstring for the full contract.
        """
        stats = {"vectorized": 0, "fallbacks": 0}
        self.vector_stats = stats
        programs = self._programs
        scheds = self.scheds
        if stop_on_gather:
            # The early-exit run stops mid-schedule; only the scalar drive
            # tracks the exact gather round interleaved with cold actions.
            stats["fallbacks"] = sum(1 for j in live if programs[j] is not None)
            return live

        remaining: List[int] = []
        groups: Dict[Tuple[object, Tuple[object, ...], int], List[int]] = {}
        for j in live:
            prog = programs[j]
            sched = scheds[j]
            if (
                prog is None
                or sched is None
                or sched.round != 0
                or not sched._soa_auth
                or sched._alive != sched._nrob
                or len(sched._active) != sched._nrob
                or sched._wake_heap
                or sched._woken
            ):
                if prog is not None:
                    stats["fallbacks"] += 1
                remaining.append(j)
                continue
            groups.setdefault((prog.kernel, prog.shared, sched._nrob), []).append(j)

        for (kernel, shared, _k), members in groups.items():
            hot: List[int] = []
            try:
                plan = plan_for(self.graph, kernel, shared)
            except Exception:
                plan = None
            if plan is None:
                stats["fallbacks"] += len(members)
                remaining.extend(members)
                continue
            for j in members:
                if plan.accepts(programs[j].params, max_rounds):
                    hot.append(j)
                else:
                    stats["fallbacks"] += 1
                    remaining.append(j)
            if not hot:
                continue
            try:
                finals: List[ReplicaFinal] = plan.execute(
                    [scheds[j]._pos for j in hot],
                    [scheds[j]._labels for j in hot],
                    [programs[j].params for j in hot],
                )
            except Exception:
                # execute() is pure (no scheduler was touched), so the whole
                # group can still run scalar, bit-identically.
                stats["fallbacks"] += len(hot)
                remaining.extend(hot)
                continue
            for j, final in zip(hot, finals):
                self._write_back(j, final)
                self._retire(j, rounds_arr, executed_arr, moves_arr)
                stats["vectorized"] += 1

        remaining.sort()
        return remaining

    # ------------------------------------------------------------------
    def _write_back(self, j: int, final: ReplicaFinal) -> None:
        """Install a kernel's end state onto replica ``j``'s scheduler.

        The scheduler is pristine (round 0, post-priming); after this call
        it is indistinguishable from one that ran the replica to
        completion through ``Scheduler.run``, so the inherited ``_retire``
        (``_finalize`` + ``package_result``) packages the result through
        the unmodified scalar path.
        """
        sched = self.scheds[j]
        k = sched._nrob
        sched._pos[:] = final.pos
        sched._entry[:] = final.entry
        sched._moves[:] = final.moves
        sched._ar[:] = final.active_rounds
        sched._ar_pending = 0
        ps = set(final.pos)
        sched._posset = ps
        sched._occupied = len(ps)
        sched.round = final.final_round
        m = sched.metrics
        m.rounds_executed += final.rounds_executed
        if final.first_gather_round is not None:
            m.first_gather_round = final.first_gather_round
        if not final.terminations_all_gathered:
            m.terminations_all_gathered = False
        for r, term_round in zip(sched.robots, final.terminated_rounds):
            r.status = TERMINATED
            r.terminated_round = term_round
            try:
                r.gen.close()
            except RuntimeError:  # pragma: no cover - generator refusing
                pass
        sched._active.clear()
        sched._dormant = k
        sched._alive = 0
