"""The engine registry: named backends behind the :class:`Engine` protocol.

Every execution path in the repository registers here under a stable name:

============= ========================================================== =====
name          implementation                                             notes
============= ========================================================== =====
reference     :class:`~repro.sim.reference.ReferenceScheduler`           the executable spec; the conformance oracle
incremental   ``Scheduler`` pinned to the general path (PR-2 regime)     incremental occupancy/card caches, no SoA rounds
soa           :class:`~repro.sim.scheduler.Scheduler` (default)          dual-regime: SoA hot loop + general fallback
batch-list    :class:`~repro.sim.batch.ReplicaBatch` (list backend)      lockstep replicas, pure-Python bookkeeping
batch-numpy   :class:`~repro.sim.batch.ReplicaBatch` (numpy backend)     lockstep replicas, vectorized bookkeeping
batch-numpy2d :class:`~repro.sim.batch2d.Replica2DBatch`                 replica-major 2D kernels + scalar fallback
============= ========================================================== =====

Call sites name a backend (``World.run(engine="soa")``, ``execute(specs,
engine="batch-numpy")``, ``--engine`` on the CLI) and the factory here
resolves it; :func:`get_engine` raises a ``ValueError`` listing the
registered names for typos.  The ``batch-numpy*`` backends register only
when numpy is importable, so :func:`list_engines` always reflects what can
actually run.

The conformance harness (``tests/test_engine_conformance.py``) runs every
registered backend against the ``reference`` oracle; see ``docs/ENGINES.md``
for the contract and for adding a backend.
"""

from __future__ import annotations

import builtins
from typing import Dict, List, Optional, Type

from repro.sim import errors as _errors
from repro.sim.batch import HAVE_NUMPY, ReplicaOutcome, make_replica_batch
from repro.sim.engine import Engine, EngineCapabilities, EngineRequest
from repro.sim.reference import ReferenceScheduler
from repro.sim.scheduler import Scheduler
from repro.sim.world import DEFAULT_MAX_ROUNDS, package_result

__all__ = [
    "DEFAULT_ENGINE",
    "IncrementalScheduler",
    "get_engine",
    "list_engines",
    "register_engine",
    "unregister_engine",
]

#: The backend ``World.run`` uses when no engine is named — today's default
#: scalar path, so defaults stay bit- and cache-identical to history.
DEFAULT_ENGINE = "soa"

_REGISTRY: Dict[str, Type[Engine]] = {}


def register_engine(cls: Type[Engine], *, replace: bool = False) -> Type[Engine]:
    """Register an :class:`Engine` subclass under ``cls.name``.

    Double registration is rejected (pass ``replace=True`` to swap a
    backend deliberately, e.g. a test double); the name must be a
    non-empty string distinct from the abstract default.
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "abstract":
        raise ValueError(f"engine class {cls!r} needs a concrete 'name' attribute")
    if not isinstance(getattr(cls, "capabilities", None), EngineCapabilities):
        raise ValueError(f"engine {name!r} needs an EngineCapabilities declaration")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"engine {name!r} is already registered "
            f"(pass replace=True to substitute it)"
        )
    _REGISTRY[name] = cls
    return cls


def unregister_engine(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent; test hygiene)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> Type[Engine]:
    """The registered engine class for ``name``.

    Unknown names raise a ``ValueError`` listing every registered backend —
    the one place a typo'd ``--engine``/``engine=`` surfaces.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: {list_engines()}"
        ) from None


def list_engines() -> List[str]:
    """Registered backend names, sorted (stable across calls)."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Scheduler-backed backends (scalar paths)
# ---------------------------------------------------------------------------


class IncrementalScheduler(Scheduler):
    """``Scheduler`` pinned to the incremental general path (PR-2 regime).

    ``_uses_soa = False`` makes the :class:`~repro.sim.robot.RobotState`
    facades authoritative from construction; ``_soa_enabled = False`` keeps
    ``_step`` out of the SoA hot loop for every round.  Semantics are those
    of the full scheduler — this class only forecloses the fast regime.
    """

    _uses_soa = False
    _soa_enabled = False


class _SchedulerEngine(Engine):
    """Adapter: one :class:`Scheduler` (sub)class as an :class:`Engine`.

    ``run`` delegates to ``Scheduler.run`` verbatim — same loop, same
    ``stop_on_gather`` early exit, same timeout — so adapter dispatch can
    never perturb results.
    """

    scheduler_cls: type = Scheduler

    def __init__(self, request: EngineRequest):
        super().__init__(request)
        self._sched = type(self).scheduler_cls(
            request.graph,
            list(request.robots),
            trace=request.trace,
            strict=request.strict,
            replay=request.replay,
            activation=request.activation,
        )

    @property
    def done(self) -> bool:
        return self._sched.all_terminated()

    @property
    def rounds(self) -> int:
        return self._sched.round

    def step(self) -> None:
        self._sched._step()

    def sync_state(self) -> None:
        if self._sched._soa_auth:
            self._sched._sync_states()

    def positions(self) -> Dict[int, int]:
        return self._sched.positions()

    def finalize(self):
        self._sched._finalize()
        return package_result(self._sched)

    def run(self, max_rounds: int, stop_on_gather: bool = False):
        self._sched.run(max_rounds=max_rounds, stop_on_gather=stop_on_gather)
        return package_result(self._sched)


@register_engine
class ReferenceEngine(_SchedulerEngine):
    """The seed scheduler, verbatim — the oracle every backend must match.

    No activation support: the seed predates activation models and must not
    be improved (tests needing activation on the reference path use an
    explicit shim, never a silent ignore).
    """

    name = "reference"
    capabilities = EngineCapabilities(
        supports_tracing=True, supports_replay=True
    )
    scheduler_cls = ReferenceScheduler


@register_engine
class IncrementalEngine(_SchedulerEngine):
    """The incremental general path (PR-2), pinned for every round."""

    name = "incremental"
    capabilities = EngineCapabilities(
        supports_activation=True, supports_tracing=True, supports_replay=True
    )
    scheduler_cls = IncrementalScheduler


@register_engine
class SoAEngine(_SchedulerEngine):
    """The default dual-regime scheduler (SoA hot loop + general fallback)."""

    name = "soa"
    capabilities = EngineCapabilities(
        supports_activation=True, supports_tracing=True, supports_replay=True
    )
    scheduler_cls = Scheduler


# ---------------------------------------------------------------------------
# Replica-batch backends
# ---------------------------------------------------------------------------


def _rebuild_error(outcome: ReplicaOutcome) -> Exception:
    """Reconstruct a replica's isolated failure as a raisable exception.

    :class:`~repro.sim.batch.ReplicaBatch` stores failures as
    ``(str(exc), type(exc).__name__)`` — exactly what the scalar runtime
    records.  Single-run engine semantics require *raising*; rebuilding by
    type name + message keeps ``str``/``type`` identical to the scalar
    path without re-running failed constructors.
    """
    exc_type = getattr(_errors, outcome.error_type or "", None)
    if exc_type is None:
        exc_type = getattr(builtins, outcome.error_type or "", None)
    if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
        exc_type = _errors.SimulationError
    exc = exc_type.__new__(exc_type)
    Exception.__init__(exc, outcome.error or "")
    return exc


class _BatchEngine(Engine):
    """Adapter: :class:`ReplicaBatch` as a (coarse-stepped) single-run engine.

    The replica engine's unit of progress is a whole lockstep slice, so
    :meth:`step` runs the request to completion on first call (the protocol
    allows steps of more than one round).  Multi-replica use goes through
    the runtime (``execute(engine="batch-...")`` groups seed-replicas);
    here one fleet of size R=1 runs with scalar-identical results.
    """

    batch_backend: str = "list"

    def __init__(self, request: EngineRequest):
        super().__init__(request)
        self._batch = make_replica_batch(
            request.graph,
            [list(request.robots)],
            strict=request.strict,
            backend=type(self).batch_backend,
        )
        self._result = None

    @property
    def done(self) -> bool:
        return self._result is not None

    @property
    def rounds(self) -> int:
        if self._result is not None:
            return self._result.metrics.rounds
        return 0

    def step(self) -> None:
        # The replica engine's smallest externally observable unit of
        # progress is the whole run (replicas retire inside fused slices),
        # so one "step" drives it to completion under the default budget.
        if self._result is None:
            self.run(DEFAULT_MAX_ROUNDS)

    def sync_state(self) -> None:
        return None

    def positions(self) -> Dict[int, int]:
        if self._result is None:
            return {r.label: r.start for r in self.request.robots}
        return dict(self._result.positions)

    def finalize(self):
        if self._result is None:
            raise RuntimeError("finalize() before run() on a batch engine")
        return self._result

    def run(self, max_rounds: int, stop_on_gather: bool = False):
        outcome = self._batch.run(
            max_rounds=max_rounds, stop_on_gather=stop_on_gather
        )[0]
        if not outcome.ok:
            raise _rebuild_error(outcome)
        self._result = outcome.result
        return self._result


@register_engine
class BatchListEngine(_BatchEngine):
    """Lockstep replica engine, pure-Python bookkeeping (always available)."""

    name = "batch-list"
    capabilities = EngineCapabilities(supports_batch=True)
    batch_backend = "list"


if HAVE_NUMPY:

    @register_engine
    class BatchNumpyEngine(_BatchEngine):
        """Lockstep replica engine, numpy bookkeeping (bit-identical to list)."""

        name = "batch-numpy"
        capabilities = EngineCapabilities(supports_batch=True)
        batch_backend = "numpy"

    @register_engine
    class BatchNumpy2DEngine(_BatchEngine):
        """Replica-major 2D engine: array kernels for hot replicas, the
        lockstep scalar drive for everything else (bit-identical either
        way; see :mod:`repro.sim.batch2d`)."""

        name = "batch-numpy2d"
        capabilities = EngineCapabilities(supports_batch=True)
        batch_backend = "numpy2d"


def resolve_engine(name: Optional[str]) -> Type[Engine]:
    """The engine class for ``name``, defaulting to :data:`DEFAULT_ENGINE`."""
    return get_engine(name if name is not None else DEFAULT_ENGINE)
