"""The synchronous round scheduler.

Executes the Face-to-Face model round by round:

1. **Wake-ups** — sleepers whose wake round arrived (or who were woken early
   by an arrival) and persistent followers whose ``until_round`` arrived
   become active.
2. **Fast-forward** — if *no* robot is active, nothing can change until the
   earliest scheduled wake round; simulated time jumps there in one step.
   (Followers of sleeping leaders cannot move either, so the jump is safe.)
3. **Observation & compute** — each active robot receives an
   :class:`~repro.sim.actions.Observation` (cards of co-located robots as of
   the start of the round) and yields an :class:`~repro.sim.actions.Action`.
   Robots are processed in increasing label order; determinism is total.
4. **Move resolution** — explicit moves are taken as-is; follows resolve
   transitively to the leader's move this round (cycles resolve to "stay",
   which cannot happen for the algorithms in this library but keeps the
   scheduler total).
5. **Simultaneous application** — all moves happen at once; entry ports are
   recorded; sleeping robots with ``wake_on_meet`` on nodes that received an
   arrival are flagged to wake next round.
6. **Terminations** — terminate actions are applied, then cascaded to
   persistent followers with ``on_leader_terminate="terminate"``
   (transitively, the paper's Lemma 4).

The scheduler never exposes node identities to programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.port_graph import PortGraph
from repro.sim import robot as rb
from repro.sim.actions import (
    Action,
    Observation,
    STAY,
    MOVE,
    SLEEP,
    FOLLOW,
    FOLLOW_ONCE,
    TERMINATE,
)
from repro.sim.errors import ProtocolViolation, SimulationDeadlock, SimulationTimeout
from repro.sim.metrics import RunMetrics, card_bits
from repro.sim.robot import RobotSpec, RobotState
from repro.sim.trace import TraceRecorder

__all__ = ["Scheduler"]


class Scheduler:
    """Drives a set of robot programs on a port graph until all terminate."""

    def __init__(
        self,
        graph: PortGraph,
        specs: List[RobotSpec],
        trace: Optional[TraceRecorder] = None,
        strict: bool = False,
        replay=None,
    ):
        labels = [s.label for s in specs]
        if len(set(labels)) != len(labels):
            raise ValueError("robot labels must be unique")
        if any(l < 1 for l in labels):
            raise ValueError("robot labels must be >= 1 (the paper's ID range starts at 1)")
        for s in specs:
            if not (0 <= s.start < graph.n):
                raise ValueError(f"start node {s.start} outside graph")

        self.graph = graph
        self.trace = trace
        self.strict = strict
        self.replay = replay
        # Robots sorted by label: processing order == label order everywhere.
        self.robots: List[RobotState] = [
            RobotState(rid, spec, graph.n)
            for rid, spec in enumerate(sorted(specs, key=lambda s: s.label))
        ]
        self.by_label: Dict[int, RobotState] = {r.label: r for r in self.robots}
        self.round = 0
        self.metrics = RunMetrics()
        self._prime()

    # ------------------------------------------------------------------
    def _prime(self) -> None:
        """Advance every program to its bootstrap ``yield``."""
        for r in self.robots:
            first = next(r.gen)
            if first is not None:
                raise ProtocolViolation(
                    f"robot {r.label}: program must start with a bare 'yield' "
                    f"(got {first!r} before any observation)"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def positions(self) -> Dict[int, int]:
        """label -> node, for every robot (terminated included)."""
        return {r.label: r.node for r in self.robots}

    def all_terminated(self) -> bool:
        return all(r.status == rb.TERMINATED for r in self.robots)

    def all_gathered(self) -> bool:
        nodes = {r.node for r in self.robots}
        return len(nodes) == 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_rounds: int, stop_on_gather: bool = False) -> RunMetrics:
        """Run until every robot terminates (or ``max_rounds`` elapses).

        ``stop_on_gather=True`` additionally stops as soon as all robots are
        co-located — the measurement hook for detection-free baselines, which
        otherwise never halt.
        """
        while not self.all_terminated():
            if stop_on_gather and self.metrics.first_gather_round is not None:
                break
            if self.round > max_rounds:
                raise SimulationTimeout(
                    self.round,
                    detail="; ".join(
                        f"{r.label}:{rb.STATUS_NAMES[r.status]}" for r in self.robots
                    ),
                )
            self._step()
        self.metrics.rounds = self.round
        self.metrics.gathered_at_end = self.all_gathered()
        self.metrics.moves_by_robot = {r.label: r.moves for r in self.robots}
        self.metrics.active_rounds_by_robot = {
            r.label: r.active_rounds for r in self.robots
        }
        self.metrics.total_moves = sum(r.moves for r in self.robots)
        self.metrics.max_moves = max((r.moves for r in self.robots), default=0)
        terms = [r.terminated_round for r in self.robots if r.terminated_round is not None]
        self.metrics.last_termination_round = max(terms) if terms else None
        return self.metrics

    # ------------------------------------------------------------------
    def _wake_due(self) -> List[RobotState]:
        """Apply due wake-ups; return the robots active this round."""
        active = []
        for r in self.robots:
            if r.status == rb.SLEEPING:
                due = r.wake_round is not None and self.round >= r.wake_round
                if due or r.woken_early:
                    r.status = rb.ACTIVE
                    r.woken_early = False
                    r.wake_round = None
                    r.wake_on_meet = False
                    if self.trace is not None:
                        self.trace.record(self.round, "wake", r.label, "due" if due else "meet")
            elif r.status == rb.FOLLOWING:
                if r.wake_round is not None and self.round >= r.wake_round:
                    r.status = rb.ACTIVE
                    r.leader_label = None
                    r.wake_round = None
                if r.woken_early:
                    # set when the leader terminated with on_leader_terminate="wake"
                    r.status = rb.ACTIVE
                    r.leader_label = None
                    r.woken_early = False
                    r.wake_round = None
            if r.status == rb.ACTIVE:
                active.append(r)
        return active

    def _next_wake_round(self) -> Optional[int]:
        best: Optional[int] = None
        for r in self.robots:
            if r.status in (rb.SLEEPING, rb.FOLLOWING) and r.wake_round is not None:
                if best is None or r.wake_round < best:
                    best = r.wake_round
        return best

    def _step(self) -> None:
        active = self._wake_due()

        if not active:
            nxt = self._next_wake_round()
            if nxt is None:
                statuses = ", ".join(
                    f"{r.label}:{rb.STATUS_NAMES[r.status]}" for r in self.robots
                )
                raise SimulationDeadlock(
                    f"round {self.round}: no robot can ever act again ({statuses})"
                )
            if self.trace is not None:
                self.trace.record(self.round, "jump", None, nxt)
            self.round = max(self.round + 1, nxt)
            return

        # --- observation & compute -----------------------------------
        occupants: Dict[int, List[RobotState]] = {}
        for r in self.robots:
            occupants.setdefault(r.node, []).append(r)
        cards_at: Dict[int, Tuple[dict, ...]] = {
            node: tuple(x.card for x in sorted(occ, key=lambda s: s.label))
            for node, occ in occupants.items()
        }

        movers: List[Tuple[RobotState, int]] = []  # (robot, port)
        followers_once: List[RobotState] = []
        terminators: List[RobotState] = []

        for r in active:  # already in label order
            obs = Observation(
                self.round,
                self.graph.degree(r.node),
                r.entry_port,
                cards_at[r.node],
            )
            r.active_rounds += 1
            try:
                action = r.gen.send(obs)
            except StopIteration:
                raise ProtocolViolation(
                    f"robot {r.label}: program returned without terminating"
                ) from None
            if action is None:
                raise ProtocolViolation(f"robot {r.label}: yielded None instead of an Action")
            self._apply_card(r, action)
            if action.note and self.trace is not None:
                self.trace.record(self.round, "note", r.label, action.note)

            kind = action.kind
            if kind == STAY:
                pass
            elif kind == MOVE:
                if not (0 <= (action.port or 0) < self.graph.degree(r.node)) or action.port is None:
                    raise ProtocolViolation(
                        f"robot {r.label}: invalid port {action.port} on a degree-"
                        f"{self.graph.degree(r.node)} node"
                    )
                movers.append((r, action.port))
            elif kind == SLEEP:
                if action.wake_round is not None and action.wake_round <= self.round:
                    raise ProtocolViolation(
                        f"robot {r.label}: sleep until round {action.wake_round} "
                        f"is not in the future (now {self.round})"
                    )
                if action.wake_round is None and not action.wake_on_meet:
                    raise ProtocolViolation(
                        f"robot {r.label}: unwakeable forever-sleep"
                    )
                r.status = rb.SLEEPING
                r.wake_round = action.wake_round
                r.wake_on_meet = action.wake_on_meet
                if self.trace is not None:
                    self.trace.record(self.round, "sleep", r.label, action.wake_round)
            elif kind == FOLLOW:
                self._check_follow_target(r, action.target)
                r.status = rb.FOLLOWING
                r.leader_label = action.target
                r.wake_round = action.wake_round
                r.on_leader_terminate = action.on_leader_terminate
                if self.trace is not None:
                    self.trace.record(self.round, "follow", r.label, action.target)
            elif kind == FOLLOW_ONCE:
                self._check_follow_target(r, action.target)
                r.leader_label = action.target
                followers_once.append(r)
            elif kind == TERMINATE:
                terminators.append(r)
            else:  # pragma: no cover - factory methods make this unreachable
                raise ProtocolViolation(f"robot {r.label}: unknown action kind {kind}")

        # --- resolve follows ------------------------------------------
        # resolved move per label: port or None (stay), computed lazily with
        # memoization over the follow chains.
        resolved: Dict[int, Optional[int]] = {}
        once_labels = {r.label for r in followers_once}
        for r, port in movers:
            resolved[r.label] = port
        for r in self.robots:
            if r.status == rb.TERMINATED:
                resolved.setdefault(r.label, None)

        def resolve(label: int, chain: set) -> Optional[int]:
            if label in resolved:
                return resolved[label]
            st = self.by_label[label]
            if st.status == rb.FOLLOWING or label in once_labels:
                if label in chain:  # follow cycle: nobody moves
                    resolved[label] = None
                    return None
                chain.add(label)
                leader = st.leader_label
                if leader is None or leader not in self.by_label:
                    resolved[label] = None
                    return None
                resolved[label] = resolve(leader, chain)
                return resolved[label]
            resolved[label] = None
            return None

        moving: List[Tuple[RobotState, int]] = list(movers)
        for r in self.robots:
            if r.status == rb.FOLLOWING or r.label in once_labels:
                port = resolve(r.label, set())
                if port is not None:
                    # follower must share the leader's node to take the same port
                    moving.append((r, port))

        # one-round follows release leadership after resolution
        for r in followers_once:
            r.leader_label = None

        # --- apply moves simultaneously --------------------------------
        arrivals: Dict[int, int] = {}
        for r, port in moving:
            new_node, entry = self.graph.traverse(r.node, port)
            r.node = new_node
            r.entry_port = entry
            r.moves += 1
            arrivals[new_node] = arrivals.get(new_node, 0) + 1
            if self.trace is not None:
                self.trace.record(self.round, "move", r.label, (port, entry))

        # --- wake sleepers on arrivals ---------------------------------
        if arrivals:
            for r in self.robots:
                if (
                    r.status == rb.SLEEPING
                    and r.wake_on_meet
                    and r.node in arrivals
                ):
                    r.woken_early = True

        # --- terminations + cascade ------------------------------------
        if terminators:
            for r in terminators:
                self._terminate(r)
            self._cascade_terminations()

        # --- bookkeeping ------------------------------------------------
        if self.metrics.first_gather_round is None and self.all_gathered():
            self.metrics.first_gather_round = self.round
        if self.replay is not None:
            self.replay.snapshot(self.round, self.positions())
        self.metrics.rounds_executed += 1
        self.round += 1

    # ------------------------------------------------------------------
    def _apply_card(self, r: RobotState, action: Action) -> None:
        if action.card is not None:
            card = dict(action.card)
            card["id"] = r.label  # the label is not forgeable
            r.card = card
            bits = card_bits(card)
            if bits > self.metrics.max_card_bits:
                self.metrics.max_card_bits = bits

    def _check_follow_target(self, r: RobotState, target: Optional[int]) -> None:
        if target is None or target not in self.by_label:
            raise ProtocolViolation(f"robot {r.label}: follow target {target} unknown")
        if target == r.label:
            raise ProtocolViolation(f"robot {r.label}: cannot follow itself")
        if self.strict and self.by_label[target].node != r.node:
            raise ProtocolViolation(
                f"robot {r.label}: follow target {target} is not co-located"
            )

    def _terminate(self, r: RobotState) -> None:
        if r.status == rb.TERMINATED:
            return
        r.status = rb.TERMINATED
        r.terminated_round = self.round
        if not self.all_gathered():
            self.metrics.terminations_all_gathered = False
        if self.trace is not None:
            self.trace.record(self.round, "terminate", r.label, None)
        try:
            r.gen.close()
        except RuntimeError:  # pragma: no cover - generator refusing to close
            pass

    def _cascade_terminations(self) -> None:
        """Followers whose (transitive) leader terminated react per their mode."""
        changed = True
        while changed:
            changed = False
            for r in self.robots:
                if r.status != rb.FOLLOWING or r.leader_label is None:
                    continue
                leader = self.by_label.get(r.leader_label)
                if leader is None or leader.status != rb.TERMINATED:
                    continue
                if r.on_leader_terminate == "terminate":
                    self._terminate(r)
                    changed = True
                else:  # "wake"
                    r.woken_early = True
