"""The synchronous round scheduler.

Executes the Face-to-Face model round by round:

1. **Wake-ups** — sleepers whose wake round arrived (or who were woken early
   by an arrival) and persistent followers whose ``until_round`` arrived
   become active.
2. **Fast-forward** — if *no* robot is active, nothing can change until the
   earliest scheduled wake round; simulated time jumps there in one step.
   (Followers of sleeping leaders cannot move either, so the jump is safe.)
3. **Observation & compute** — each active robot receives an
   :class:`~repro.sim.actions.Observation` (cards of co-located robots as of
   the start of the round) and yields an :class:`~repro.sim.actions.Action`.
   Robots are processed in increasing label order; determinism is total.
4. **Move resolution** — explicit moves are taken as-is; follows resolve
   transitively to the leader's move this round (cycles resolve to "stay",
   which cannot happen for the algorithms in this library but keeps the
   scheduler total).
5. **Simultaneous application** — all moves happen at once; entry ports are
   recorded; sleeping robots with ``wake_on_meet`` on nodes that received an
   arrival are flagged to wake next round.
6. **Terminations** — terminate actions are applied, then cascaded to
   persistent followers with ``on_leader_terminate="terminate"``
   (transitively, the paper's Lemma 4).

The scheduler never exposes node identities to programs.

Implementation notes (the *fast path*; semantics are pinned bit-for-bit
against :class:`repro.sim.reference.ReferenceScheduler` by
``tests/test_fastpath_differential.py``, and the invariants are documented
in ``docs/PERF.md``):

* graph reads go through the compiled CSR form
  (:attr:`~repro.graphs.port_graph.PortGraph.csr`) — flat-list indexing, no
  method calls, no tuple-of-tuples chasing;
* node occupancy is maintained *incrementally*: per-node label-sorted
  occupant lists updated only for the two endpoints of each move, instead
  of rebuilding an occupants dict from all robots every round;
* per-node card tuples are cached and invalidated only when an occupant
  moves in/out or publishes a new card;
* follow resolution is an iterative propagation from this round's movers
  over a persistent reverse leader→followers index (no recursion, no
  per-round closure), and termination cascades run as a single pass over
  the same index;
* tracing is hoisted: with ``trace=None`` the move-application loop carries
  zero per-event checks;
* arrival tracking for ``wake_on_meet`` is skipped entirely while no such
  sleeper exists.

Activation models (:mod:`repro.sim.activation`) weaken the synchronous
discipline: when one is installed, the due-robot list is filtered through
``model.select`` before observation.  ``activation=None`` (the default)
skips the policy entirely, preserving the pinned synchronous semantics.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.graphs.port_graph import PortGraph, PortGraphError
from repro.sim import robot as rb
from repro.sim.actions import (
    Action,
    Observation,
    STAY,
    MOVE,
    SLEEP,
    FOLLOW,
    FOLLOW_ONCE,
    TERMINATE,
)
from repro.sim.errors import ProtocolViolation, SimulationDeadlock, SimulationTimeout
from repro.sim.metrics import RunMetrics, card_bits
from repro.sim.robot import ACTIVE, FOLLOWING, SLEEPING, TERMINATED, RobotSpec, RobotState
from repro.sim.trace import TraceRecorder

__all__ = ["Scheduler"]


class Scheduler:
    """Drives a set of robot programs on a port graph until all terminate."""

    def __init__(
        self,
        graph: PortGraph,
        specs: List[RobotSpec],
        trace: Optional[TraceRecorder] = None,
        strict: bool = False,
        replay=None,
        activation=None,
    ):
        labels = [s.label for s in specs]
        if len(set(labels)) != len(labels):
            raise ValueError("robot labels must be unique")
        if any(l < 1 for l in labels):
            raise ValueError("robot labels must be >= 1 (the paper's ID range starts at 1)")
        for s in specs:
            if not (0 <= s.start < graph.n):
                raise ValueError(f"start node {s.start} outside graph")

        self.graph = graph
        self.trace = trace
        self.strict = strict
        self.replay = replay
        # Optional ActivationModel (repro.sim.activation). None keeps the
        # native synchronous hot path: no per-round policy call at all.
        self.activation = activation
        # Robots sorted by label: processing order == label order everywhere.
        self.robots: List[RobotState] = [
            RobotState(rid, spec, graph.n)
            for rid, spec in enumerate(sorted(specs, key=lambda s: s.label))
        ]
        self.by_label: Dict[int, RobotState] = {r.label: r for r in self.robots}
        self.round = 0
        self.metrics = RunMetrics()

        # --- fast-path state (invariants in docs/PERF.md) -------------
        self._csr = graph.csr
        # occupants per node, kept sorted by label (self.robots is
        # label-sorted, so the initial append order is already sorted)
        occ: List[List[RobotState]] = [[] for _ in range(graph.n)]
        for r in self.robots:
            occ[r.node].append(r)
        self._occ = occ
        self._occupied = sum(1 for lst in occ if lst)  # nodes holding >= 1 robot
        # cached card tuple per node; None = dirty (rebuilt on demand)
        self._cards: List[Optional[Tuple[dict, ...]]] = [None] * graph.n
        # reverse index: leader label -> persistent followers (label-sorted
        # is not required; cascade/propagation order is label-sorted where
        # it matters)
        self._followers_of: Dict[int, List[RobotState]] = {}
        # robots currently SLEEPING with wake_on_meet; while zero, the move
        # loop skips arrival tracking entirely
        self._meet_sleepers = 0
        self._alive = len(self.robots)
        # robots not currently ACTIVE; while zero, _wake_due skips its scan
        self._dormant = 0

        self._prime()

    # ------------------------------------------------------------------
    def _prime(self) -> None:
        """Advance every program to its bootstrap ``yield``."""
        for r in self.robots:
            first = next(r.gen)
            if first is not None:
                raise ProtocolViolation(
                    f"robot {r.label}: program must start with a bare 'yield' "
                    f"(got {first!r} before any observation)"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def positions(self) -> Dict[int, int]:
        """label -> node, for every robot (terminated included)."""
        return {r.label: r.node for r in self.robots}

    def all_terminated(self) -> bool:
        return self._alive == 0

    def all_gathered(self) -> bool:
        nodes = {r.node for r in self.robots}
        return len(nodes) == 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_rounds: int, stop_on_gather: bool = False) -> RunMetrics:
        """Run until every robot terminates (or ``max_rounds`` elapses).

        ``stop_on_gather=True`` additionally stops as soon as all robots are
        co-located — the measurement hook for detection-free baselines, which
        otherwise never halt.
        """
        while not self.all_terminated():
            if stop_on_gather and self.metrics.first_gather_round is not None:
                break
            if self.round > max_rounds:
                raise SimulationTimeout(
                    self.round,
                    detail="; ".join(
                        f"{r.label}:{rb.STATUS_NAMES[r.status]}" for r in self.robots
                    ),
                )
            self._step()
        self.metrics.rounds = self.round
        self.metrics.gathered_at_end = self.all_gathered()
        self.metrics.moves_by_robot = {r.label: r.moves for r in self.robots}
        self.metrics.active_rounds_by_robot = {
            r.label: r.active_rounds for r in self.robots
        }
        self.metrics.total_moves = sum(r.moves for r in self.robots)
        self.metrics.max_moves = max((r.moves for r in self.robots), default=0)
        terms = [r.terminated_round for r in self.robots if r.terminated_round is not None]
        self.metrics.last_termination_round = max(terms) if terms else None
        return self.metrics

    # ------------------------------------------------------------------
    def _wake_due(self) -> List[RobotState]:
        """Apply due wake-ups; return the robots active this round."""
        if self._dormant == 0:
            # every robot is ACTIVE: nothing to wake, nothing to filter.
            # Callers only iterate the returned list, never mutate it.
            return self.robots
        active = []
        trace = self.trace
        rnd = self.round
        for r in self.robots:
            status = r.status
            if status == ACTIVE:
                active.append(r)
            elif status == SLEEPING:
                due = r.wake_round is not None and rnd >= r.wake_round
                if due or r.woken_early:
                    if r.wake_on_meet:
                        self._meet_sleepers -= 1
                    self._dormant -= 1
                    r.status = ACTIVE
                    r.woken_early = False
                    r.wake_round = None
                    r.wake_on_meet = False
                    if trace is not None:
                        trace.record(rnd, "wake", r.label, "due" if due else "meet")
                    active.append(r)
            elif status == FOLLOWING:
                due = r.wake_round is not None and rnd >= r.wake_round
                if due or r.woken_early:
                    # woken_early is set when the leader terminated with
                    # on_leader_terminate="wake"
                    self._unfollow(r)
                    self._dormant -= 1
                    r.status = ACTIVE
                    r.leader_label = None
                    r.woken_early = False
                    r.wake_round = None
                    active.append(r)
        return active

    def _next_wake_round(self) -> Optional[int]:
        best: Optional[int] = None
        for r in self.robots:
            if r.status in (SLEEPING, FOLLOWING) and r.wake_round is not None:
                if best is None or r.wake_round < best:
                    best = r.wake_round
        return best

    def _step(self) -> None:
        active = self._wake_due()

        if active and self.activation is not None:
            # Weaker-than-synchronous models act here; robots not selected
            # stay awake and unobserved until a later round.  A model that
            # selects nobody while robots are due would stall the run
            # forever, so that contract violation is rejected loudly.
            selected = self.activation.select(active, self.round)
            if not selected:
                raise ProtocolViolation(
                    f"activation model {self.activation.describe()!r} selected "
                    f"no robot at round {self.round} with {len(active)} due"
                )
            active = selected

        if not active:
            nxt = self._next_wake_round()
            if nxt is None:
                statuses = ", ".join(
                    f"{r.label}:{rb.STATUS_NAMES[r.status]}" for r in self.robots
                )
                raise SimulationDeadlock(
                    f"round {self.round}: no robot can ever act again ({statuses})"
                )
            if self.trace is not None:
                self.trace.record(self.round, "jump", None, nxt)
            self.round = max(self.round + 1, nxt)
            return

        trace = self.trace
        rnd = self.round
        csr = self._csr
        row = csr.row_offsets
        nbr_arr = csr.neighbor
        ent_arr = csr.entry_port
        deg_arr = csr.degree
        occ_lists = self._occ
        cards_cache = self._cards

        # --- observation & compute -----------------------------------
        # Cards are "as of the start of the round".  A node's card tuple is
        # built lazily at its *first* active occupant's observation — which
        # runs before any program on that node has acted, and only
        # co-located programs can publish to a node, so the lazy build
        # always sees pre-round cards.  Card publications therefore defer
        # their cache invalidation to after the compute loop.
        # movers as two parallel lists: iterating them with zip() reuses
        # the yielded pair tuple, where a list of (robot, port) tuples
        # would allocate one per mover per round
        movers_r: List[RobotState] = []
        movers_p: List[int] = []
        followers_once: List[RobotState] = []
        terminators: List[RobotState] = []
        published: List[int] = []  # nodes with a card published this round

        for r in active:  # already in label order
            node = r.node
            cards = cards_cache[node]
            if cards is None:
                occ = occ_lists[node]
                # occupant lists are label-sorted; no re-sort needed
                cards = (occ[0].card,) if len(occ) == 1 else tuple(x.card for x in occ)
                cards_cache[node] = cards
            r.active_rounds += 1
            try:
                action = r.send(Observation(rnd, deg_arr[node], r.entry_port, cards))
            except StopIteration:
                raise ProtocolViolation(
                    f"robot {r.label}: program returned without terminating"
                ) from None
            if action is None:
                raise ProtocolViolation(f"robot {r.label}: yielded None instead of an Action")
            if action.card is not None:
                self._apply_card(r, action)
                published.append(r.node)
            if action.note and trace is not None:
                trace.record(rnd, "note", r.label, action.note)

            kind = action.kind
            if kind == MOVE:  # tested first: the hot kind by far
                port = action.port
                # reject None before the range check; `port or 0` would
                # treat port 0 and None alike
                if port is None or not 0 <= port < deg_arr[r.node]:
                    raise ProtocolViolation(
                        f"robot {r.label}: invalid port {port} on a degree-"
                        f"{deg_arr[r.node]} node"
                    )
                movers_r.append(r)
                movers_p.append(port)
            elif kind == STAY:
                pass
            elif kind == SLEEP:
                if action.wake_round is not None and action.wake_round <= rnd:
                    raise ProtocolViolation(
                        f"robot {r.label}: sleep until round {action.wake_round} "
                        f"is not in the future (now {rnd})"
                    )
                if action.wake_round is None and not action.wake_on_meet:
                    raise ProtocolViolation(
                        f"robot {r.label}: unwakeable forever-sleep"
                    )
                r.status = SLEEPING
                r.wake_round = action.wake_round
                r.wake_on_meet = action.wake_on_meet
                self._dormant += 1
                if action.wake_on_meet:
                    self._meet_sleepers += 1
                if trace is not None:
                    trace.record(rnd, "sleep", r.label, action.wake_round)
            elif kind == FOLLOW:
                self._check_follow_target(r, action.target)
                r.status = FOLLOWING
                r.leader_label = action.target
                r.wake_round = action.wake_round
                r.on_leader_terminate = action.on_leader_terminate
                self._dormant += 1
                self._followers_of.setdefault(action.target, []).append(r)
                if trace is not None:
                    trace.record(rnd, "follow", r.label, action.target)
            elif kind == FOLLOW_ONCE:
                self._check_follow_target(r, action.target)
                r.leader_label = action.target
                followers_once.append(r)
            elif kind == TERMINATE:
                terminators.append(r)
            else:  # pragma: no cover - factory methods make this unreachable
                raise ProtocolViolation(f"robot {r.label}: unknown action kind {kind}")

        # deferred card-publication invalidation (see loop comment above)
        for node in published:
            cards_cache[node] = None

        # --- resolve follows ------------------------------------------
        # Iterative forward propagation from this round's movers over the
        # reverse leader->followers index: a follower chain ending in a
        # mover inherits its port; chains ending anywhere else (stay,
        # sleep, terminate, cycle) stay put, so they never need visiting.
        followers_of = self._followers_of
        assigned: Optional[List[Tuple[RobotState, int]]] = None
        if followers_of or followers_once:
            once_by_leader: Dict[int, List[RobotState]] = {}
            for f in followers_once:
                once_by_leader.setdefault(f.leader_label, []).append(f)
            assigned = []
            stack = list(zip(movers_r, movers_p))
            while stack:
                r, port = stack.pop()
                label = r.label
                fs = followers_of.get(label)
                if fs:
                    for f in fs:
                        assigned.append((f, port))
                        stack.append((f, port))
                fs = once_by_leader.get(label)
                if fs:
                    for f in fs:
                        assigned.append((f, port))
                        stack.append((f, port))
            # one-round follows release leadership after resolution
            for f in followers_once:
                f.leader_label = None
            # movers apply first (label order), then followers in label
            # order — the application order of the reference scheduler
            assigned.sort(key=_moving_label)

        # --- apply moves simultaneously --------------------------------
        # Arrival tracking only matters while a wake_on_meet sleeper
        # exists; tracing is hoisted out of the loop entirely.
        meet_watch = self._meet_sleepers > 0
        arrivals = set()
        occupied = self._occupied
        if trace is None:
            for r, port in zip(movers_r, movers_p):
                old = r.node
                i = row[old] + port
                new = nbr_arr[i]
                ol = occ_lists[old]
                ol.remove(r)
                cards_cache[old] = None
                if not ol:
                    occupied -= 1
                nl = occ_lists[new]
                if nl:
                    lab = r.label
                    j = len(nl)
                    while j and nl[j - 1].label > lab:
                        j -= 1
                    nl.insert(j, r)
                else:
                    nl.append(r)
                    occupied += 1
                cards_cache[new] = None
                r.node = new
                r.entry_port = ent_arr[i]
                r.moves += 1
                if meet_watch:
                    arrivals.add(new)
            self._occupied = occupied
        else:
            # traced path: _apply_move maintains self._occupied directly
            for r, port in zip(movers_r, movers_p):
                entry = self._apply_move(r, port, arrivals, meet_watch)
                trace.record(rnd, "move", r.label, (port, entry))
        # follower moves (rare path, so per-event trace checks are fine):
        # validated here, in application order, because a non-co-located
        # follower (possible in non-strict mode) can inherit a port its own
        # node lacks and the raw CSR indexing must never see it.  Raising
        # mid-application leaves the same partially-applied state and error
        # as the seed scheduler's graph.traverse.
        if assigned:
            for f, port in assigned:
                if not 0 <= port < deg_arr[f.node]:
                    raise PortGraphError(
                        f"node {f.node} has degree {deg_arr[f.node]}; port {port} is invalid"
                    )
                entry = self._apply_move(f, port, arrivals, meet_watch)
                if trace is not None:
                    trace.record(rnd, "move", f.label, (port, entry))

        # --- wake sleepers on arrivals ---------------------------------
        if arrivals:
            for r in self.robots:
                if (
                    r.status == SLEEPING
                    and r.wake_on_meet
                    and r.node in arrivals
                ):
                    r.woken_early = True

        # --- terminations + cascade ------------------------------------
        if terminators:
            for r in terminators:
                self._terminate(r)
            self._cascade_terminations()

        # --- bookkeeping ------------------------------------------------
        metrics = self.metrics
        if metrics.first_gather_round is None and self._occupied == 1:
            metrics.first_gather_round = rnd
        if self.replay is not None:
            self.replay.snapshot(rnd, self.positions())
        metrics.rounds_executed += 1
        self.round = rnd + 1

    # ------------------------------------------------------------------
    def _apply_card(self, r: RobotState, action: Action) -> None:
        # NB: does *not* invalidate the node's card cache — the hot loop
        # defers that until every active robot has observed (cards are
        # "as of the start of the round")
        if action.card is not None:
            card = dict(action.card)
            card["id"] = r.label  # the label is not forgeable
            r.card = card
            bits = card_bits(card)
            if bits > self.metrics.max_card_bits:
                self.metrics.max_card_bits = bits

    def _check_follow_target(self, r: RobotState, target: Optional[int]) -> None:
        if target is None or target not in self.by_label:
            raise ProtocolViolation(f"robot {r.label}: follow target {target} unknown")
        if target == r.label:
            raise ProtocolViolation(f"robot {r.label}: cannot follow itself")
        if self.strict and self.by_label[target].node != r.node:
            raise ProtocolViolation(
                f"robot {r.label}: follow target {target} is not co-located"
            )

    def _apply_move(self, r: RobotState, port: int, arrivals: set, meet_watch: bool) -> int:
        """Apply one resolved move with full occupancy/cache bookkeeping.

        Cold-path helper (traced movers and follower moves); the untraced
        mover loop in ``_step`` inlines the same logic over local bindings.
        Returns the entry port for trace recording.
        """
        csr = self._csr
        old = r.node
        i = csr.row_offsets[old] + port
        new = csr.neighbor[i]
        entry = csr.entry_port[i]
        occ_lists = self._occ
        cards_cache = self._cards
        ol = occ_lists[old]
        ol.remove(r)
        cards_cache[old] = None
        if not ol:
            self._occupied -= 1
        nl = occ_lists[new]
        if nl:
            lab = r.label
            j = len(nl)
            while j and nl[j - 1].label > lab:
                j -= 1
            nl.insert(j, r)
        else:
            nl.append(r)
            self._occupied += 1
        cards_cache[new] = None
        r.node = new
        r.entry_port = entry
        r.moves += 1
        if meet_watch:
            arrivals.add(new)
        return entry

    def _unfollow(self, r: RobotState) -> None:
        """Drop ``r`` from the reverse leader->followers index."""
        lst = self._followers_of.get(r.leader_label)
        if lst is not None:
            try:
                lst.remove(r)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not lst:
                del self._followers_of[r.leader_label]

    def _terminate(self, r: RobotState) -> None:
        if r.status == TERMINATED:
            return
        if r.status == FOLLOWING:
            self._unfollow(r)  # already counted dormant
        elif r.status == ACTIVE:
            self._dormant += 1
        r.status = TERMINATED
        r.terminated_round = self.round
        self._alive -= 1
        # terminations run after _step commits _occupied, so the O(1)
        # counter answers "all gathered" without scanning robots
        if self._occupied != 1:
            self.metrics.terminations_all_gathered = False
        if self.trace is not None:
            self.trace.record(self.round, "terminate", r.label, None)
        try:
            r.gen.close()
        except RuntimeError:  # pragma: no cover - generator refusing to close
            pass

    def _cascade_terminations(self) -> None:
        """Followers whose (transitive) leader terminated react per their mode.

        Single pass over the reverse leader->followers index: every affected
        follower is visited exactly once.  Processing order replicates the
        reference scheduler's iterated label-order fixpoint — conceptually,
        "pass ``p``" contains followers whose enabling termination happened
        in pass ``p-1`` at a *larger* label (they would have been reached
        later in the same scan) join pass ``p-1`` instead — by ordering the
        queue on ``(pass, label)``.
        """
        followers_of = self._followers_of
        if not followers_of:
            return
        by_label = self.by_label
        heap: List[Tuple[int, int, RobotState]] = []
        # Seed with followers of every already-terminated leader (pass 1).
        for llabel, flist in list(followers_of.items()):
            if by_label[llabel].status == TERMINATED:
                for f in flist:
                    heap.append((1, f.label, f))
        heapq.heapify(heap)
        while heap:
            pss, flabel, f = heapq.heappop(heap)
            if f.status != FOLLOWING:  # pragma: no cover - defensive
                continue
            if f.on_leader_terminate == "terminate":
                self._terminate(f)
                flist = followers_of.get(flabel)
                if flist:
                    for g in flist:
                        gpass = pss if g.label > flabel else pss + 1
                        heapq.heappush(heap, (gpass, g.label, g))
            else:  # "wake"
                f.woken_early = True


def _moving_label(entry: Tuple[RobotState, int]) -> int:
    return entry[0].label
