"""The synchronous round scheduler.

Executes the Face-to-Face model round by round:

1. **Wake-ups** — sleepers whose wake round arrived (or who were woken early
   by an arrival) and persistent followers whose ``until_round`` arrived
   become active.
2. **Fast-forward** — if *no* robot is active, nothing can change until the
   earliest scheduled wake round; simulated time jumps there in one step.
   (Followers of sleeping leaders cannot move either, so the jump is safe.)
3. **Observation & compute** — each active robot receives an
   :class:`~repro.sim.actions.Observation` (cards of co-located robots as of
   the start of the round) and yields an :class:`~repro.sim.actions.Action`.
   Robots are processed in increasing label order; determinism is total.
4. **Move resolution** — explicit moves are taken as-is; follows resolve
   transitively to the leader's move this round (cycles resolve to "stay",
   which cannot happen for the algorithms in this library but keeps the
   scheduler total).
5. **Simultaneous application** — all moves happen at once; entry ports are
   recorded; sleeping robots with ``wake_on_meet`` on nodes that received an
   arrival are flagged to wake next round.
6. **Terminations** — terminate actions are applied, then cascaded to
   persistent followers with ``on_leader_terminate="terminate"``
   (transitively, the paper's Lemma 4).

The scheduler never exposes node identities to programs.

Implementation notes (the *fast path*; semantics are pinned bit-for-bit
against :class:`repro.sim.reference.ReferenceScheduler` by
``tests/test_fastpath_differential.py``, and the invariants are documented
in ``docs/PERF.md``):

The engine is **struct-of-arrays**: per-robot hot state lives in parallel
flat lists indexed by ``rid`` (robots sorted by label, so rid order ==
label order everywhere) — ``_pos``, ``_entry``, ``_moves``, ``_ar`` (active
rounds),
``_own`` (the robot's single-occupant card tuple), ``_sends`` (pre-bound
generator ``send``), and ``_obs`` (one reusable Observation per robot,
mutated in place — see the reuse contract in :mod:`repro.sim.actions`).
Plain lists are deliberately chosen over ``array``/numpy: indexing an
``array('l')`` boxes a fresh int per read, and numpy cannot help a loop
that must call a Python generator per element (see ``docs/PERF.md``).

Two regimes share those arrays:

* the **SoA hot loop** (:meth:`_step_soa`) runs whenever a round needs no
  tracing, no activation policy, has no persistent followers, no
  ``wake_on_meet`` sleepers, and the graph has no self-loop.  It applies
  moves *inline* during the observation sweep (legal because an
  observation depends on other robots only through start-of-round
  occupancy, which is read from pre-round state), detects co-location with
  one C-level ``set(pos)`` per round instead of per-move occupancy
  bookkeeping, and resolves the dominant "one shared node" case with a
  closed-form duplicate extraction (``sum(pos) - sum(prev_pos_set)``).
  Rare action kinds (sleep/follow/terminate/cards) drop into cold helpers
  that reconstruct whatever the inline sweep skipped.
* the **general path** (the pre-SoA incremental engine, preserved in
  :meth:`_step_general`) handles traced runs, activation models, and
  follower/meet rounds with per-node occupant lists and card-tuple caches.

``RobotState`` attribute state is synchronized with the arrays only at
regime transitions and run boundaries (the "facade at the trace boundary"):
``_soa_to_states`` / ``_states_to_soa`` are O(k) and transitions are rare.
Wake-ups are driven by a precomputed **wake schedule** — a min-heap of
``(wake_round, rid)`` pushed at sleep/follow time — so rounds where nobody
is due skip the per-robot wake scan entirely, and fast-forward jumps read
the next wake round from the heap top.

Activation models (:mod:`repro.sim.activation`) weaken the synchronous
discipline: when one is installed, the due-robot list is filtered through
``model.select`` before observation.  ``activation=None`` (the default)
skips the policy entirely, preserving the pinned synchronous semantics.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Dict, List, Optional, Tuple

from repro.graphs.port_graph import PortGraph, PortGraphError
from repro.sim import robot as rb
from repro.sim.actions import (
    Action,
    Observation,
    STAY,
    MOVE,
    SLEEP,
    FOLLOW,
    FOLLOW_ONCE,
    TERMINATE,
)
from repro.sim.errors import ProtocolViolation, SimulationDeadlock, SimulationTimeout
from repro.sim.metrics import RunMetrics, card_bits
from repro.sim.robot import ACTIVE, FOLLOWING, SLEEPING, TERMINATED, RobotSpec, RobotState
from repro.sim.trace import TraceRecorder

__all__ = ["Scheduler"]


class Scheduler:
    """Drives a set of robot programs on a port graph until all terminate."""

    #: Subclasses that keep :class:`RobotState` attributes authoritative for
    #: the whole run (the seed :class:`~repro.sim.reference.ReferenceScheduler`)
    #: set this to ``False``; the arrays then exist but are never trusted.
    _uses_soa = True

    #: Whether ``_step`` may enter the struct-of-arrays hot loop at all.
    #: The ``incremental`` engine backend (:mod:`repro.sim.engines`) sets
    #: this to ``False`` to pin the general path for every round — the
    #: PR-2 execution regime, kept addressable for differential testing.
    _soa_enabled = True

    def __init__(
        self,
        graph: PortGraph,
        specs: List[RobotSpec],
        trace: Optional[TraceRecorder] = None,
        strict: bool = False,
        replay=None,
        activation=None,
    ):
        labels = [s.label for s in specs]
        if len(set(labels)) != len(labels):
            raise ValueError("robot labels must be unique")
        if any(l < 1 for l in labels):
            raise ValueError("robot labels must be >= 1 (the paper's ID range starts at 1)")
        for s in specs:
            if not (0 <= s.start < graph.n):
                raise ValueError(f"start node {s.start} outside graph")

        self.graph = graph
        self.trace = trace
        self.strict = strict
        self.replay = replay
        # Optional ActivationModel (repro.sim.activation). None keeps the
        # native synchronous hot path: no per-round policy call at all.
        self.activation = activation
        # Robots sorted by label: processing order == label order everywhere.
        self.robots: List[RobotState] = [
            RobotState(rid, spec, graph.n)
            for rid, spec in enumerate(sorted(specs, key=lambda s: s.label))
        ]
        self.by_label: Dict[int, RobotState] = {r.label: r for r in self.robots}
        self.round = 0
        self.metrics = RunMetrics()

        # --- general-path state (invariants in docs/PERF.md) ----------
        self._csr = graph.csr
        if type(self)._uses_soa:
            # SoA schedulers never read the initial occupancy structures:
            # every general-path entry rebuilds them via _soa_to_states.
            # Deferring the build skips O(n) list allocations per
            # construction — replica campaigns construct many schedulers.
            self._occ: List[List[RobotState]] = []
            self._cards: List[Optional[Tuple[dict, ...]]] = []
        else:
            # occupants per node, kept sorted by label (self.robots is
            # label-sorted, so the initial append order is already sorted)
            occ: List[List[RobotState]] = [[] for _ in range(graph.n)]
            for r in self.robots:
                occ[r.node].append(r)
            self._occ = occ
            # cached card tuple per node; None = dirty (rebuilt on demand)
            self._cards = [None] * graph.n
        # reverse index: leader label -> persistent followers (label-sorted
        # is not required; cascade/propagation order is label-sorted where
        # it matters)
        self._followers_of: Dict[int, List[RobotState]] = {}
        # robots currently SLEEPING with wake_on_meet; while zero, the move
        # loop skips arrival tracking entirely
        self._meet_sleepers = 0
        self._alive = len(self.robots)
        # robots not currently ACTIVE (SLEEPING/FOLLOWING/TERMINATED)
        self._dormant = 0

        # --- struct-of-arrays state -----------------------------------
        nrob = len(self.robots)
        self._nrob = nrob
        self._labels = [r.label for r in self.robots]
        self._pos: List[int] = [r.node for r in self.robots]
        self._entry: List[Optional[int]] = [None] * nrob
        self._moves: List[int] = [0] * nrob
        self._ar: List[int] = [0] * nrob
        self._own: List[Tuple[dict, ...]] = [(r.card,) for r in self.robots]
        self._sends = [r.send for r in self.robots]
        self._obs = [Observation(0, 0, None, ()) for _ in self.robots]
        self._posset = set(self._pos)
        self._occupied = len(self._posset)  # nodes holding >= 1 robot
        # label-ordered rids of currently ACTIVE robots (rid order == label
        # order); every status change maintains it
        self._active: List[int] = list(range(nrob))
        # active-round increments owed to every rid in _active (SoA rounds
        # defer the per-robot += 1 until the active set changes)
        self._ar_pending = 0
        # the wake schedule: min-heap of (wake_round, rid), pushed at
        # sleep/follow time; stale entries are skipped lazily on pop
        self._wake_heap: List[Tuple[int, int]] = []
        # rids flagged woken_early (meet arrivals, leader-terminated wakes)
        # since the last wake processing
        self._woken: List[int] = []
        # whether the arrays (True) or RobotState attributes (False) are
        # authoritative right now; flipped at regime transitions
        self._soa_auth = type(self)._uses_soa
        self._has_selfloop = self._csr.has_self_loop

        self._prime()

    # ------------------------------------------------------------------
    def _prime(self) -> None:
        """Advance every program to its bootstrap ``yield``."""
        for r in self.robots:
            first = next(r.gen)
            if first is not None:
                raise ProtocolViolation(
                    f"robot {r.label}: program must start with a bare 'yield' "
                    f"(got {first!r} before any observation)"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def positions(self) -> Dict[int, int]:
        """label -> node, for every robot (terminated included).

        Derived straight from the position array while the SoA engine is
        authoritative — one C-level ``zip`` instead of a per-robot
        attribute walk (replay snapshots call this every round).
        """
        if self._soa_auth:
            return dict(zip(self._labels, self._pos))
        return {r.label: r.node for r in self.robots}

    def all_terminated(self) -> bool:
        """O(1) counter check: has every robot terminated?"""
        return self._alive == 0

    def all_gathered(self) -> bool:
        """O(1) counter check: are all robots on one node?"""
        # _occupied is maintained by both regimes; == 1 iff co-located
        return self._occupied == 1

    # ------------------------------------------------------------------
    # Array <-> facade synchronization (regime transitions only)
    # ------------------------------------------------------------------
    def _flush_ar(self) -> None:
        """Apply the deferred active-round increments to the ar array."""
        pending = self._ar_pending
        if pending:
            ar = self._ar
            for i in self._active:
                ar[i] += pending
            self._ar_pending = 0

    def _sync_states(self) -> None:
        """Copy array state onto the RobotState facades (arrays stay valid)."""
        self._flush_ar()
        pos = self._pos
        entry = self._entry
        moves = self._moves
        ar = self._ar
        for i, r in enumerate(self.robots):
            r.node = pos[i]
            r.entry_port = entry[i]
            r.moves = moves[i]
            r.active_rounds = ar[i]

    def _soa_to_states(self) -> None:
        """SoA -> general transition: facades + occupancy become current."""
        self._sync_states()
        occ: List[List[RobotState]] = [[] for _ in range(self.graph.n)]
        for r in self.robots:  # label order => occupant lists stay sorted
            occ[r.node].append(r)
        self._occ = occ
        self._cards = [None] * self.graph.n
        self._soa_auth = False

    def _states_to_soa(self) -> None:
        """General -> SoA transition: arrays rebuilt from the facades."""
        pos = self._pos
        entry = self._entry
        moves = self._moves
        ar = self._ar
        own = self._own
        for i, r in enumerate(self.robots):
            pos[i] = r.node
            entry[i] = r.entry_port
            moves[i] = r.moves
            ar[i] = r.active_rounds
            own[i] = (r.card,)
        self._posset = set(pos)
        self._soa_auth = True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_rounds: int, stop_on_gather: bool = False) -> RunMetrics:
        """Run until every robot terminates (or ``max_rounds`` elapses).

        ``stop_on_gather=True`` additionally stops as soon as all robots are
        co-located — the measurement hook for detection-free baselines, which
        otherwise never halt.
        """
        while not self.all_terminated():
            if stop_on_gather and self.metrics.first_gather_round is not None:
                break
            if self.round > max_rounds:
                raise self._timeout_error()
            self._step()
        return self._finalize()

    def _timeout_error(self) -> SimulationTimeout:
        """The exception ``run`` raises past ``max_rounds``.  Shared with the
        batched replica driver (:mod:`repro.sim.batch`), which enforces the
        same limit per replica and must report the identical error."""
        return SimulationTimeout(
            self.round,
            detail="; ".join(
                f"{r.label}:{rb.STATUS_NAMES[r.status]}" for r in self.robots
            ),
        )

    def _finalize(self) -> RunMetrics:
        """Sync facades and fill the end-of-run metrics.  ``run`` calls this
        once its loop exits; the batched replica driver calls it when it
        retires a replica — one code path, identical metrics either way."""
        if self._soa_auth:
            self._sync_states()
        self.metrics.rounds = self.round
        self.metrics.gathered_at_end = self.all_gathered()
        self.metrics.moves_by_robot = {r.label: r.moves for r in self.robots}
        self.metrics.active_rounds_by_robot = {
            r.label: r.active_rounds for r in self.robots
        }
        self.metrics.total_moves = sum(r.moves for r in self.robots)
        self.metrics.max_moves = max((r.moves for r in self.robots), default=0)
        terms = [r.terminated_round for r in self.robots if r.terminated_round is not None]
        self.metrics.last_termination_round = max(terms) if terms else None
        return self.metrics

    # ------------------------------------------------------------------
    # Wake machinery (the precomputed wake schedule)
    # ------------------------------------------------------------------
    def _wake_due(self) -> List[int]:
        """Apply due wake-ups; return the label-ordered active rid list.

        Driven by the wake-schedule heap plus the woken-early list instead
        of a per-robot scan: a round with nothing due returns the
        maintained ``_active`` list after two O(1) checks.
        """
        rnd = self.round
        heap = self._wake_heap
        woken = self._woken
        if not woken and (not heap or heap[0][0] > rnd):
            return self._active
        robots = self.robots
        due_from_heap = set()
        while heap and heap[0][0] <= rnd:
            _, rid = heapq.heappop(heap)
            r = robots[rid]
            status = r.status
            if (
                (status == SLEEPING or status == FOLLOWING)
                and r.wake_round is not None
                and r.wake_round <= rnd
            ):
                due_from_heap.add(rid)
        due = due_from_heap
        if woken:
            for rid in woken:
                status = robots[rid].status
                if status == SLEEPING or status == FOLLOWING:
                    due.add(rid)
            self._woken = []
        if not due:
            return self._active
        self._flush_ar()
        trace = self.trace
        active = self._active
        for rid in sorted(due):
            r = robots[rid]
            if r.status == SLEEPING:
                was_due = r.wake_round is not None and rnd >= r.wake_round
                if r.wake_on_meet:
                    self._meet_sleepers -= 1
                self._dormant -= 1
                r.status = ACTIVE
                r.woken_early = False
                r.wake_round = None
                r.wake_on_meet = False
                if trace is not None:
                    trace.record(rnd, "wake", r.label, "due" if was_due else "meet")
                insort(active, rid)
            else:  # FOLLOWING: timer or leader-terminated ("wake" mode)
                self._unfollow(r)
                self._dormant -= 1
                r.status = ACTIVE
                r.leader_label = None
                r.woken_early = False
                r.wake_round = None
                insort(active, rid)
        return active

    def _next_wake_round(self) -> Optional[int]:
        """Earliest scheduled wake round, from the wake-schedule heap."""
        heap = self._wake_heap
        robots = self.robots
        while heap:
            wr, rid = heap[0]
            r = robots[rid]
            if (r.status == SLEEPING or r.status == FOLLOWING) and r.wake_round == wr:
                return wr
            heapq.heappop(heap)  # stale entry (woken early / re-slept)
        return None

    # ------------------------------------------------------------------
    def _step(self) -> None:
        active_rids = self._wake_due()

        if not active_rids:
            nxt = self._next_wake_round()
            if nxt is None:
                statuses = ", ".join(
                    f"{r.label}:{rb.STATUS_NAMES[r.status]}" for r in self.robots
                )
                raise SimulationDeadlock(
                    f"round {self.round}: no robot can ever act again ({statuses})"
                )
            if self.trace is not None:
                self.trace.record(self.round, "jump", None, nxt)
            self.round = max(self.round + 1, nxt)
            return

        if (
            self._soa_enabled
            and self.activation is None
            and self.trace is None
            and not self._followers_of
            and self._meet_sleepers == 0
            and not self._has_selfloop
        ):
            self._step_soa(active_rids)
            return
        self._step_general(active_rids)

    # ------------------------------------------------------------------
    # The SoA hot loop
    # ------------------------------------------------------------------
    def _step_soa(self, active: List[int]) -> None:
        if not self._soa_auth:
            self._states_to_soa()
        rnd = self.round
        csr = self._csr
        row = csr.row_offsets
        nbr = csr.neighbor
        ent = csr.entry_port
        deg = csr.degree
        pos = self._pos
        entry = self._entry
        mvs = self._moves
        own = self._own
        sends = self._sends
        obs_l = self._obs
        nrob = self._nrob

        # --- start-of-round co-location snapshot ----------------------
        # excess == 0: every node is singly occupied and every observation
        # is the robot's own persistent card tuple.  excess == 1: exactly
        # one node holds exactly two robots; extract it in closed form from
        # the previous round's position set (no per-node bookkeeping).
        # excess >= 2: build the shared-node card map with one O(k) sweep.
        excess = nrob - self._occupied
        shared_cards: Optional[Dict[int, Tuple[dict, ...]]] = None
        if excess == 0:
            dup = -1
            dup_cards: Optional[Tuple[dict, ...]] = None
        elif excess == 1:
            dup = sum(pos) - sum(self._posset)
            i1 = pos.index(dup)
            i2 = pos.index(dup, i1 + 1)
            dup_cards = (own[i1][0], own[i2][0])
        else:
            dup = -1
            dup_cards = None
            # find the `excess` duplicated slots from a C-sorted copy, then
            # recover each shared node's label-ordered rids with C index
            # scans — O(k log k) in C plus O(shared) in Python, instead of
            # a per-robot Python dict build
            sp = sorted(pos)
            shared_cards = {}
            remaining = excess
            t = 0
            last = nrob - 1
            while remaining:
                if sp[t] == sp[t + 1]:
                    node = sp[t]
                    rids = [pos.index(node)]
                    while t < last and sp[t + 1] == node:
                        rids.append(pos.index(node, rids[-1] + 1))
                        t += 1
                        remaining -= 1
                    shared_cards[node] = tuple(own[j][0] for j in rids)
                t += 1

        # Cold actions (follow/meet-sleep) may need this round's movers,
        # which the inline sweep does not record; keep the pre-round state
        # so they can be reconstructed exactly (no self-loops in SoA mode,
        # so "position changed" <=> "moved", and the entry port pins the
        # unique edge taken).
        prev_pos = pos[:]
        self._ar_pending += 1

        track = False
        movers_i: List[int] = []
        movers_p: List[int] = []
        terminators: List[int] = []
        followers_once: List[int] = []
        meet_new: List[int] = []
        # rids leaving the active set this round (sleep/follow); removal is
        # deferred because the loop iterates self._active itself
        deactivated: List[int] = []

        if shared_cards is None:
            for i in active:
                node = pos[i]
                ob = obs_l[i]
                ob.round = rnd
                ob.degree = dg = deg[node]
                ob.entry_port = entry[i]
                ob.cards = own[i] if node != dup else dup_cards
                try:
                    a = sends[i](ob)
                except StopIteration:
                    raise ProtocolViolation(
                        f"robot {self._labels[i]}: program returned without terminating"
                    ) from None
                try:
                    kind = a.hot_kind
                except AttributeError:
                    if a is None:
                        raise ProtocolViolation(
                            f"robot {self._labels[i]}: yielded None instead of an Action"
                        ) from None
                    raise
                if kind == MOVE:
                    p = a.port
                    try:
                        ok = 0 <= p < dg
                    except TypeError:  # port is None
                        ok = False
                    if not ok:
                        raise ProtocolViolation(
                            f"robot {self._labels[i]}: invalid port {p} on a degree-"
                            f"{dg} node"
                        )
                    j = row[node] + p
                    pos[i] = nbr[j]
                    entry[i] = ent[j]
                    mvs[i] += 1
                    if track:
                        movers_i.append(i)
                        movers_p.append(p)
                elif kind != STAY:
                    track = self._soa_cold(
                        i, a, rnd, track,
                        movers_i, movers_p, terminators, followers_once,
                        meet_new, deactivated, prev_pos,
                    )
        else:
            for i in active:
                node = pos[i]
                ob = obs_l[i]
                ob.round = rnd
                ob.degree = dg = deg[node]
                ob.entry_port = entry[i]
                cards = shared_cards.get(node)
                ob.cards = own[i] if cards is None else cards
                try:
                    a = sends[i](ob)
                except StopIteration:
                    raise ProtocolViolation(
                        f"robot {self._labels[i]}: program returned without terminating"
                    ) from None
                try:
                    kind = a.hot_kind
                except AttributeError:
                    if a is None:
                        raise ProtocolViolation(
                            f"robot {self._labels[i]}: yielded None instead of an Action"
                        ) from None
                    raise
                if kind == MOVE:
                    p = a.port
                    try:
                        ok = 0 <= p < dg
                    except TypeError:  # port is None
                        ok = False
                    if not ok:
                        raise ProtocolViolation(
                            f"robot {self._labels[i]}: invalid port {p} on a degree-"
                            f"{dg} node"
                        )
                    j = row[node] + p
                    pos[i] = nbr[j]
                    entry[i] = ent[j]
                    mvs[i] += 1
                    if track:
                        movers_i.append(i)
                        movers_p.append(p)
                elif kind != STAY:
                    track = self._soa_cold(
                        i, a, rnd, track,
                        movers_i, movers_p, terminators, followers_once,
                        meet_new, deactivated, prev_pos,
                    )

        if deactivated:
            for rid in deactivated:
                self._active.remove(rid)

        # --- resolve follows (rare: only when created this round) ------
        if followers_once or self._followers_of:
            self._soa_resolve_follows(movers_i, movers_p, followers_once)

        # --- commit occupancy ------------------------------------------
        ps = set(pos)
        self._posset = ps
        self._occupied = len(ps)

        # --- wake meet-sleepers created this round on arrivals ---------
        if meet_new:
            arrivals = {pos[j] for j in movers_i}
            woken = self._woken
            for rid in meet_new:
                if pos[rid] in arrivals:
                    self.robots[rid].woken_early = True
                    woken.append(rid)

        # --- terminations + cascade ------------------------------------
        if terminators:
            self._flush_ar()
            for rid in terminators:
                self._terminate(self.robots[rid])
            self._cascade_terminations()

        # --- bookkeeping ------------------------------------------------
        metrics = self.metrics
        if metrics.first_gather_round is None and self._occupied == 1:
            metrics.first_gather_round = rnd
        if self.replay is not None:
            self.replay.snapshot(rnd, self.positions())
        metrics.rounds_executed += 1
        self.round = rnd + 1

    # -- SoA cold paths -------------------------------------------------
    def _soa_publish(self, i: int, action: Action) -> None:
        """Card publication from the hot loop: facade + own-tuple update.

        Deferred-invalidation reasoning from the general path still holds:
        the publisher's own observation already happened, any co-located
        robot's card tuple was snapshotted at round start, and next round
        rebuilds from the new ``own`` tuple.
        """
        r = self.robots[i]
        self._apply_card(r, action)
        self._own[i] = (r.card,)

    def _soa_reconstruct_movers(
        self, prev_pos: List[int]
    ) -> Tuple[List[int], List[int]]:
        """Recover (rid, port) for every robot that has moved this round.

        Only called when a follow/meet-sleep action appears mid-sweep.  With
        no self-loops (a SoA-mode precondition), ``pos != prev_pos`` is
        exactly "moved", and (destination, entry port) identifies the edge
        uniquely, hence the departure port.
        """
        movers_i: List[int] = []
        movers_p: List[int] = []
        pos = self._pos
        entry = self._entry
        row = self._csr.row_offsets
        nbr = self._csr.neighbor
        ent = self._csr.entry_port
        for j in range(self._nrob):
            old = prev_pos[j]
            new = pos[j]
            if new != old:
                e = entry[j]
                base = row[old]
                for slot in range(base, row[old + 1]):
                    if nbr[slot] == new and ent[slot] == e:
                        movers_i.append(j)
                        movers_p.append(slot - base)
                        break
        return movers_i, movers_p

    def _soa_cold(
        self,
        i: int,
        action: Action,
        rnd: int,
        track: bool,
        movers_i: List[int],
        movers_p: List[int],
        terminators: List[int],
        followers_once: List[int],
        meet_new: List[int],
        deactivated: List[int],
        prev_pos: List[int],
    ) -> bool:
        """Everything the hot loop's one-comparison dispatch does not cover:
        card/note-carrying moves and stays, sleeps, follows, terminates.

        Returns the (possibly enabled) mover-tracking flag: follow and
        meet-sleep actions need this round's movers, so on their first
        appearance the movers applied so far are reconstructed and tracking
        stays on for the rest of the sweep.  (Notes are trace-only and the
        SoA regime never runs traced, so they are ignored here.)
        """
        r = self.robots[i]
        if action.card is not None:
            self._soa_publish(i, action)
        kind = action.kind
        if kind == MOVE:
            p = action.port
            pos = self._pos
            node = pos[i]
            deg = self._csr.degree
            try:
                ok = 0 <= p < deg[node]
            except TypeError:  # port is None
                ok = False
            if not ok:
                raise ProtocolViolation(
                    f"robot {r.label}: invalid port {p} on a degree-"
                    f"{deg[node]} node"
                )
            row = self._csr.row_offsets
            j = row[node] + p
            pos[i] = self._csr.neighbor[j]
            self._entry[i] = self._csr.entry_port[j]
            self._moves[i] += 1
            if track:
                movers_i.append(i)
                movers_p.append(p)
        elif kind == STAY:
            pass
        elif kind == SLEEP:
            if action.wake_round is not None and action.wake_round <= rnd:
                raise ProtocolViolation(
                    f"robot {r.label}: sleep until round {action.wake_round} "
                    f"is not in the future (now {rnd})"
                )
            if action.wake_round is None and not action.wake_on_meet:
                raise ProtocolViolation(f"robot {r.label}: unwakeable forever-sleep")
            self._flush_ar()
            r.status = SLEEPING
            r.wake_round = action.wake_round
            r.wake_on_meet = action.wake_on_meet
            self._dormant += 1
            deactivated.append(i)
            if action.wake_round is not None:
                heapq.heappush(self._wake_heap, (action.wake_round, i))
            if action.wake_on_meet:
                self._meet_sleepers += 1
                meet_new.append(i)
                if not track:
                    mi, mp = self._soa_reconstruct_movers(prev_pos)
                    movers_i[:] = mi
                    movers_p[:] = mp
                    track = True
        elif kind == FOLLOW:
            self._soa_check_follow_target(i, action.target, prev_pos)
            self._flush_ar()
            r.status = FOLLOWING
            r.leader_label = action.target
            r.wake_round = action.wake_round
            r.on_leader_terminate = action.on_leader_terminate
            self._dormant += 1
            deactivated.append(i)
            if action.wake_round is not None:
                heapq.heappush(self._wake_heap, (action.wake_round, i))
            self._followers_of.setdefault(action.target, []).append(r)
            if not track:
                mi, mp = self._soa_reconstruct_movers(prev_pos)
                movers_i[:] = mi
                movers_p[:] = mp
                track = True
        elif kind == FOLLOW_ONCE:
            self._soa_check_follow_target(i, action.target, prev_pos)
            r.leader_label = action.target
            followers_once.append(i)
            if not track:
                mi, mp = self._soa_reconstruct_movers(prev_pos)
                movers_i[:] = mi
                movers_p[:] = mp
                track = True
        elif kind == TERMINATE:
            terminators.append(i)
        else:  # pragma: no cover - factory methods make this unreachable
            raise ProtocolViolation(f"robot {r.label}: unknown action kind {kind}")
        return track

    def _soa_check_follow_target(
        self, rid: int, target: Optional[int], prev_pos: List[int]
    ) -> None:
        # strict co-location is judged on start-of-round positions (moves
        # apply "at the end of the round"); inline application means the
        # leader may already sit on its new node, so compare pre-round state
        label = self._labels[rid]
        if target is None or target not in self.by_label:
            raise ProtocolViolation(f"robot {label}: follow target {target} unknown")
        if target == label:
            raise ProtocolViolation(f"robot {label}: cannot follow itself")
        if self.strict and prev_pos[self.by_label[target].rid] != prev_pos[rid]:
            raise ProtocolViolation(
                f"robot {label}: follow target {target} is not co-located"
            )

    def _soa_resolve_follows(
        self,
        movers_i: List[int],
        movers_p: List[int],
        followers_once: List[int],
    ) -> None:
        """Follow resolution + application for SoA rounds.

        Same iterative propagation as the general path: chains ending in
        this round's movers inherit the port; everything else stays.
        Follower moves apply after the (already-applied) movers, in label
        order, with the same validation and partial-application semantics
        on invalid inherited ports.
        """
        robots = self.robots
        followers_of = self._followers_of
        once_by_leader: Dict[int, List[int]] = {}
        for fid in followers_once:
            once_by_leader.setdefault(robots[fid].leader_label, []).append(fid)
        assigned: List[Tuple[int, int]] = []
        stack = [(robots[i].label, p) for i, p in zip(movers_i, movers_p)]
        while stack:
            label, port = stack.pop()
            fs = followers_of.get(label)
            if fs:
                for f in fs:
                    assigned.append((f.rid, port))
                    stack.append((f.label, port))
            fids = once_by_leader.get(label)
            if fids:
                for fid in fids:
                    assigned.append((fid, port))
                    stack.append((robots[fid].label, port))
        for fid in followers_once:
            robots[fid].leader_label = None
        if not assigned:
            return
        assigned.sort()  # rid order == label order
        pos = self._pos
        entry = self._entry
        mvs = self._moves
        row = self._csr.row_offsets
        nbr = self._csr.neighbor
        ent = self._csr.entry_port
        deg = self._csr.degree
        for fid, port in assigned:
            node = pos[fid]
            if not 0 <= port < deg[node]:
                raise PortGraphError(
                    f"node {node} has degree {deg[node]}; port {port} is invalid"
                )
            slot = row[node] + port
            pos[fid] = nbr[slot]
            entry[fid] = ent[slot]
            mvs[fid] += 1
            movers_i.append(fid)
            movers_p.append(port)

    # ------------------------------------------------------------------
    # The general path (the pre-SoA incremental engine)
    # ------------------------------------------------------------------
    def _step_general(self, active_rids: List[int]) -> None:
        if self._soa_auth:
            self._soa_to_states()
        robots = self.robots
        active = [robots[i] for i in active_rids]

        if self.activation is not None:
            # Weaker-than-synchronous models act here; robots not selected
            # stay awake and unobserved until a later round.  A model that
            # selects nobody while robots are due would stall the run
            # forever, so that contract violation is rejected loudly.
            selected = self.activation.select(active, self.round)
            if not selected:
                raise ProtocolViolation(
                    f"activation model {self.activation.describe()!r} selected "
                    f"no robot at round {self.round} with {len(active)} due"
                )
            active = selected

        trace = self.trace
        rnd = self.round
        csr = self._csr
        row = csr.row_offsets
        nbr_arr = csr.neighbor
        ent_arr = csr.entry_port
        deg_arr = csr.degree
        occ_lists = self._occ
        cards_cache = self._cards

        # --- observation & compute -----------------------------------
        # Cards are "as of the start of the round".  A node's card tuple is
        # built lazily at its *first* active occupant's observation — which
        # runs before any program on that node has acted, and only
        # co-located programs can publish to a node, so the lazy build
        # always sees pre-round cards.  Card publications therefore defer
        # their cache invalidation to after the compute loop.
        # movers as two parallel lists: iterating them with zip() reuses
        # the yielded pair tuple, where a list of (robot, port) tuples
        # would allocate one per mover per round
        movers_r: List[RobotState] = []
        movers_p: List[int] = []
        followers_once: List[RobotState] = []
        terminators: List[RobotState] = []
        published: List[int] = []  # nodes with a card published this round

        for r in active:  # already in label order
            node = r.node
            cards = cards_cache[node]
            if cards is None:
                occ = occ_lists[node]
                # occupant lists are label-sorted; no re-sort needed
                cards = (occ[0].card,) if len(occ) == 1 else tuple(x.card for x in occ)
                cards_cache[node] = cards
            r.active_rounds += 1
            try:
                action = r.send(Observation(rnd, deg_arr[node], r.entry_port, cards))
            except StopIteration:
                raise ProtocolViolation(
                    f"robot {r.label}: program returned without terminating"
                ) from None
            if action is None:
                raise ProtocolViolation(f"robot {r.label}: yielded None instead of an Action")
            if action.card is not None:
                self._apply_card(r, action)
                published.append(r.node)
            if action.note and trace is not None:
                trace.record(rnd, "note", r.label, action.note)

            kind = action.kind
            if kind == MOVE:  # tested first: the hot kind by far
                port = action.port
                # reject None before the range check; `port or 0` would
                # treat port 0 and None alike
                if port is None or not 0 <= port < deg_arr[r.node]:
                    raise ProtocolViolation(
                        f"robot {r.label}: invalid port {port} on a degree-"
                        f"{deg_arr[r.node]} node"
                    )
                movers_r.append(r)
                movers_p.append(port)
            elif kind == STAY:
                pass
            elif kind == SLEEP:
                if action.wake_round is not None and action.wake_round <= rnd:
                    raise ProtocolViolation(
                        f"robot {r.label}: sleep until round {action.wake_round} "
                        f"is not in the future (now {rnd})"
                    )
                if action.wake_round is None and not action.wake_on_meet:
                    raise ProtocolViolation(
                        f"robot {r.label}: unwakeable forever-sleep"
                    )
                r.status = SLEEPING
                r.wake_round = action.wake_round
                r.wake_on_meet = action.wake_on_meet
                self._dormant += 1
                self._active.remove(r.rid)
                if action.wake_round is not None:
                    heapq.heappush(self._wake_heap, (action.wake_round, r.rid))
                if action.wake_on_meet:
                    self._meet_sleepers += 1
                if trace is not None:
                    trace.record(rnd, "sleep", r.label, action.wake_round)
            elif kind == FOLLOW:
                self._check_follow_target(r, action.target)
                r.status = FOLLOWING
                r.leader_label = action.target
                r.wake_round = action.wake_round
                r.on_leader_terminate = action.on_leader_terminate
                self._dormant += 1
                self._active.remove(r.rid)
                if action.wake_round is not None:
                    heapq.heappush(self._wake_heap, (action.wake_round, r.rid))
                self._followers_of.setdefault(action.target, []).append(r)
                if trace is not None:
                    trace.record(rnd, "follow", r.label, action.target)
            elif kind == FOLLOW_ONCE:
                self._check_follow_target(r, action.target)
                r.leader_label = action.target
                followers_once.append(r)
            elif kind == TERMINATE:
                terminators.append(r)
            else:  # pragma: no cover - factory methods make this unreachable
                raise ProtocolViolation(f"robot {r.label}: unknown action kind {kind}")

        # deferred card-publication invalidation (see loop comment above)
        for node in published:
            cards_cache[node] = None

        # --- resolve follows ------------------------------------------
        # Iterative forward propagation from this round's movers over the
        # reverse leader->followers index: a follower chain ending in a
        # mover inherits its port; chains ending anywhere else (stay,
        # sleep, terminate, cycle) stay put, so they never need visiting.
        followers_of = self._followers_of
        assigned: Optional[List[Tuple[RobotState, int]]] = None
        if followers_of or followers_once:
            once_by_leader: Dict[int, List[RobotState]] = {}
            for f in followers_once:
                once_by_leader.setdefault(f.leader_label, []).append(f)
            assigned = []
            stack = list(zip(movers_r, movers_p))
            while stack:
                r, port = stack.pop()
                label = r.label
                fs = followers_of.get(label)
                if fs:
                    for f in fs:
                        assigned.append((f, port))
                        stack.append((f, port))
                fs = once_by_leader.get(label)
                if fs:
                    for f in fs:
                        assigned.append((f, port))
                        stack.append((f, port))
            # one-round follows release leadership after resolution
            for f in followers_once:
                f.leader_label = None
            # movers apply first (label order), then followers in label
            # order — the application order of the reference scheduler
            assigned.sort(key=_moving_label)

        # --- apply moves simultaneously --------------------------------
        # Arrival tracking only matters while a wake_on_meet sleeper
        # exists; tracing is hoisted out of the loop entirely.
        meet_watch = self._meet_sleepers > 0
        arrivals = set()
        occupied = self._occupied
        if trace is None:
            for r, port in zip(movers_r, movers_p):
                old = r.node
                i = row[old] + port
                new = nbr_arr[i]
                ol = occ_lists[old]
                ol.remove(r)
                cards_cache[old] = None
                if not ol:
                    occupied -= 1
                nl = occ_lists[new]
                if nl:
                    lab = r.label
                    j = len(nl)
                    while j and nl[j - 1].label > lab:
                        j -= 1
                    nl.insert(j, r)
                else:
                    nl.append(r)
                    occupied += 1
                cards_cache[new] = None
                r.node = new
                r.entry_port = ent_arr[i]
                r.moves += 1
                if meet_watch:
                    arrivals.add(new)
            self._occupied = occupied
        else:
            # traced path: _apply_move maintains self._occupied directly
            for r, port in zip(movers_r, movers_p):
                entry = self._apply_move(r, port, arrivals, meet_watch)
                trace.record(rnd, "move", r.label, (port, entry))
        # follower moves (rare path, so per-event trace checks are fine):
        # validated here, in application order, because a non-co-located
        # follower (possible in non-strict mode) can inherit a port its own
        # node lacks and the raw CSR indexing must never see it.  Raising
        # mid-application leaves the same partially-applied state and error
        # as the seed scheduler's graph.traverse.
        if assigned:
            for f, port in assigned:
                if not 0 <= port < deg_arr[f.node]:
                    raise PortGraphError(
                        f"node {f.node} has degree {deg_arr[f.node]}; port {port} is invalid"
                    )
                entry = self._apply_move(f, port, arrivals, meet_watch)
                if trace is not None:
                    trace.record(rnd, "move", f.label, (port, entry))

        # --- wake sleepers on arrivals ---------------------------------
        if arrivals:
            woken = self._woken
            for r in self.robots:
                if (
                    r.status == SLEEPING
                    and r.wake_on_meet
                    and r.node in arrivals
                ):
                    r.woken_early = True
                    woken.append(r.rid)

        # --- terminations + cascade ------------------------------------
        if terminators:
            for r in terminators:
                self._terminate(r)
            self._cascade_terminations()

        # --- bookkeeping ------------------------------------------------
        metrics = self.metrics
        if metrics.first_gather_round is None and self._occupied == 1:
            metrics.first_gather_round = rnd
        if self.replay is not None:
            self.replay.snapshot(rnd, self.positions())
        metrics.rounds_executed += 1
        self.round = rnd + 1

    # ------------------------------------------------------------------
    def _apply_card(self, r: RobotState, action: Action) -> None:
        # NB: does *not* invalidate the node's card cache — the hot loop
        # defers that until every active robot has observed (cards are
        # "as of the start of the round")
        if action.card is not None:
            card = dict(action.card)
            card["id"] = r.label  # the label is not forgeable
            r.card = card
            bits = card_bits(card)
            if bits > self.metrics.max_card_bits:
                self.metrics.max_card_bits = bits

    def _check_follow_target(self, r: RobotState, target: Optional[int]) -> None:
        if target is None or target not in self.by_label:
            raise ProtocolViolation(f"robot {r.label}: follow target {target} unknown")
        if target == r.label:
            raise ProtocolViolation(f"robot {r.label}: cannot follow itself")
        if self.strict and self.by_label[target].node != r.node:
            raise ProtocolViolation(
                f"robot {r.label}: follow target {target} is not co-located"
            )

    def _apply_move(self, r: RobotState, port: int, arrivals: set, meet_watch: bool) -> int:
        """Apply one resolved move with full occupancy/cache bookkeeping.

        Cold-path helper (traced movers and follower moves); the untraced
        mover loop in ``_step_general`` inlines the same logic over local
        bindings.  Returns the entry port for trace recording.
        """
        csr = self._csr
        old = r.node
        i = csr.row_offsets[old] + port
        new = csr.neighbor[i]
        entry = csr.entry_port[i]
        occ_lists = self._occ
        cards_cache = self._cards
        ol = occ_lists[old]
        ol.remove(r)
        cards_cache[old] = None
        if not ol:
            self._occupied -= 1
        nl = occ_lists[new]
        if nl:
            lab = r.label
            j = len(nl)
            while j and nl[j - 1].label > lab:
                j -= 1
            nl.insert(j, r)
        else:
            nl.append(r)
            self._occupied += 1
        cards_cache[new] = None
        r.node = new
        r.entry_port = entry
        r.moves += 1
        if meet_watch:
            arrivals.add(new)
        return entry

    def _unfollow(self, r: RobotState) -> None:
        """Drop ``r`` from the reverse leader->followers index."""
        lst = self._followers_of.get(r.leader_label)
        if lst is not None:
            try:
                lst.remove(r)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not lst:
                del self._followers_of[r.leader_label]

    def _terminate(self, r: RobotState) -> None:
        if r.status == TERMINATED:
            return
        if r.status == FOLLOWING:
            self._unfollow(r)  # already counted dormant
        elif r.status == ACTIVE:
            self._dormant += 1
            self._active.remove(r.rid)
        r.status = TERMINATED
        r.terminated_round = self.round
        self._alive -= 1
        # terminations run after the round commits _occupied, so the O(1)
        # counter answers "all gathered" without scanning robots
        if self._occupied != 1:
            self.metrics.terminations_all_gathered = False
        if self.trace is not None:
            self.trace.record(self.round, "terminate", r.label, None)
        try:
            r.gen.close()
        except RuntimeError:  # pragma: no cover - generator refusing to close
            pass

    def _cascade_terminations(self) -> None:
        """Followers whose (transitive) leader terminated react per their mode.

        Single pass over the reverse leader->followers index: every affected
        follower is visited exactly once.  Processing order replicates the
        reference scheduler's iterated label-order fixpoint — conceptually,
        "pass ``p``" contains followers whose enabling termination happened
        in pass ``p-1`` at a *larger* label (they would have been reached
        later in the same scan) join pass ``p-1`` instead — by ordering the
        queue on ``(pass, label)``.
        """
        followers_of = self._followers_of
        if not followers_of:
            return
        by_label = self.by_label
        heap: List[Tuple[int, int, RobotState]] = []
        # Seed with followers of every already-terminated leader (pass 1).
        for llabel, flist in list(followers_of.items()):
            if by_label[llabel].status == TERMINATED:
                for f in flist:
                    heap.append((1, f.label, f))
        heapq.heapify(heap)
        while heap:
            pss, flabel, f = heapq.heappop(heap)
            if f.status != FOLLOWING:  # pragma: no cover - defensive
                continue
            if f.on_leader_terminate == "terminate":
                self._terminate(f)
                flist = followers_of.get(flabel)
                if flist:
                    for g in flist:
                        gpass = pss if g.label > flabel else pss + 1
                        heapq.heappush(heap, (gpass, g.label, g))
            else:  # "wake"
                f.woken_early = True
                self._woken.append(f.rid)


def _moving_label(entry: Tuple[RobotState, int]) -> int:
    return entry[0].label
