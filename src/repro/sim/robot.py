"""Robot programs and per-robot simulator state.

A robot *program* is a generator function::

    def program(ctx: RobotContext):
        obs = yield                      # bootstrap: receive round-0 observation
        while ...:
            obs = yield Action.move(0)   # act, receive next observation

The first statement must be a bare ``yield`` (the scheduler primes the
generator before round 0).  Afterwards, every ``yield action`` receives the
observation of the round in which the robot next acts — the following round
for ordinary actions, the wake round for sleeps and persistent follows.

Programs interact with the world *only* through observations and actions;
:class:`RobotContext` carries the static knowledge the model grants (the
robot's label and ``n``) plus any explicitly granted extras (e.g. the
maximum degree for the Remark-14 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from repro.sim.actions import Action, Observation

__all__ = ["RobotContext", "RobotSpec", "Program", "ProgramFactory"]

Program = Generator[Optional[Action], Observation, None]
ProgramFactory = Callable[["RobotContext"], Program]


@dataclass
class RobotContext:
    """Static, model-sanctioned knowledge of one robot.

    Attributes
    ----------
    label:
        The robot's unique ID in ``[1, n^b]`` (the paper's label ``ℓ``).
    n:
        Number of nodes of the graph — the only graph parameter robots know.
    knowledge:
        Explicitly granted extra knowledge for ablations; keys used by the
        library: ``"max_degree"`` (Remark 14), ``"hop_distance"``
        (Remark 13).  Absent keys mean "unknown", as in the base model.
    stats:
        A scratch dict the program may fill with algorithm-specific metrics
        (map sizes, phase boundaries, ...).  Collected into the run result.
    """

    label: int
    n: int
    knowledge: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RobotSpec:
    """What the experimenter provides per robot: label, start node, program."""

    label: int
    start: int
    factory: ProgramFactory
    knowledge: Dict[str, Any] = field(default_factory=dict)


# Robot status constants used by the scheduler.
ACTIVE = 0
SLEEPING = 1
FOLLOWING = 2
TERMINATED = 3

STATUS_NAMES = {ACTIVE: "active", SLEEPING: "sleeping", FOLLOWING: "following", TERMINATED: "terminated"}


class RobotState:
    """Scheduler-side mutable state of one robot (not robot-visible).

    Under the struct-of-arrays engine (:mod:`repro.sim.scheduler`) the hot
    fields — ``node``, ``entry_port``, ``moves``, ``active_rounds`` — live
    in the scheduler's flat arrays while SoA rounds run, and these
    attributes are synchronized only at regime transitions and run
    boundaries.  Mid-run introspection goes through
    ``Scheduler.positions()``; after ``run()`` returns (and throughout the
    seed :class:`~repro.sim.reference.ReferenceScheduler`) the attributes
    are authoritative.  Cold fields (``status``, ``wake_round``, ``card``,
    follow bookkeeping) are authoritative at all times.
    """

    __slots__ = (
        "rid",
        "label",
        "ctx",
        "gen",
        "send",
        "node",
        "entry_port",
        "card",
        "status",
        "wake_round",
        "wake_on_meet",
        "woken_early",
        "leader_label",
        "on_leader_terminate",
        "moves",
        "active_rounds",
        "terminated_round",
    )

    def __init__(self, rid: int, spec: RobotSpec, n: int):
        self.rid = rid
        self.label = spec.label
        self.ctx = RobotContext(label=spec.label, n=n, knowledge=dict(spec.knowledge))
        self.gen = spec.factory(self.ctx)
        # bound once: the scheduler activates programs every round, and the
        # pre-bound method skips a per-activation attribute lookup
        self.send = self.gen.send
        self.node = spec.start
        self.entry_port: Optional[int] = None
        self.card: Dict[str, Any] = {"id": spec.label}
        self.status = ACTIVE
        self.wake_round: Optional[int] = None
        self.wake_on_meet = False
        self.woken_early = False
        self.leader_label: Optional[int] = None
        self.on_leader_terminate = "terminate"
        self.moves = 0
        self.active_rounds = 0
        self.terminated_round: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"RobotState(label={self.label}, node={self.node}, "
            f"status={STATUS_NAMES[self.status]})"
        )
