"""Replay recording and ASCII visualization of simulation runs.

A :class:`ReplayRecorder` snapshots robot positions after every *executed*
round (fast-forwarded idle stretches collapse to a single unchanged frame).
The recording can be rendered as an ASCII timeline — robots as columns of a
node-strip — which is the debugging view the examples use to *show* an
algorithm working rather than assert it.

Intended for small instances (the frames are dense); recorders accept a
``max_frames`` cap and then subsample by keeping every ``stride``-th frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Frame", "ReplayRecorder", "render_strip"]


@dataclass(frozen=True)
class Frame:
    """Positions (label -> node) at the end of one executed round."""

    round: int
    positions: Tuple[Tuple[int, int], ...]  # sorted (label, node) pairs

    def as_dict(self) -> Dict[int, int]:
        """The frame's positions as a label -> node mapping."""
        return dict(self.positions)


class ReplayRecorder:
    """Collects per-round position frames.

    Pass to ``World.run(replay=...)``.  With ``changes_only=True`` (default)
    a frame is stored only when some robot moved — waiting-dominated
    schedules stay compact.
    """

    def __init__(self, max_frames: int = 10_000, changes_only: bool = True):
        if max_frames < 2:
            raise ValueError("max_frames must be >= 2")
        self.frames: List[Frame] = []
        self.max_frames = max_frames
        self.changes_only = changes_only
        self._last: Optional[Tuple[Tuple[int, int], ...]] = None
        self.dropped = 0

    def snapshot(self, round_: int, positions: Dict[int, int]) -> None:
        """Record one end-of-round frame (deduplicated, subsampled at cap)."""
        snap = tuple(sorted(positions.items()))
        if self.changes_only and snap == self._last:
            return
        self._last = snap
        if len(self.frames) >= self.max_frames:
            # subsample: drop every other frame, double the effective stride
            self.frames = self.frames[::2]
            self.dropped += 1
        self.frames.append(Frame(round_, snap))

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)


def render_strip(
    recorder: ReplayRecorder,
    n: int,
    max_rows: int = 40,
    node_width: Optional[int] = None,
) -> str:
    """Render frames as an ASCII timeline.

    One line per (sub-sampled) frame: nodes as cells ``0 .. n-1``, each cell
    showing how many robots occupy it (``.`` for zero, the count for 1-9,
    ``*`` for 10+).  Works for any graph — the strip is node-index order,
    so it reads most naturally on paths and rings.
    """
    frames = list(recorder.frames)
    if not frames:
        return "(no frames recorded)"
    if len(frames) > max_rows:
        stride = (len(frames) + max_rows - 1) // max_rows
        sampled = frames[::stride]
        if sampled[-1] is not frames[-1]:
            sampled.append(frames[-1])
        frames = sampled
    width = node_width if node_width is not None else 1
    round_pad = len(f"{frames[-1].round}")

    lines = [
        f"{'round'.rjust(round_pad)} | "
        + " ".join(str(v % 10).rjust(width) for v in range(n))
    ]
    lines.append("-" * len(lines[0]))
    for fr in frames:
        counts = [0] * n
        for _label, node in fr.positions:
            counts[node] += 1
        cells = []
        for c in counts:
            if c == 0:
                cells.append(".".rjust(width))
            elif c < 10:
                cells.append(str(c).rjust(width))
            else:
                cells.append("*".rjust(width))
        lines.append(f"{str(fr.round).rjust(round_pad)} | " + " ".join(cells))
    return "\n".join(lines)
