"""Event tracing for simulation runs.

Tracing is optional (``World.run(trace=TraceRecorder())``) and records a
flat list of :class:`Event` tuples.  Events are intended for debugging and
the examples' narrative output; metrics aggregation lives in
:mod:`repro.sim.metrics` and does not require tracing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

__all__ = ["Event", "TraceRecorder"]


@dataclass(frozen=True)
class Event:
    """One trace record.

    ``kind`` is one of ``move``, ``meet``, ``wake``, ``sleep``, ``follow``,
    ``terminate``, ``note``, ``jump``.  ``robot`` is the robot label (or
    ``None`` for scheduler-level events such as time jumps); ``data`` is a
    small kind-specific payload.
    """

    round: int
    kind: str
    robot: Optional[int]
    data: Any = None


class TraceRecorder:
    """Collects events; optionally bounded to keep long runs cheap.

    Parameters
    ----------
    limit:
        Maximum number of events retained (oldest kept).  ``None`` keeps
        everything — fine for examples, unwise for ``Õ(n^5)`` schedules.
    kinds:
        If given, only these event kinds are recorded.
    """

    def __init__(self, limit: Optional[int] = None, kinds: Optional[Iterable[str]] = None):
        self.events: List[Event] = []
        self.limit = limit
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.dropped = 0

    def record(self, round_: int, kind: str, robot: Optional[int], data: Any = None) -> None:
        """Append one event, honouring the kind filter and the size cap."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(Event(round_, kind, robot, data))

    def of_kind(self, kind: str) -> List[Event]:
        """All recorded events of one kind, in record order."""
        return [e for e in self.events if e.kind == kind]

    def for_robot(self, label: int) -> List[Event]:
        """All recorded events attributed to one robot, in record order."""
        return [e for e in self.events if e.robot == label]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def summary(self) -> str:
        """Human-readable one-line-per-event dump (examples use this)."""
        lines = []
        for e in self.events:
            who = f"robot {e.robot}" if e.robot is not None else "scheduler"
            lines.append(f"[round {e.round:>8}] {who:>12} {e.kind}: {e.data}")
        if self.dropped:
            lines.append(f"... and {self.dropped} more events dropped (limit={self.limit})")
        return "\n".join(lines)
