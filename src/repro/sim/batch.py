"""Batched replica engine: lockstep multi-seed simulation.

The probabilistic experiments in this repository are *replica campaigns*:
the same graph and program run under dozens of seeds (different placements,
labels, and program randomness).  Running each replica through its own
:class:`~repro.sim.world.World` pays the full scheduler overhead R times;
this module runs R replicas **in lockstep** over shared immutable data —
one graph, one compiled CSR kernel, one set of hoisted adjacency bindings —
and retires replicas individually as they terminate.

Architecture
------------

Each replica is backed by a real :class:`~repro.sim.scheduler.Scheduler`
(sharing the one graph), so every replica owns exactly the state a scalar
run would own.  The batch layer adds two things on top:

* **R-wide parallel hot-state views** — ``_views[j]`` caches replica
  ``j``'s struct-of-arrays hot state (``_pos``/``_entry``/``_moves``/
  ``_own``/``_sends``/``_obs``/``_labels``) as one tuple, so the lockstep
  loop reaches each replica's arrays without per-round attribute walks —
  plus backend-managed R-wide bookkeeping arrays (per-replica rounds,
  moves, executed-round and error counters).  The bookkeeping backend is
  NumPy when importable and a pure-list implementation otherwise; both are
  integer-exact, so results are bit-identical either way (the differential
  suite runs both).
* **A fused round loop** — the common regime of
  :meth:`Scheduler._step_soa` (every due robot active, at most one shared
  node, no pending wakes/followers/meet-sleepers, no self-loop) is inlined
  here with the CSR bindings hoisted *once for all replicas* and the
  per-round scratch lists shared across replicas, eliminating the per-round
  call/allocation overhead a scalar loop pays R times.  Any round outside
  that regime falls back to the replica's own ``Scheduler._step()`` — the
  full engine, every semantic — so correctness never depends on the fused
  loop covering a case.  The fused body mirrors ``_step_soa`` statement for
  statement (``tests/test_batch_differential.py`` pins traces, positions,
  statuses, and every metric bit-for-bit against scalar runs).

Failure isolation matches the runtime layer's: an exception inside one
replica (protocol violation, deadlock, timeout) retires that replica with
an error outcome — message-identical to what the scalar path raises — and
the rest of the batch keeps running.

The engine is deliberately *clean-model only*: no tracing, no replay, no
activation models, no fault plans.  Those regimes are per-replica
divergent by nature; the runtime layer (:mod:`repro.runtime`) only groups
specs into batches when they qualify (see ``RunSpec.is_clean``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graphs.port_graph import PortGraph
from repro.sim.actions import MOVE, STAY
from repro.sim.errors import ProtocolViolation
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler
from repro.sim.world import DEFAULT_MAX_ROUNDS, RunResult, package_result

try:  # NumPy is a declared dependency, but the engine must not require it:
    import numpy as _np  # the pure-list backend keeps results bit-identical
except ImportError:  # pragma: no cover - exercised via backend="list"
    _np = None

__all__ = [
    "ReplicaBatch",
    "ReplicaOutcome",
    "BatchSummary",
    "HAVE_NUMPY",
    "resolve_backend",
    "make_replica_batch",
    "BACKENDS",
]

HAVE_NUMPY = _np is not None


# ---------------------------------------------------------------------------
# Bookkeeping backends
# ---------------------------------------------------------------------------


class _ListBackend:
    """Pure-Python R-wide integer arrays (always available)."""

    name = "list"

    @staticmethod
    def zeros(n: int):
        return [0] * n

    @staticmethod
    def total(arr) -> int:
        return sum(arr)

    @staticmethod
    def maximum(arr) -> int:
        return max(arr) if arr else 0

    @staticmethod
    def count_nonzero(arr) -> int:
        return sum(1 for v in arr if v)

    @staticmethod
    def tolist(arr) -> List[int]:
        return list(arr)


class _NumpyBackend:
    """R-wide int64 NumPy arrays; aggregation runs vectorized.

    Every operation is integer-exact, so summaries are bit-identical to the
    list backend's — NumPy buys aggregation speed at large R, nothing else.
    """

    name = "numpy"

    @staticmethod
    def zeros(n: int):
        return _np.zeros(n, dtype=_np.int64)

    @staticmethod
    def total(arr) -> int:
        return int(arr.sum())

    @staticmethod
    def maximum(arr) -> int:
        return int(arr.max()) if arr.size else 0

    @staticmethod
    def count_nonzero(arr) -> int:
        return int(_np.count_nonzero(arr))

    @staticmethod
    def tolist(arr) -> List[int]:
        return [int(v) for v in arr]


if HAVE_NUMPY:

    class _Numpy2DBackend(_NumpyBackend):
        """Bookkeeping for the replica-major 2D engine.

        The R-wide bookkeeping ops are exactly :class:`_NumpyBackend`'s —
        what changes under ``backend="numpy2d"`` is the *driver*:
        :func:`make_replica_batch` returns a
        :class:`~repro.sim.batch2d.Replica2DBatch`, which front-runs the
        lockstep loop with whole-replica array kernels (see that module).
        """

        name = "numpy2d"


#: Selectable backends by name; ``"auto"`` prefers NumPy when importable.
BACKENDS = {"list": _ListBackend}
if HAVE_NUMPY:
    BACKENDS["numpy"] = _NumpyBackend
    BACKENDS["numpy2d"] = _Numpy2DBackend


def resolve_backend(name: str):
    """The backend class for ``name`` (``"auto"``/``"numpy2d"``/``"numpy"``/``"list"``).

    ``"auto"`` prefers the plain NumPy bookkeeping backend: the 2D
    replica-major driver only pays off for fleets that declare a
    :class:`~repro.sim.vector.VectorProgram`, so it stays opt-in.
    """
    if name == "auto":
        return BACKENDS["numpy"] if HAVE_NUMPY else BACKENDS["list"]
    try:
        return BACKENDS[name]
    except KeyError:
        known = sorted(BACKENDS) + ["auto"]
        raise ValueError(f"unknown batch backend {name!r}; known: {known}") from None


def make_replica_batch(
    graph: PortGraph,
    fleets: Sequence[Sequence[RobotSpec]],
    strict: bool = False,
    backend: str = "auto",
) -> "ReplicaBatch":
    """Construct the right batch engine for ``backend``.

    ``"numpy2d"`` selects the replica-major
    :class:`~repro.sim.batch2d.Replica2DBatch` (imported lazily — the
    module needs NumPy); every other name builds a plain
    :class:`ReplicaBatch`.  All engines are bit-identical on results; the
    name only picks the execution strategy.
    """
    ops = resolve_backend(backend)  # raises on unknown names, resolves auto
    if ops.name == "numpy2d":
        from repro.sim.batch2d import Replica2DBatch

        return Replica2DBatch(graph, fleets, strict=strict)
    return ReplicaBatch(graph, fleets, strict=strict, backend=ops.name)


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------


@dataclass
class ReplicaOutcome:
    """What one replica produced: a result, or an isolated failure.

    ``error``/``error_type`` carry the stringified exception exactly as the
    scalar path (``repro.runtime.spec.execute_spec``) would report it, so a
    batched campaign and a scalar campaign fail identically.
    """

    result: Optional[RunResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff this replica produced a result and no error."""
        return self.result is not None and self.error is None


@dataclass
class BatchSummary:
    """Aggregate accounting for one :meth:`ReplicaBatch.run` call."""

    replicas: int = 0
    completed: int = 0
    failed: int = 0
    rounds_executed_total: int = 0
    total_moves: int = 0
    max_rounds: int = 0
    backend: str = "list"


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class ReplicaBatch:
    """R seed-replicas of one configuration, run in lockstep.

    Parameters
    ----------
    graph:
        The shared (immutable) port graph every replica runs on.
    fleets:
        One list of :class:`RobotSpec` per replica.  Replicas are
        independent — different starts, labels, and program instances —
        but share the graph and its compiled CSR kernel.
    strict:
        Passed through to each replica's scheduler.
    backend:
        ``"auto"`` (NumPy when importable), ``"numpy"``, or ``"list"`` —
        selects the R-wide bookkeeping backend.  Results are bit-identical
        across backends.
    """

    def __init__(
        self,
        graph: PortGraph,
        fleets: Sequence[Sequence[RobotSpec]],
        strict: bool = False,
        backend: str = "auto",
    ):
        self.graph = graph
        self.ops = resolve_backend(backend)
        # CSR bindings shared by every replica's slice (one graph, one
        # compiled kernel) and the six per-round scratch lists of
        # Scheduler._step_soa, allocated once for the whole batch.
        csr = graph.csr
        self._row = csr.row_offsets
        self._nbr = csr.neighbor
        self._ent = csr.entry_port
        self._deg = csr.degree
        self._scratch: tuple = ([], [], [], [], [], [])
        self.scheds: List[Optional[Scheduler]] = []
        self.outcomes: List[Optional[ReplicaOutcome]] = []
        # R-wide parallel views of each replica's SoA hot state; one tuple
        # per replica so the fused loop unpacks 7 arrays in one indexed load
        self._views: List[Optional[tuple]] = []
        for specs in fleets:
            # Construction (label validation, program priming) can raise per
            # replica; isolate it exactly like the scalar path would.
            try:
                sched = Scheduler(graph, list(specs), strict=strict)
            except Exception as exc:
                self.scheds.append(None)
                self._views.append(None)
                self.outcomes.append(
                    ReplicaOutcome(error=str(exc), error_type=type(exc).__name__)
                )
                continue
            self.scheds.append(sched)
            self._views.append(
                (
                    sched._pos,
                    sched._entry,
                    sched._moves,
                    sched._own,
                    sched._sends,
                    sched._obs,
                    sched._labels,
                    [0] * len(sched._pos),  # reusable prev-position buffer
                )
            )
            self.outcomes.append(None)
        self.summary = BatchSummary(replicas=len(self.scheds), backend=self.ops.name)

    #: Rounds one replica may advance per lockstep turn.  Purely a
    #: scheduling knob — replicas are independent, so the slice size cannot
    #: affect any result; it only amortizes the per-turn gate checks and
    #: view unpacking over many pure-hot rounds.
    SLICE = 64

    # ------------------------------------------------------------------
    def run(
        self, max_rounds: int = DEFAULT_MAX_ROUNDS, stop_on_gather: bool = False
    ) -> List[ReplicaOutcome]:
        """Run every replica to completion; outcomes in replica order.

        Per-replica semantics are those of ``Scheduler.run`` +
        ``package_result``: the same ``stop_on_gather`` early exit, the same
        ``max_rounds`` timeout (reported as an error outcome instead of a
        raised exception), the same finalized metrics.

        The driver is a two-level loop.  The outer *turn* applies the full
        gate stack — ``Scheduler.run``'s checks, then the regime checks of
        ``_step`` — exactly as scalar execution would.  Once a replica is
        known to be in the pure-hot regime, an inner *slice*
        (:meth:`_slice_pair` for two-robot rendezvous fleets,
        :meth:`_slice_general` otherwise) advances it up to :data:`SLICE`
        rounds with everything hoisted: the CSR arrays, the replica's view
        tuple, and a precomputed ``stop_round`` that folds the timeout
        bound, the next scheduled wake, and the slice budget into one
        comparison.  Pure-hot rounds (moves/stays only) cannot change any
        gated state, so the hoisting is sound; the moment a *cold* action
        appears (sleep/follow/terminate/card — handled through the
        scheduler's own ``_soa_cold``) the slice ends after committing that
        round, and the next turn re-evaluates every gate.
        """
        ops = self.ops
        R = len(self.scheds)
        # R-wide bookkeeping (backend-managed): filled at retirement,
        # aggregated once at the end.
        rounds_arr = ops.zeros(R)
        executed_arr = ops.zeros(R)
        moves_arr = ops.zeros(R)
        error_arr = ops.zeros(R)

        scheds = self.scheds
        views = self._views
        outcomes = self.outcomes
        fused_ok = not self.graph.csr.has_self_loop
        slice_budget = self.SLICE
        scratch = self._scratch

        live = [j for j in range(R) if outcomes[j] is None]
        # Replica-major front-run: subclasses (Replica2DBatch) may retire
        # whole replicas through array kernels before the lockstep loop ever
        # steps a generator.  The base engine keeps every replica.
        live = self._vector_phase(
            live, rounds_arr, executed_arr, moves_arr, error_arr,
            max_rounds, stop_on_gather,
        )
        while live:
            nxt: List[int] = []
            for j in live:
                sched = scheds[j]
                try:
                    # --- Scheduler.run loop gates, in its exact order ----
                    if sched._alive == 0:
                        self._retire(j, rounds_arr, executed_arr, moves_arr)
                        continue
                    if stop_on_gather and sched.metrics.first_gather_round is not None:
                        self._retire(j, rounds_arr, executed_arr, moves_arr)
                        continue
                    rnd = sched.round
                    if rnd > max_rounds:
                        raise sched._timeout_error()

                    # --- regime gate (mirrors _step + _step_soa entry) ---
                    # Wakes due or pending early-woken robots, followers,
                    # meet-sleepers, or a self-loop graph: the replica's own
                    # engine handles the round with full semantics.
                    heap = sched._wake_heap
                    if (
                        not fused_ok
                        or sched._woken
                        or (heap and heap[0][0] <= rnd)
                        or sched._followers_of
                        or sched._meet_sleepers
                    ):
                        sched._step()
                        nxt.append(j)
                        continue
                    if not sched._active:
                        sched._step()  # fast-forward jump (or deadlock)
                        nxt.append(j)
                        continue
                    if not sched._soa_auth:
                        sched._states_to_soa()

                    # --- the hot slice -----------------------------------
                    # Everything that could end the fused regime at a known
                    # round folds into one bound: the timeout check fires at
                    # max_rounds + 1, the earliest scheduled wake needs
                    # _wake_due, and the slice budget caps the turn.  Cold
                    # actions and gathering are detected inside the slice.
                    stop_round = rnd + slice_budget
                    if stop_round > max_rounds:
                        stop_round = max_rounds + 1
                    if heap and heap[0][0] < stop_round:
                        stop_round = heap[0][0]
                    view = views[j]
                    if len(view[0]) == 2:
                        self._slice_pair(sched, view, rnd, stop_round, stop_on_gather)
                    else:
                        self._slice_general(sched, view, rnd, stop_round, stop_on_gather)
                    nxt.append(j)
                except Exception as exc:
                    # Isolated failure: the same exception the scalar path
                    # would surface, stringified identically; siblings
                    # keep running.  Scratch may be mid-round dirty.
                    for lst in scratch:
                        lst.clear()
                    error_arr[j] = 1
                    outcomes[j] = ReplicaOutcome(
                        error=str(exc), error_type=type(exc).__name__
                    )
            live = nxt

        failed_init = sum(
            1 for s, o in zip(scheds, outcomes) if s is None and o is not None
        )
        self.summary = BatchSummary(
            replicas=R,
            completed=sum(1 for o in outcomes if o is not None and o.ok),
            failed=ops.count_nonzero(error_arr) + failed_init,
            rounds_executed_total=ops.total(executed_arr),
            total_moves=ops.total(moves_arr),
            max_rounds=ops.maximum(rounds_arr),
            backend=ops.name,
        )
        return list(outcomes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def _vector_phase(
        self, live, rounds_arr, executed_arr, moves_arr, error_arr,
        max_rounds: int, stop_on_gather: bool,
    ) -> List[int]:
        """Hook for replica-major execution; returns the replicas still live.

        The base engine vectorizes nothing — every replica proceeds to the
        lockstep generator loop.  :class:`~repro.sim.batch2d.Replica2DBatch`
        overrides this to retire hot replicas through array kernels.
        """
        return live

    # ------------------------------------------------------------------
    # Slices: the fused _step_soa body, amortized over many rounds
    # ------------------------------------------------------------------
    def _slice_general(
        self, sched: Scheduler, view: tuple, rnd: int, stop_round: int,
        stop_on_gather: bool,
    ) -> None:
        """Advance one replica through pure-hot rounds until ``stop_round``,
        a cold action, gathering (under ``stop_on_gather``), or an error.

        The body mirrors ``Scheduler._step_soa`` statement for statement —
        including the closed-form single-duplicate extraction and the
        O(k log k) shared-node sweep — with the occupancy snapshot and the
        deferred counters kept in locals and flushed once per slice (the
        ``finally``), and the six per-round scratch lists shared across all
        replicas of the batch.  Cold actions delegate to the scheduler's
        own ``_soa_cold`` after syncing the deferred state it reads.
        """
        pos, entry, mvs, own, sends, obs_l, labels, prev_pos = view
        row = self._row
        nbr = self._nbr
        ent = self._ent
        degA = self._deg
        (movers_i, movers_p, terminators, followers_once, meet_new,
         deactivated) = self._scratch
        scratch = self._scratch
        active = sched._active
        metrics = sched.metrics
        first_gather = metrics.first_gather_round
        nrob = len(pos)
        occupied = sched._occupied
        posset = sched._posset
        ar_pending = sched._ar_pending
        executed = 0
        try:
            while rnd < stop_round:
                # start-of-round co-location snapshot (the excess-regime
                # split of Scheduler._step_soa)
                excess = nrob - occupied
                if excess == 0:
                    dup = -1
                    dup_cards = None
                    shared = None
                elif excess == 1:
                    dup = sum(pos) - sum(posset)
                    i1 = pos.index(dup)
                    i2 = pos.index(dup, i1 + 1)
                    dup_cards = (own[i1][0], own[i2][0])
                    shared = None
                else:
                    dup = -1
                    dup_cards = None
                    sp = sorted(pos)
                    shared = {}
                    remaining = excess
                    t = 0
                    last = nrob - 1
                    while remaining:
                        if sp[t] == sp[t + 1]:
                            node = sp[t]
                            rids = [pos.index(node)]
                            while t < last and sp[t + 1] == node:
                                rids.append(pos.index(node, rids[-1] + 1))
                                t += 1
                                remaining -= 1
                            shared[node] = tuple(own[q][0] for q in rids)
                        t += 1
                prev_pos[:] = pos
                ar_pending += 1
                track = False
                cold = False
                for i in active:
                    node = pos[i]
                    ob = obs_l[i]
                    ob.round = rnd
                    ob.degree = dg = degA[node]
                    ob.entry_port = entry[i]
                    if shared is None:
                        ob.cards = own[i] if node != dup else dup_cards
                    else:
                        cds = shared.get(node)
                        ob.cards = own[i] if cds is None else cds
                    try:
                        a = sends[i](ob)
                    except StopIteration:
                        raise ProtocolViolation(
                            f"robot {labels[i]}: program returned "
                            f"without terminating"
                        ) from None
                    try:
                        kind = a.hot_kind
                    except AttributeError:
                        if a is None:
                            raise ProtocolViolation(
                                f"robot {labels[i]}: yielded None "
                                f"instead of an Action"
                            ) from None
                        raise
                    if kind == MOVE:
                        p = a.port
                        try:
                            ok = 0 <= p < dg
                        except TypeError:  # port is None
                            ok = False
                        if not ok:
                            raise ProtocolViolation(
                                f"robot {labels[i]}: invalid port {p} "
                                f"on a degree-{dg} node"
                            )
                        slot = row[node] + p
                        pos[i] = nbr[slot]
                        entry[i] = ent[slot]
                        mvs[i] += 1
                        if track:
                            movers_i.append(i)
                            movers_p.append(p)
                    elif kind != STAY:
                        # _soa_cold reads/flushes the deferred active-round
                        # counter and (for terminations later this round)
                        # the scheduler's round; sync both ways.
                        cold = True
                        sched._ar_pending = ar_pending
                        sched.round = rnd
                        track = sched._soa_cold(
                            i, a, rnd, track,
                            movers_i, movers_p, terminators,
                            followers_once, meet_new, deactivated,
                            prev_pos,
                        )
                        ar_pending = sched._ar_pending

                # --- commit (mirrors _step_soa's tail) -------------------
                # Deactivations, follows, meet wake-ups, and terminations
                # can only exist after a cold action (the outer gate
                # excludes persistent followers), so the pure-hot commit is
                # just the occupancy snapshot and the counters.
                if cold:
                    if deactivated:
                        for rid in deactivated:
                            active.remove(rid)
                    if followers_once or sched._followers_of:
                        sched._soa_resolve_follows(
                            movers_i, movers_p, followers_once
                        )
                ps = set(pos)
                posset = ps
                occupied = len(ps)
                if cold:
                    if meet_new:
                        arrivals = {pos[m] for m in movers_i}
                        woken = sched._woken
                        robots = sched.robots
                        for rid in meet_new:
                            if pos[rid] in arrivals:
                                robots[rid].woken_early = True
                                woken.append(rid)
                    if terminators:
                        # _terminate reads the committed round and
                        # occupancy; sync them first.
                        sched.round = rnd
                        sched._posset = ps
                        sched._occupied = occupied
                        sched._ar_pending = ar_pending
                        sched._flush_ar()
                        ar_pending = 0
                        robots = sched.robots
                        for rid in terminators:
                            sched._terminate(robots[rid])
                        sched._cascade_terminations()
                executed += 1
                rnd += 1
                if first_gather is None and occupied == 1:
                    first_gather = rnd - 1
                    metrics.first_gather_round = first_gather
                    if stop_on_gather:
                        # the shared scratch must never leak into the next
                        # replica's slice, whatever the exit path
                        if cold:
                            for lst in scratch:
                                lst.clear()
                        break
                if cold:
                    # Cold actions may invalidate every hoisted gate (new
                    # wakes, followers, terminations); end the slice and
                    # re-gate next turn.
                    for lst in scratch:
                        lst.clear()
                    break
        finally:
            # One flush per slice: local state becomes the scheduler's
            # truth again (also on the error path, so isolated failures
            # report a consistent round).
            sched.round = rnd
            sched._posset = posset
            sched._occupied = occupied
            sched._ar_pending = ar_pending
            metrics.rounds_executed += executed

    def _slice_pair(
        self, sched: Scheduler, view: tuple, rnd: int, stop_round: int,
        stop_on_gather: bool,
    ) -> None:
        """:meth:`_slice_general` specialized for two-robot fleets.

        ``k = 2`` is the paper's rendezvous configuration and the regime
        where per-round scheduler overhead dominates the two program
        activations, so it gets the leanest loop: co-location is one
        position comparison (no ``set`` build, no index scans — the
        duplicate node and both card tuples are immediate), and the
        occupancy set is materialized only at slice exit and around
        terminations.  Semantics are pinned by the same differential suite
        as the general slice.
        """
        pos, entry, mvs, own, sends, obs_l, labels, prev_pos = view
        row = self._row
        nbr = self._nbr
        ent = self._ent
        degA = self._deg
        (movers_i, movers_p, terminators, followers_once, meet_new,
         deactivated) = self._scratch
        scratch = self._scratch
        active = sched._active
        metrics = sched.metrics
        first_gather = metrics.first_gather_round
        occupied = sched._occupied
        ar_pending = sched._ar_pending
        executed = 0
        try:
            while rnd < stop_round:
                if occupied == 2:
                    dup = -1
                    dup_cards = None
                else:  # both robots share the one occupied node
                    dup = pos[0]
                    dup_cards = (own[0][0], own[1][0])
                prev_pos[:] = pos
                ar_pending += 1
                track = False
                cold = False
                for i in active:
                    node = pos[i]
                    ob = obs_l[i]
                    ob.round = rnd
                    ob.degree = dg = degA[node]
                    ob.entry_port = entry[i]
                    ob.cards = own[i] if node != dup else dup_cards
                    try:
                        a = sends[i](ob)
                    except StopIteration:
                        raise ProtocolViolation(
                            f"robot {labels[i]}: program returned "
                            f"without terminating"
                        ) from None
                    try:
                        kind = a.hot_kind
                    except AttributeError:
                        if a is None:
                            raise ProtocolViolation(
                                f"robot {labels[i]}: yielded None "
                                f"instead of an Action"
                            ) from None
                        raise
                    if kind == MOVE:
                        p = a.port
                        try:
                            ok = 0 <= p < dg
                        except TypeError:  # port is None
                            ok = False
                        if not ok:
                            raise ProtocolViolation(
                                f"robot {labels[i]}: invalid port {p} "
                                f"on a degree-{dg} node"
                            )
                        slot = row[node] + p
                        pos[i] = nbr[slot]
                        entry[i] = ent[slot]
                        mvs[i] += 1
                        if track:
                            movers_i.append(i)
                            movers_p.append(p)
                    elif kind != STAY:
                        cold = True
                        sched._ar_pending = ar_pending
                        sched.round = rnd
                        track = sched._soa_cold(
                            i, a, rnd, track,
                            movers_i, movers_p, terminators,
                            followers_once, meet_new, deactivated,
                            prev_pos,
                        )
                        ar_pending = sched._ar_pending

                if cold:
                    if deactivated:
                        for rid in deactivated:
                            active.remove(rid)
                    if followers_once or sched._followers_of:
                        sched._soa_resolve_follows(
                            movers_i, movers_p, followers_once
                        )
                occupied = 1 if pos[0] == pos[1] else 2
                if cold:
                    if meet_new:
                        arrivals = {pos[m] for m in movers_i}
                        woken = sched._woken
                        robots = sched.robots
                        for rid in meet_new:
                            if pos[rid] in arrivals:
                                robots[rid].woken_early = True
                                woken.append(rid)
                    if terminators:
                        sched.round = rnd
                        sched._posset = set(pos)
                        sched._occupied = occupied
                        sched._ar_pending = ar_pending
                        sched._flush_ar()
                        ar_pending = 0
                        robots = sched.robots
                        for rid in terminators:
                            sched._terminate(robots[rid])
                        sched._cascade_terminations()
                executed += 1
                rnd += 1
                if first_gather is None and occupied == 1:
                    first_gather = rnd - 1
                    metrics.first_gather_round = first_gather
                    if stop_on_gather:
                        if cold:
                            for lst in scratch:
                                lst.clear()
                        break
                if cold:
                    for lst in scratch:
                        lst.clear()
                    break
        finally:
            sched.round = rnd
            sched._posset = set(pos)
            sched._occupied = occupied
            sched._ar_pending = ar_pending
            metrics.rounds_executed += executed

    # ------------------------------------------------------------------
    def _retire(self, j: int, rounds_arr, executed_arr, moves_arr) -> None:
        """Finalize replica ``j`` through the scalar code path and record
        its bookkeeping row."""
        sched = self.scheds[j]
        metrics = sched._finalize()
        self.outcomes[j] = ReplicaOutcome(result=package_result(sched))
        rounds_arr[j] = metrics.rounds
        executed_arr[j] = metrics.rounds_executed
        moves_arr[j] = metrics.total_moves
