"""Run metrics.

The paper's cost model counts *rounds*; movement is the expensive resource.
We additionally track per-robot moves and the rounds in which each robot was
actually computing ("active rounds"), which separates the oblivious schedule
length (rounds) from the real work performed (moves) — the distinction
EXPERIMENTS.md leans on when comparing measured curves with the theoretical
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["RunMetrics", "card_bits"]


def card_bits(card: Mapping[str, Any]) -> int:
    """A stable size estimate of a published card, in bits.

    The paper's closing question is what happens when message size is
    restricted; this estimator (string-serialized key/value payload, 8 bits
    per character) lets experiments audit how much the algorithms actually
    say.  It intentionally over-counts (field names included) — the audit is
    about orders of magnitude (`O(log n)` vs more), not byte exactness.
    """
    total = 0
    for k, v in card.items():
        total += 8 * (len(str(k)) + len(str(v)))
    return total


@dataclass
class RunMetrics:
    """Aggregated counters for one simulation run.

    Attributes
    ----------
    rounds:
        Total simulated rounds (including fast-forwarded idle rounds) —
        the value to compare against the paper's round bounds.
    rounds_executed:
        Rounds the scheduler actually processed (wall-clock proxy).
    total_moves:
        Sum of edge traversals over all robots (the "cost" metric of the
        wider literature).
    max_moves:
        Maximum edge traversals by a single robot.
    moves_by_robot / active_rounds_by_robot:
        Per-robot breakdowns keyed by label.
    first_gather_round:
        First round at which all robots were co-located, or ``None`` if it
        never happened.  This is "gathering time" without detection.
    last_termination_round:
        Round at which the final robot terminated (gathering *with
        detection* time), or ``None``.
    gathered_at_end:
        Whether all robots were co-located when the run ended.
    terminations_all_gathered:
        True iff every robot terminated while all robots were co-located —
        the correctness condition of gathering with detection.
    """

    rounds: int = 0
    rounds_executed: int = 0
    total_moves: int = 0
    max_moves: int = 0
    moves_by_robot: Dict[int, int] = field(default_factory=dict)
    active_rounds_by_robot: Dict[int, int] = field(default_factory=dict)
    first_gather_round: Optional[int] = None
    last_termination_round: Optional[int] = None
    gathered_at_end: bool = False
    terminations_all_gathered: bool = True
    #: Largest single card any robot ever published (see :func:`card_bits`)
    #: — the message-size audit of the paper's final future-work question.
    max_card_bits: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Every metric as one flat JSON-serializable dict."""
        return {
            "rounds": self.rounds,
            "rounds_executed": self.rounds_executed,
            "total_moves": self.total_moves,
            "max_moves": self.max_moves,
            "first_gather_round": self.first_gather_round,
            "last_termination_round": self.last_termination_round,
            "gathered_at_end": self.gathered_at_end,
            "terminations_all_gathered": self.terminations_all_gathered,
        }
