"""Pluggable activation models — who gets to act in a round.

The paper proves its bounds in the fully synchronous model: every
non-sleeping robot is activated in every round.  §1.4 names weaker
activation as an "alternative setting"; this module makes the activation
discipline a pluggable policy so scenarios can run the same algorithms
under weaker adversaries and *measure* what breaks.

A model is a small stateful object consulted once per scheduler round: it
receives the label-ordered list of robots that are due to act (awake,
woken, not terminated) and returns the label-ordered subset that actually
acts this round.  Robots left out stay exactly as they are — awake,
unobserved, eligible again next round.  Contract:

* the returned list must be a (not necessarily proper) subset of ``due``
  in the same label order — the scheduler's determinism rests on label
  order;
* it must be **non-empty** whenever ``due`` is non-empty — an adversary
  that stalls every robot forever makes no progress and proves nothing
  (the scheduler raises on a model that violates this);
* it must be deterministic: same construction + same call sequence, same
  selections.  Models may keep per-run state (and therefore must not be
  shared between concurrent schedulers).

``activation=None`` on the scheduler keeps the native synchronous hot
path with zero per-round overhead; :class:`SynchronousActivation` is the
explicit, behaviourally identical object form (used by the equivalence
tests).  The differential suite pins that the default path is bit-identical
to :class:`repro.sim.reference.ReferenceScheduler`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "ActivationModel",
    "SynchronousActivation",
    "RoundRobinActivation",
    "AdversarialActivation",
    "RandomActivation",
    "BiasedActivation",
    "ACTIVATION_MODELS",
    "build_activation",
    "activation_names",
]


class ActivationModel:
    """Base class: a per-run activation policy (see the module docstring)."""

    name = "abstract"

    def select(self, due: List[Any], round_: int) -> List[Any]:
        """Return the label-ordered subset of ``due`` that acts this round."""
        raise NotImplementedError

    def describe(self) -> str:
        """One human-readable line for logs and run manifests."""
        return self.name


class SynchronousActivation(ActivationModel):
    """The paper's model: everyone due acts.  Identical to ``activation=None``."""

    name = "sync"

    def select(self, due: List[Any], round_: int) -> List[Any]:
        """Activate every due robot."""
        return due


class RoundRobinActivation(ActivationModel):
    """Semi-synchronous: robots are split into ``groups`` buckets by label
    rank, and the buckets take turns, one per round.

    The turn advances every round the scheduler consults the model.  If the
    bucket whose turn it is has no due robot, the next bucket (cyclically)
    is tried, so the model always activates someone and every robot is
    activated infinitely often — the standard fairness condition.
    """

    name = "round-robin"

    def __init__(self, groups: int = 2):
        if groups < 1:
            raise ValueError("round-robin needs groups >= 1")
        self.groups = groups
        self._turn = 0

    def select(self, due: List[Any], round_: int) -> List[Any]:
        """Activate the first non-empty label-rank bucket, cyclically."""
        groups = self.groups
        turn = self._turn
        self._turn = turn + 1
        if not due:
            return due
        for offset in range(groups):
            bucket = (turn + offset) % groups
            chosen = [r for r in due if r.rid % groups == bucket]
            if chosen:
                return chosen
        return due  # pragma: no cover - some bucket above is non-empty

    def describe(self) -> str:
        """One human-readable line for logs and run manifests."""
        return f"round-robin over {self.groups} label-rank groups"


class AdversarialActivation(ActivationModel):
    """Deterministic adversary: activates the *fewest* robots permitted.

    Every round exactly ``min(budget, len(due))`` robots act — the model's
    minimum, since an empty selection would stall the run.  The adversary
    picks the due robots it has starved the longest (never-activated robots
    first), breaking ties by smaller label; that choice is maximally unfair
    round-to-round while still activating every robot infinitely often, so
    runs remain live and the damage measured is the *activation* damage,
    not a stall.
    """

    name = "adversarial"

    def __init__(self, budget: int = 1):
        if budget < 0:
            raise ValueError(
                "adversarial activation needs budget >= 0 "
                "(0 disarms the adversary: everyone due acts)"
            )
        self.budget = budget
        self._last_activated: Dict[int, int] = {}

    def select(self, due: List[Any], round_: int) -> List[Any]:
        """Activate the ``budget`` robots that have waited the longest."""
        if not due:
            # Explicit no-op: nothing to starve, no bookkeeping to touch.
            return due
        if self.budget == 0 or len(due) <= self.budget:
            # budget=0 is the disarmed adversary — synchronous behaviour,
            # but the starvation ledger still advances so re-arming mid-run
            # (a custom controller swapping budget) stays coherent.
            for r in due:
                self._last_activated[r.label] = round_
            return due
        last = self._last_activated
        ranked = sorted(due, key=lambda r: (last.get(r.label, -1), r.label))
        chosen = ranked[: self.budget]
        for r in chosen:
            last[r.label] = round_
        chosen.sort(key=lambda r: r.label)
        return chosen

    def describe(self) -> str:
        """One human-readable line for logs and run manifests."""
        return f"starve-longest adversary, budget {self.budget}/round"


class RandomActivation(ActivationModel):
    """Seeded stochastic model: each due robot acts with probability ``rate``.

    The schedule fuzzer's exploration workhorse.  A private
    ``random.Random(seed)`` drives every coin flip, so the same
    ``(seed, rate)`` always produces the same interleaving — runs are
    reproducible and cacheable like any deterministic model.  When every
    coin comes up tails the model activates one due robot anyway (chosen by
    the same stream), honouring the non-empty contract.
    """

    name = "random"

    def __init__(self, seed: int = 0, rate: float = 0.5):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("random activation needs 0 <= rate <= 1")
        self.seed = seed
        self.rate = rate
        self._rng = random.Random(seed)

    def select(self, due: List[Any], round_: int) -> List[Any]:
        """Flip a seeded coin per due robot; never return an empty set."""
        if not due:
            return due
        rng = self._rng
        rate = self.rate
        chosen = [r for r in due if rng.random() < rate]
        if not chosen:
            chosen = [due[rng.randrange(len(due))]]
        return chosen

    def describe(self) -> str:
        """One human-readable line for logs and run manifests."""
        return f"seeded coin-flip activation, rate {self.rate}, seed {self.seed}"


class BiasedActivation(ActivationModel):
    """Seeded rich-get-richer adversary: ``budget`` robots act per round,
    sampled with weight ``bias ** activations_so_far``.

    The deterministic :class:`AdversarialActivation` is maximally *fair*
    (starve-longest-first keeps every robot live); this model is its
    stochastic opposite — robots that have already acted a lot are
    exponentially *more* likely to act again, starving the laggards for
    long stretches.  Every due robot keeps positive probability each round,
    so runs stay live with probability 1; the fuzzer bounds them with
    ``max_rounds`` regardless.  Fully deterministic given ``seed``.

    ``budget=0`` disarms the bias (everyone due acts), mirroring the
    adversarial model's convention.  Weight exponents are clamped so long
    runs cannot overflow a float.
    """

    name = "biased"

    def __init__(self, seed: int = 0, budget: int = 1, bias: float = 4.0):
        if budget < 0:
            raise ValueError("biased activation needs budget >= 0")
        if bias <= 0:
            raise ValueError("biased activation needs bias > 0")
        self.seed = seed
        self.budget = budget
        self.bias = bias
        self._rng = random.Random(seed)
        self._counts: Dict[int, int] = {}

    def select(self, due: List[Any], round_: int) -> List[Any]:
        """Sample ``budget`` robots, weighted toward past activations."""
        if not due:
            return due
        counts = self._counts
        if self.budget == 0 or len(due) <= self.budget:
            for r in due:
                counts[r.label] = counts.get(r.label, 0) + 1
            return due
        floor = min(counts.get(r.label, 0) for r in due)
        pool = list(due)
        chosen: List[Any] = []
        for _ in range(self.budget):
            weights = [
                self.bias ** min(counts.get(r.label, 0) - floor, 32) for r in pool
            ]
            x = self._rng.random() * sum(weights)
            pick = len(pool) - 1
            acc = 0.0
            for i, w in enumerate(weights):
                acc += w
                if x < acc:
                    pick = i
                    break
            chosen.append(pool.pop(pick))
        for r in chosen:
            counts[r.label] = counts.get(r.label, 0) + 1
        chosen.sort(key=lambda r: r.label)
        return chosen

    def describe(self) -> str:
        """One human-readable line for logs and run manifests."""
        return (
            f"rich-get-richer adversary, budget {self.budget}/round, "
            f"bias {self.bias}, seed {self.seed}"
        )


def _checked(opts: Dict[str, Any], name: str, allowed: frozenset) -> Dict[str, Any]:
    """Reject unknown option keys: a typo'd option would otherwise run the
    wrong experiment and cache it under the typo'd key."""
    unknown = set(opts) - allowed
    if unknown:
        raise ValueError(
            f"activation {name!r}: unknown options {sorted(unknown)}; "
            f"registered options: {sorted(allowed) or 'none'}"
        )
    return opts


def _build_sync(opts: Dict[str, Any]) -> None:
    _checked(opts, "sync", frozenset())
    return None


def _build_round_robin(opts: Dict[str, Any]) -> RoundRobinActivation:
    _checked(opts, "round-robin", frozenset({"groups"}))
    return RoundRobinActivation(groups=opts.get("groups", 2))


def _build_adversarial(opts: Dict[str, Any]) -> AdversarialActivation:
    _checked(opts, "adversarial", frozenset({"budget"}))
    return AdversarialActivation(budget=opts.get("budget", 1))


def _build_random(opts: Dict[str, Any]) -> RandomActivation:
    _checked(opts, "random", frozenset({"seed", "rate"}))
    return RandomActivation(seed=opts.get("seed", 0), rate=opts.get("rate", 0.5))


def _build_biased(opts: Dict[str, Any]) -> BiasedActivation:
    _checked(opts, "biased", frozenset({"seed", "budget", "bias"}))
    return BiasedActivation(
        seed=opts.get("seed", 0),
        budget=opts.get("budget", 1),
        bias=opts.get("bias", 4.0),
    )


#: ``model name -> builder(options dict)``.  ``"sync"`` builds ``None`` so
#: the scheduler keeps its native (checked-by-differential-tests) hot path.
ACTIVATION_MODELS: Dict[str, Callable[[Dict[str, Any]], Optional[ActivationModel]]] = {
    "sync": _build_sync,
    "round-robin": _build_round_robin,
    "adversarial": _build_adversarial,
    "random": _build_random,
    "biased": _build_biased,
}


def activation_names() -> List[str]:
    """Sorted names of every registered activation model."""
    return sorted(ACTIVATION_MODELS)


def build_activation(
    name: str, options: Optional[Dict[str, Any]] = None
) -> Optional[ActivationModel]:
    """Build a fresh model instance (or ``None`` for the synchronous default).

    Models are stateful per run; call this once per scheduler, never reuse
    the instance across runs.  Unknown model names and unknown option keys
    both raise ``ValueError``.
    """
    if name not in ACTIVATION_MODELS:
        raise ValueError(
            f"unknown activation model {name!r}; registered models: {activation_names()}"
        )
    return ACTIVATION_MODELS[name](dict(options or {}))
