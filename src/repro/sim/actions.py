"""Actions and observations — the robot/scheduler contract.

Each executed round, an active robot receives an :class:`Observation` and
yields an :class:`Action`.  Actions are created through the factory
classmethods (``Action.move(...)``, ``Action.sleep(...)``, ...); the
constructor is considered private.

Timing conventions (these matter; the paper's correctness arguments depend
on them and the tests pin them down):

* The *cards* in an observation at round ``r`` are the public states the
  co-located robots published with their most recent action (round ``r-1``
  or earlier).  This models the simultaneous broadcast of step (i): every
  robot sees every co-located robot's state as of the start of the round.
* A move happens at the end of the round; robots arriving at a node are
  co-located with its occupants from round ``r+1`` onward.
* A follow (one-round or persistent) mirrors the *resolved* move of the
  leader in the same round, so a follower never loses its leader.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["Action", "Observation"]

# Action kinds (ints for cheap dispatch).
STAY = 0
MOVE = 1
SLEEP = 2
FOLLOW = 3
FOLLOW_ONCE = 4
TERMINATE = 5

_KIND_NAMES = {
    STAY: "stay",
    MOVE: "move",
    SLEEP: "sleep",
    FOLLOW: "follow",
    FOLLOW_ONCE: "follow_once",
    TERMINATE: "terminate",
}


class Action:
    """One robot decision for one round.  Use the factory classmethods."""

    __slots__ = (
        "kind",
        "hot_kind",
        "port",
        "target",
        "wake_round",
        "wake_on_meet",
        "on_leader_terminate",
        "card",
        "note",
    )

    def __init__(
        self,
        kind: int,
        port: Optional[int] = None,
        target: Optional[int] = None,
        wake_round: Optional[int] = None,
        wake_on_meet: bool = False,
        on_leader_terminate: str = "terminate",
        card: Optional[Dict[str, Any]] = None,
        note: Optional[str] = None,
    ):
        self.kind = kind
        # Precomputed dispatch token for the scheduler's hot loop: the kind
        # when the action carries no card and no note (the overwhelmingly
        # common case), -1 otherwise.  One comparison there replaces a
        # card check plus a note check per activation.
        self.hot_kind = kind if card is None and note is None else -1
        self.port = port
        self.target = target
        self.wake_round = wake_round
        self.wake_on_meet = wake_on_meet
        self.on_leader_terminate = on_leader_terminate
        self.card = card
        self.note = note

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def stay(cls, card: Optional[Dict[str, Any]] = None, note: Optional[str] = None) -> "Action":
        """Remain on the current node this round."""
        return cls(STAY, card=card, note=note)

    @classmethod
    def move(cls, port: int, card: Optional[Dict[str, Any]] = None, note: Optional[str] = None) -> "Action":
        """Move through ``port`` at the end of this round."""
        return cls(MOVE, port=port, card=card, note=note)

    @classmethod
    def sleep(
        cls,
        until_round: Optional[int],
        wake_on_meet: bool = False,
        card: Optional[Dict[str, Any]] = None,
        note: Optional[str] = None,
    ) -> "Action":
        """Do nothing until ``until_round`` (exclusive of action, i.e. the
        robot next acts *at* ``until_round``).

        ``until_round=None`` sleeps forever (requires ``wake_on_meet=True``
        to be wakeable at all).  With ``wake_on_meet=True`` the robot is
        woken early — at the round following another robot's arrival on its
        node — and must inspect ``obs.round`` to see how long it actually
        slept.
        """
        return cls(SLEEP, wake_round=until_round, wake_on_meet=wake_on_meet, card=card, note=note)

    @classmethod
    def follow(
        cls,
        target_label: int,
        until_round: Optional[int] = None,
        on_leader_terminate: str = "terminate",
        card: Optional[Dict[str, Any]] = None,
        note: Optional[str] = None,
    ) -> "Action":
        """Mirror the moves of the co-located robot labeled ``target_label``.

        Persistent: the robot's program is suspended until ``until_round``
        (if given).  ``on_leader_terminate`` selects what happens when the
        (transitive) leader terminates: ``"terminate"`` terminates this
        robot too (the paper's followers terminate with their leader,
        Lemma 4); ``"wake"`` resumes the program the following round.
        """
        if on_leader_terminate not in ("terminate", "wake"):
            raise ValueError("on_leader_terminate must be 'terminate' or 'wake'")
        return cls(
            FOLLOW,
            target=target_label,
            wake_round=until_round,
            on_leader_terminate=on_leader_terminate,
            card=card,
            note=note,
        )

    @classmethod
    def follow_once(
        cls, target_label: int, card: Optional[Dict[str, Any]] = None, note: Optional[str] = None
    ) -> "Action":
        """Mirror the leader's move this round only; program resumes next round."""
        return cls(FOLLOW_ONCE, target=target_label, card=card, note=note)

    @classmethod
    def terminate(cls, card: Optional[Dict[str, Any]] = None, note: Optional[str] = None) -> "Action":
        """Stop forever.  The robot stays on its node as a passive occupant."""
        return cls(TERMINATE, card=card, note=note)

    # ------------------------------------------------------------------
    @property
    def kind_name(self) -> str:
        """The action's kind as its canonical lowercase name."""
        return _KIND_NAMES[self.kind]

    def __repr__(self) -> str:
        parts = [self.kind_name]
        if self.port is not None:
            parts.append(f"port={self.port}")
        if self.target is not None:
            parts.append(f"target={self.target}")
        if self.wake_round is not None:
            parts.append(f"wake={self.wake_round}")
        return f"Action({', '.join(parts)})"


class Observation:
    """What a robot perceives at the start of a round.

    **Lifetime contract:** an observation is valid until the receiving
    robot's next ``yield``.  The scheduler's struct-of-arrays fast path
    keeps one observation object per robot and mutates it in place between
    activations, so a program that stores an observation and reads it after
    a later ``yield`` would see the *newer* round's values.  Copy the
    fields you keep (they are plain ints and an immutable cards tuple);
    every algorithm in this repository already follows the
    ``obs = yield ...`` threading convention, which is safe by
    construction.

    Attributes
    ----------
    round:
        Current round number (rounds start at 0).
    degree:
        Degree of the node the robot stands on.
    entry_port:
        Port through which the robot entered this node on its most recent
        move, or ``None`` if it has never moved.
    cards:
        Tuple of the public cards of *all* robots co-located on this node
        (including this robot's own card), sorted by label.  Cards are plain
        dicts; treat them as read-only.  Every card carries at least
        ``"id"`` (the robot's label).
    """

    __slots__ = ("round", "degree", "entry_port", "cards")

    def __init__(
        self,
        round_: int,
        degree: int,
        entry_port: Optional[int],
        cards: Tuple[Mapping[str, Any], ...],
    ):
        self.round = round_
        self.degree = degree
        self.entry_port = entry_port
        self.cards = cards

    def others(self, own_label: int) -> Tuple[Mapping[str, Any], ...]:
        """Co-located cards excluding this robot's own."""
        return tuple(c for c in self.cards if c.get("id") != own_label)

    def alone(self, own_label: int) -> bool:
        """True iff no other robot shares the node."""
        return all(c.get("id") == own_label for c in self.cards)

    def __repr__(self) -> str:
        ids = [c.get("id") for c in self.cards]
        return (
            f"Observation(round={self.round}, degree={self.degree}, "
            f"entry_port={self.entry_port}, ids={ids})"
        )
