"""Vectorizable robot programs: scalar generators with an array twin.

The replica-major engine (:mod:`repro.sim.batch2d`) executes whole
replicas as NumPy array kernels instead of stepping per-robot generators.
That is only sound when the engine *knows*, ahead of time, exactly what
every robot in a replica will do — which a black-box generator cannot
promise.  This module is the declaration mechanism:

* :class:`VectorProgram` wraps an ordinary program factory.  Calling it is
  byte-for-byte the wrapped factory — every scalar engine (and the
  lockstep batch engine) sees a normal program and never knows the wrapper
  exists.  The 2D engine additionally reads the declaration triplet
  ``(kernel, shared, params)`` and, when the kernel accepts the graph and
  parameters, runs the replica through the array twin instead of the
  generators.
* A **kernel** (e.g. :class:`RotorWalkKernel`) is the array twin of one
  program family.  ``kernel.plan(graph, shared)`` compiles the family for
  one graph (returning ``None`` when unsupported — the replica then simply
  runs scalar); ``plan.accepts(params, max_rounds)`` vets one replica's
  scalars; ``plan.execute(...)`` runs a whole *group* of replicas at once
  and returns one :class:`ReplicaFinal` per replica — the exact end-state
  a scalar run of the same replica would reach.

The contract a kernel author signs:

1. **Exact twin.**  For every accepted ``(graph, shared, params)``, the
   kernel's :class:`ReplicaFinal` must equal the scalar run bit for bit:
   positions, entry ports, per-robot moves and active rounds, termination
   rounds, ``first_gather_round``, ``rounds_executed``, and the
   gathered-at-termination flag.  The differential suite
   (``tests/test_batch2d.py``) pins this against ``World.run``.
2. **Reject, never approximate.**  Anything the twin cannot reproduce
   exactly — an unsupported graph shape, a parameter that would time out,
   an edge the math does not cover — must make ``plan``/``accepts``
   decline, which silently falls the replica back to the scalar drive.
   Declining is always correct; accepting is a proof obligation.
3. **No side channels.**  Accepted programs must not publish cards, touch
   ``ctx.stats``, or depend on observations beyond what the kernel
   models; every robot must terminate.

Kernels
-------

:class:`RotorWalkKernel` — the seeded rotor walk used by
``benchmarks/bench_batch.py`` (and ``bench_simcore.py`` before it): each
robot exits through ``entry_port + 1`` forever, with a seeded initial
port, an optional initial sleep (``delay`` rounds — the per-replica wake
offsets exercise the engine's wake-frontier arithmetic), and a
terminating yield after ``rounds`` moves.  Supported on regular graphs,
where the walk reduces to one precomputed CSR slot-transition table and
the whole group advances with a single ``np.take`` per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.actions import Action

try:  # same optional-dependency posture as repro.sim.batch
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = [
    "VectorProgram",
    "ReplicaFinal",
    "RotorWalkKernel",
    "rotor_walk_factory",
    "rotor_walk_program",
    "plan_for",
]


class VectorProgram:
    """A program factory carrying its own replica-major array twin.

    Instances are callable with the exact signature of the wrapped
    ``factory`` (``factory(ctx) -> generator``), so every engine that
    steps generators — the schedulers, the lockstep batch engine — runs
    the scalar program unchanged.  The 2D replica engine treats a fleet
    whose robots all share one ``VectorProgram`` as a *hot candidate*:
    replicas are grouped by ``(kernel, shared)`` and executed through
    ``kernel.plan(graph, shared)``; ``params`` carries the per-replica
    scalars (seeds, delays).

    The wrapper asserts nothing by itself — if the kernel declines the
    graph or the params, the replica runs scalar and the results are
    identical by construction.
    """

    __slots__ = ("factory", "kernel", "shared", "params")

    def __init__(
        self,
        factory,
        kernel,
        shared: Sequence[Any] = (),
        params: Optional[Dict[str, Any]] = None,
    ):
        self.factory = factory
        self.kernel = kernel
        self.shared: Tuple[Any, ...] = tuple(shared)
        self.params: Dict[str, Any] = dict(params or {})

    def __call__(self, ctx):
        """Delegate to the wrapped scalar factory (the only scalar-visible API)."""
        return self.factory(ctx)

    def __repr__(self) -> str:
        """Debug form naming the kernel and the declaration triplet."""
        kname = getattr(self.kernel, "name", self.kernel)
        return f"VectorProgram(kernel={kname!r}, shared={self.shared!r}, params={self.params!r})"


@dataclass
class ReplicaFinal:
    """The end-of-run state of one hot replica, in scheduler (label) order.

    Exactly the fields the 2D engine writes back onto the replica's
    pristine :class:`~repro.sim.scheduler.Scheduler` before retiring it
    through the ordinary ``_finalize``/``package_result`` path — so the
    packaged :class:`~repro.sim.world.RunResult` is produced by the same
    code a scalar run uses, from the same state a scalar run would hold.
    """

    #: Final node per robot.
    pos: List[int]
    #: Final entry port per robot (``None`` only if the robot never moved).
    entry: List[Optional[int]]
    #: Edge traversals per robot.
    moves: List[int]
    #: Rounds each robot was active (computing), sleep/terminate rounds included.
    active_rounds: List[int]
    #: The round in which each robot terminated.
    terminated_rounds: List[int]
    #: ``Scheduler.round`` after the last round committed (last termination + 1).
    final_round: int
    #: Rounds actually processed (fast-forwarded sleep gaps excluded).
    rounds_executed: int
    #: First round after whose commit all robots were co-located, or ``None``.
    first_gather_round: Optional[int]
    #: Whether every robot terminated while all robots were co-located.
    terminations_all_gathered: bool


# ---------------------------------------------------------------------------
# The rotor-walk kernel
# ---------------------------------------------------------------------------


def rotor_walk_factory(rounds: int, seed: int, delay: int = 0):
    """The scalar rotor-walk program: the generator the kernel twins.

    Per robot: observe the start node's degree, optionally sleep ``delay``
    rounds (waking at round ``delay + 1``), then take ``rounds`` moves —
    the first through port ``(label + seed) % degree``, every later one
    through ``entry_port + 1`` — and terminate.  This is
    ``bench_simcore``'s kernel workload with a seeded initial port and an
    optional staggered start.
    """

    def factory(ctx):
        """Build one rotor-walk generator for the robot behind ``ctx``."""

        def program():
            """Sleep (optionally), walk ``rounds`` rotor steps, terminate."""
            obs = yield
            deg = obs.degree
            table = [Action.move(p) for p in range(deg)]
            nxt = [(p + 1) % deg for p in range(deg)]
            if delay:
                obs = yield Action.sleep(obs.round + 1 + delay)
            port = (ctx.label + seed) % deg
            for _ in range(rounds):
                obs = yield table[port]
                port = nxt[obs.entry_port]
            yield Action.terminate()

        return program()

    return factory


def rotor_walk_program(rounds: int, seed: int, delay: int = 0) -> VectorProgram:
    """A :class:`VectorProgram` pairing the scalar rotor walk with its kernel."""
    return VectorProgram(
        factory=rotor_walk_factory(rounds, seed, delay),
        kernel=RotorWalkKernel,
        shared=(rounds,),
        params={"seed": seed, "delay": delay},
    )


class _RotorPlan:
    """:class:`RotorWalkKernel` compiled for one (regular) graph.

    The walk's whole round collapses into one precomputed table: with the
    robot's state encoded as its *CSR slot* (the edge it just traversed),
    the next slot is ``row[nbr[s]] + (ent[s] + 1) % d`` — a pure function
    of the graph.  Advancing a G×k group of robots one round is then a
    single ``np.take`` through that table; positions, entry ports, and the
    gathering check are recovered afterwards by bulk gathers over the
    stored slot trajectory.
    """

    def __init__(self, csr, rounds: int, d: int):
        self.rounds = rounds
        self.d = d
        self._row = _np.asarray(csr.row_offsets, dtype=_np.int64)
        self._nbr = _np.asarray(csr.neighbor, dtype=_np.int64)
        self._ent = _np.asarray(csr.entry_port, dtype=_np.int64)
        # the fused transition: slot -> the slot of the next rotor move
        self._next_slot = self._row[self._nbr] + (self._ent + 1) % d

    def accepts(self, params: Dict[str, Any], max_rounds: int) -> bool:
        """Whether one replica's scalars stay inside the twin's proof.

        The walk must fit under the timeout: with start round
        ``W = delay + 1`` (0 when undelayed), the terminating activation
        happens at round ``W + rounds``, which the scalar loop only
        reaches while ``W + rounds <= max_rounds``.
        """
        seed = params.get("seed", 0)
        delay = params.get("delay", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            return False
        if not isinstance(delay, int) or isinstance(delay, bool) or delay < 0:
            return False
        start = 0 if delay == 0 else delay + 1
        return start + self.rounds <= max_rounds

    def execute(
        self,
        starts: Sequence[Sequence[int]],
        labels: Sequence[Sequence[int]],
        params_list: Sequence[Dict[str, Any]],
    ) -> List[ReplicaFinal]:
        """Run G replicas of k robots each; one :class:`ReplicaFinal` apiece.

        ``starts``/``labels`` rows are in scheduler (label-sorted) order,
        exactly as the engine's write-back expects them returned.
        """
        T = self.rounds
        d = self.d
        starts2 = _np.asarray(starts, dtype=_np.int64)
        labels2 = _np.asarray(labels, dtype=_np.int64)
        G, k = starts2.shape
        seeds = _np.asarray([p.get("seed", 0) for p in params_list], dtype=_np.int64)
        delays = [p.get("delay", 0) for p in params_list]

        # The hot core: the rotor step is a fixed map on CSR slots, so the
        # whole T×G×k trajectory comes from prefix doubling — rows [m, 2m)
        # are f^m applied to rows [0, m), and f^(2m) is one self-gather of
        # the (tiny) f^m table.  O(log T) array ops gather the same element
        # count a per-round loop would, without 1-call-per-round overhead.
        traj = _np.empty((T, G, k), dtype=_np.int64)
        traj[0] = self._row[starts2] + (labels2 + seeds[:, None]) % d
        jump = self._next_slot
        m = 1
        while m < T:
            span = min(m, T - m)
            _np.take(jump, traj[:span], out=traj[m:m + span])
            m += span
            if m < T:
                jump = jump[jump]  # f^m ∘ f^m = f^(2m)

        # Post-pass: recover positions and the gathering profile in bulk.
        pos_traj = self._nbr[traj]  # (T, G, k) node after the round-t move
        if k == 1:
            gathered = _np.ones((T, G), dtype=bool)
        elif k == 2:
            gathered = pos_traj[:, :, 0] == pos_traj[:, :, 1]
        else:
            gathered = pos_traj.min(axis=2) == pos_traj.max(axis=2)  # (T, G)
        got_gathered = gathered.any(axis=0)
        first_t = gathered.argmax(axis=0)
        final_pos = pos_traj[T - 1]
        final_entry = self._ent[traj[T - 1]]
        at_term = gathered[T - 1]

        finals: List[ReplicaFinal] = []
        for g in range(G):
            delay = delays[g]
            start = 0 if delay == 0 else delay + 1
            term = start + T
            if delay and len(set(int(v) for v in starts2[g])) == 1:
                # the sleep round commits with the robots still on their
                # (co-located) start nodes — the scalar path records round 0
                fg: Optional[int] = 0
            elif got_gathered[g]:
                fg = start + int(first_t[g])
            else:
                fg = None
            # active rounds: every move round + the terminate round, plus
            # the round-0 sleep when delayed; sleep gaps fast-forward.
            ar = T + 1 + (1 if delay else 0)
            finals.append(
                ReplicaFinal(
                    pos=[int(v) for v in final_pos[g]],
                    entry=[int(v) for v in final_entry[g]],
                    moves=[T] * k,
                    active_rounds=[ar] * k,
                    terminated_rounds=[term] * k,
                    final_round=term + 1,
                    rounds_executed=ar,
                    first_gather_round=fg,
                    terminations_all_gathered=bool(at_term[g]),
                )
            )
        return finals


class RotorWalkKernel:
    """Array twin of :func:`rotor_walk_factory` (see the module docstring).

    ``shared`` is ``(rounds,)``; per-replica ``params`` are ``seed`` and
    ``delay``.  Supported only on non-empty **regular** graphs — the
    scalar program builds its port tables from the start node's degree, so
    on an irregular graph the twin and the generator would disagree the
    moment a walk crossed a degree boundary; ``plan`` declines instead.
    """

    name = "rotor-walk"

    @classmethod
    def plan(cls, graph, shared: Tuple[Any, ...]) -> Optional[_RotorPlan]:
        """Compile for one graph; ``None`` when the twin cannot be exact."""
        if _np is None:
            return None
        if len(shared) != 1:
            return None
        (rounds,) = shared
        if not isinstance(rounds, int) or isinstance(rounds, bool) or rounds < 1:
            return None
        csr = graph.csr
        deg = csr.degree
        if not deg:
            return None
        d = deg[0]
        if d == 0 or any(x != d for x in deg):
            return None
        return _RotorPlan(csr, rounds, d)


# ---------------------------------------------------------------------------
# Per-process plan memo
# ---------------------------------------------------------------------------

#: Retained compiled plans per process.  Keyed by the (shared, immutable)
#: compiled graph's identity plus the kernel declaration; eviction is FIFO,
#: matching repro.runtime.graph_cache's posture.
_PLAN_MAX = 64
_plans: Dict[Tuple[int, Any, Tuple[Any, ...]], Tuple[Any, Any]] = {}


def plan_for(graph, kernel, shared: Tuple[Any, ...]):
    """The memoized ``kernel.plan(graph, shared)`` (``None`` memoized too).

    A benchmark or campaign constructs many batches over one graph; the
    compiled slot-transition tables are pure functions of ``(graph,
    kernel, shared)``, so they are shared per process.  The cached CSR
    object is held strongly, which keeps its ``id`` valid for the key.
    """
    csr = graph.csr
    key = (id(csr), kernel, shared)
    hit = _plans.get(key)
    if hit is not None and hit[0] is csr:
        return hit[1]
    plan = kernel.plan(graph, shared)
    if len(_plans) >= _PLAN_MAX:
        _plans.pop(next(iter(_plans)))
    _plans[key] = (csr, plan)
    return plan
