"""Synchronous mobile-robot simulator (Face-to-Face model).

Implements the execution model of the paper's Section 1.1:

* time proceeds in synchronous rounds;
* in each round every robot (i) reads the *cards* — public state — of all
  robots co-located on its node, computes, and (ii) optionally moves through
  a port to an adjacent node;
* robots on the same node in the same round can communicate (here: via the
  cards they publish); robots crossing the same edge in opposite directions
  do **not** meet;
* after a move a robot knows both port numbers of the traversed edge (its
  chosen exit port and the observed entry port).

Robot algorithms are Python generators: they ``yield`` an
:class:`~repro.sim.actions.Action` every round and receive the next round's
:class:`~repro.sim.actions.Observation`.  The scheduler supports *idle
fast-forwarding*: when every robot is asleep (the algorithms of this paper
spend most of their padded schedules waiting), simulated time jumps to the
next wake-up, so `Õ(n^5)`-round schedules cost wall-clock proportional to
actual movement only.

The robot-facing API deliberately hides node identities: an observation
exposes only the current node's degree, the entry port of the last move, and
co-located cards — exactly the information the model grants.
"""

from repro.sim.actions import Action, Observation
from repro.sim.activation import (
    ActivationModel,
    AdversarialActivation,
    RoundRobinActivation,
    SynchronousActivation,
    build_activation,
)
from repro.sim.batch import BatchSummary, ReplicaBatch, ReplicaOutcome
from repro.sim.robot import RobotContext, RobotSpec
from repro.sim.world import World, RunResult
from repro.sim.errors import (
    SimulationError,
    SimulationTimeout,
    SimulationDeadlock,
    ProtocolViolation,
)
from repro.sim.trace import TraceRecorder, Event

__all__ = [
    "Action",
    "Observation",
    "ActivationModel",
    "SynchronousActivation",
    "RoundRobinActivation",
    "AdversarialActivation",
    "build_activation",
    "RobotContext",
    "RobotSpec",
    "World",
    "RunResult",
    "ReplicaBatch",
    "ReplicaOutcome",
    "BatchSummary",
    "SimulationError",
    "SimulationTimeout",
    "SimulationDeadlock",
    "ProtocolViolation",
    "TraceRecorder",
    "Event",
]
