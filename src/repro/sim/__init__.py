"""Synchronous mobile-robot simulator (Face-to-Face model).

Implements the execution model of the paper's Section 1.1:

* time proceeds in synchronous rounds;
* in each round every robot (i) reads the *cards* — public state — of all
  robots co-located on its node, computes, and (ii) optionally moves through
  a port to an adjacent node;
* robots on the same node in the same round can communicate (here: via the
  cards they publish); robots crossing the same edge in opposite directions
  do **not** meet;
* after a move a robot knows both port numbers of the traversed edge (its
  chosen exit port and the observed entry port).

Robot algorithms are Python generators: they ``yield`` an
:class:`~repro.sim.actions.Action` every round and receive the next round's
:class:`~repro.sim.actions.Observation`.  The scheduler supports *idle
fast-forwarding*: when every robot is asleep (the algorithms of this paper
spend most of their padded schedules waiting), simulated time jumps to the
next wake-up, so `Õ(n^5)`-round schedules cost wall-clock proportional to
actual movement only.

The robot-facing API deliberately hides node identities: an observation
exposes only the current node's degree, the entry port of the last move, and
co-located cards — exactly the information the model grants.

Execution backends live behind the engine protocol (:mod:`repro.sim.engine`)
and register by name in :mod:`repro.sim.engines`; ``World.run(engine=...)``
selects one, and all conforming backends return bit-identical results (see
docs/ENGINES.md).
"""

import warnings

from repro.sim.actions import Action, Observation
from repro.sim.activation import (
    ActivationModel,
    AdversarialActivation,
    RoundRobinActivation,
    SynchronousActivation,
    build_activation,
)
from repro.sim.engine import (
    Engine,
    EngineCapabilities,
    EngineRequest,
    UnsupportedFeature,
)
from repro.sim.engines import DEFAULT_ENGINE, get_engine, list_engines
from repro.sim.robot import RobotContext, RobotSpec
from repro.sim.world import World, RunResult
from repro.sim.errors import (
    SimulationError,
    SimulationTimeout,
    SimulationDeadlock,
    ProtocolViolation,
)
from repro.sim.trace import TraceRecorder, Event

__all__ = [
    "Action",
    "Observation",
    "ActivationModel",
    "SynchronousActivation",
    "RoundRobinActivation",
    "AdversarialActivation",
    "build_activation",
    "Engine",
    "EngineCapabilities",
    "EngineRequest",
    "UnsupportedFeature",
    "DEFAULT_ENGINE",
    "get_engine",
    "list_engines",
    "RobotContext",
    "RobotSpec",
    "World",
    "RunResult",
    "ReplicaBatch",
    "ReplicaOutcome",
    "BatchSummary",
    "SimulationError",
    "SimulationTimeout",
    "SimulationDeadlock",
    "ProtocolViolation",
    "TraceRecorder",
    "Event",
]

#: Names that used to be eager re-exports and are now served lazily with a
#: deprecation warning: the replica engine is an engine *backend* — select
#: it as ``engine="batch-list"/"batch-numpy"`` (or import the classes from
#: :mod:`repro.sim.batch` directly when driving it by hand).
_DEPRECATED_REEXPORTS = {"ReplicaBatch", "ReplicaOutcome", "BatchSummary"}


def __getattr__(name: str):
    if name in _DEPRECATED_REEXPORTS:
        warnings.warn(
            f"importing {name} from repro.sim is deprecated; import it from "
            f"repro.sim.batch, or select the backend by name via the engine "
            f"registry (repro.sim.engines, docs/ENGINES.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.sim import batch as _batch

        return getattr(_batch, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
