"""World: a graph + robots, and the result of running them.

This is the user-facing entry point of the simulator::

    from repro.graphs import generators
    from repro.sim import World, RobotSpec
    from repro.core.faster_gathering import faster_gathering_program

    g = generators.ring(12)
    world = World(g, [RobotSpec(label=5, start=0, factory=faster_gathering_program()),
                      RobotSpec(label=9, start=1, factory=faster_gathering_program())])
    result = world.run()
    assert result.gathered and result.detected

``World.run`` resolves a named backend from the engine registry
(:mod:`repro.sim.engines`; the default is the optimized scalar
:class:`~repro.sim.scheduler.Scheduler`), drives it to completion, and
packages a :class:`RunResult`.  Pass ``engine="reference"`` (or any name
from :func:`repro.sim.engines.list_engines`) to pin a specific backend —
results are bit-identical across conforming backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.graphs.port_graph import PortGraph
from repro.graphs.traversal import require_connected
from repro.sim.metrics import RunMetrics
from repro.sim.robot import RobotSpec
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder

__all__ = ["World", "RunResult", "package_result"]

#: Default safety valve.  The deterministic schedules of this library are
#: bounded and computable in advance; the default limit is generous enough
#: for every in-repo experiment and exists only to turn accidental infinite
#: loops into crisp errors.
DEFAULT_MAX_ROUNDS = 500_000_000


@dataclass
class RunResult:
    """Outcome of one simulation run.

    ``gathered`` — all robots ended on a single node.
    ``detected`` — every robot terminated, and each terminated while all
    robots were co-located (the gathering-with-detection contract).
    ``metrics`` — round/move counters (:class:`~repro.sim.metrics.RunMetrics`).
    ``final_node`` — the common final node if gathered, else ``None``.
    ``positions`` — label -> final node.
    ``stats`` — per-robot algorithm statistics (label -> ctx.stats).
    """

    gathered: bool
    detected: bool
    metrics: RunMetrics
    final_node: Optional[int]
    positions: Dict[int, int]
    stats: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Shorthand for ``metrics.rounds``."""
        return self.metrics.rounds

    @property
    def total_moves(self) -> int:
        """Shorthand for ``metrics.total_moves``."""
        return self.metrics.total_moves


class World:
    """A configured simulation: connected port graph + robot specs."""

    def __init__(
        self,
        graph: PortGraph,
        robots: List[RobotSpec],
        strict: bool = False,
    ):
        require_connected(graph)
        if not robots:
            raise ValueError("need at least one robot")
        self.graph = graph
        self.robots = list(robots)
        self.strict = strict

    def run(
        self,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        trace: Optional[TraceRecorder] = None,
        stop_on_gather: bool = False,
        replay=None,
        activation=None,
        engine: Optional[str] = None,
    ) -> RunResult:
        """Run to completion (every robot terminated) and collect results.

        ``stop_on_gather=True`` stops at the first all-co-located round
        instead — for baselines without termination (their ``detected`` will
        be ``False``; read ``metrics.first_gather_round``).

        ``replay`` — an optional :class:`repro.sim.replay.ReplayRecorder`
        that snapshots positions after every executed round.

        ``activation`` — an optional :class:`repro.sim.activation.
        ActivationModel` weakening the synchronous discipline; ``None``
        keeps the paper's fully synchronous model.

        ``engine`` — a backend name from :func:`repro.sim.engines.
        list_engines` (``None`` uses the default scalar scheduler).  All
        conforming backends return bit-identical results; a backend asked
        for a feature it lacks raises :class:`repro.sim.engine.
        UnsupportedFeature` before any round executes.  See
        ``docs/ENGINES.md``.
        """
        # Imported here, not at the top: the engine registry imports this
        # module (package_result, DEFAULT_MAX_ROUNDS) to build its adapters.
        from repro.sim.engine import EngineRequest
        from repro.sim.engines import resolve_engine

        engine_cls = resolve_engine(engine)
        backend = engine_cls(
            EngineRequest(
                graph=self.graph,
                robots=self.robots,
                strict=self.strict,
                trace=trace,
                replay=replay,
                activation=activation,
            )
        )
        return backend.run(max_rounds=max_rounds, stop_on_gather=stop_on_gather)


def package_result(sched: Scheduler) -> RunResult:
    """Package a finished scheduler into a :class:`RunResult`.

    Shared by :meth:`World.run` and the batched replica engine
    (:mod:`repro.sim.batch`), so a batched replica's result is assembled by
    the exact code a scalar run uses.  The scheduler must have completed
    (``run`` returned, or the batch driver called ``_finalize``).
    """
    metrics: RunMetrics = sched.metrics
    positions = sched.positions()
    nodes = set(positions.values())
    gathered = len(nodes) == 1
    detected = gathered and metrics.terminations_all_gathered and sched.all_terminated()
    return RunResult(
        gathered=gathered,
        detected=detected,
        metrics=metrics,
        final_node=nodes.pop() if gathered else None,
        positions=positions,
        stats={r.label: dict(r.ctx.stats) for r in sched.robots},
    )
