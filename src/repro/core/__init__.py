"""The paper's algorithms.

* :mod:`repro.core.bounds` — the deterministic round-schedule arithmetic
  every robot derives from ``n`` (phase lengths, step boundaries).
* :mod:`repro.core.uxs_gathering` — Section 2.1: gathering with detection
  via universal exploration sequences (Theorem 6).
* :mod:`repro.core.undispersed` — Section 2.2: ``Undispersed-Gathering``
  (Theorem 8): token map construction + spanning-tree sweep.
* :mod:`repro.core.hop_meeting` — Section 2.3: ``1-Hop-Meeting`` /
  ``i-Hop-Meeting`` (Lemmas 9–10, Remark 14).
* :mod:`repro.core.faster_gathering` — Section 2.3: the staged
  ``Faster-Gathering`` composition (Theorems 12 and 16, Remark 13).
"""

from repro.core import bounds
from repro.core.uxs_gathering import uxs_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.hop_meeting import hop_meeting_program
from repro.core.faster_gathering import faster_gathering_program
from repro.core.known_k import known_k_gathering_program

__all__ = [
    "bounds",
    "uxs_gathering_program",
    "undispersed_gathering_program",
    "hop_meeting_program",
    "faster_gathering_program",
    "known_k_gathering_program",
]
