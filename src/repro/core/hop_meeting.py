"""``i-Hop-Meeting`` (paper Section 2.3, Lemmas 9–10, Remark 14).

Robots run synchronized *cycles*, one per budgeted ID bit (LSB first).  In a
cycle a robot whose current bit is ``1`` systematically visits every node
within ``i`` hops — a DFS over **all port-walks of length at most i** (no
node marking exists in an anonymous graph, so the walk tree, not the node
set, is enumerated) — and then idles out the rest of the cycle; a robot
whose bit is ``0`` (or whose bits are exhausted) waits the whole cycle.

Cycle length is ``T(i) = Σ_{j=1..i} 2·(n-1)^j`` rounds — an upper bound on
the DFS cost — or ``Σ 2·Δ^j`` when the maximum degree is known (Remark 14),
which is what keeps the procedure affordable on bounded-degree graphs.

Meetings merge groups permanently: when two free robots are co-located, the
lower-labeled one abandons its own schedule and follows the higher one until
the end of the procedure (the paper only needs *some* pair to stay together
so that the configuration is undispersed when ``Undispersed-Gathering``
takes over; keeping every meeting merged is the natural way to guarantee
it).  Because two distinct labels must differ at some (zero-padded) bit
position, two robots within ``i`` hops are guaranteed to meet: at the first
differing position one waits in place while the other's radius-``i`` DFS
passes over it (Lemma 10).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core import bounds
from repro.core.proglets import highest_free_label, sleep_until, wait_for_merge
from repro.sim.actions import Action, Observation
from repro.sim.robot import RobotContext

__all__ = ["hop_meeting_phase", "hop_meeting_program", "ball_dfs"]


def ball_dfs(
    obs: Observation,
    radius: int,
    my_label: int,
    card: Optional[Dict[str, Any]] = None,
):
    """DFS over all port-walks of length <= ``radius`` from the current node.

    Visits every node within ``radius`` hops and returns to the start node.
    After every move the merge rule is evaluated; on spotting a higher free
    robot the walk is abandoned and ``(obs, leader)`` returned (the caller
    must start following — physically we are co-located with the leader).
    Returns ``(obs, None)`` after a complete walk (back at the start).
    """
    # Stack frames: [next_port_to_try, degree, port_back_to_parent]
    stack = [[0, obs.degree, -1]]
    while stack:
        frame = stack[-1]
        if len(stack) - 1 < radius and frame[0] < frame[1]:
            port = frame[0]
            frame[0] += 1
            obs = yield Action.move(port, card=card)
            card = None
            leader = highest_free_label(obs.cards, exclude=my_label)
            if leader is not None and leader > my_label:
                return obs, leader
            stack.append([0, obs.degree, obs.entry_port])
        else:
            stack.pop()
            if stack:
                obs = yield Action.move(frame[2], card=card)
                card = None
                leader = highest_free_label(obs.cards, exclude=my_label)
                if leader is not None and leader > my_label:
                    return obs, leader
    return obs, None


def hop_meeting_phase(
    ctx: RobotContext,
    obs: Observation,
    i: int,
    phase_start: int,
):
    """The embedded ``i-Hop-Meeting`` phase.

    Occupies absolute rounds ``[phase_start, phase_start + L)`` with
    ``L = bounds.hop_meeting_phase_length(i, n, Δ?)``: one publish round
    followed by ``schedule_bits(n)`` cycles.  Returns the observation of
    round ``phase_start + L`` (the first round of whatever follows); by then
    the robot is either at its start node (never merged, or acting as a
    leader) or co-located with the group it merged into.

    The caller must arrange that the robot is free at ``phase_start`` and
    that ``obs.round == phase_start``.
    """
    n = ctx.n
    label = ctx.label
    max_degree = ctx.knowledge.get("max_degree")
    cycle = bounds.hop_cycle_length(i, n, max_degree)
    num_cycles = bounds.schedule_bits(n)
    end_round = phase_start + 1 + cycle * num_cycles
    bits = bounds.id_bits_lsb_first(label)

    assert obs.round == phase_start, (obs.round, phase_start)

    # Publish round: declare ourselves free; everyone syncs here.
    card = {"following": None, "alg": f"hop{i}"}
    obs = yield Action.stay(card=card)

    def merge_into(leader: int):
        """Follow ``leader`` to the end of the phase; resume co-located."""
        return Action.follow(
            leader,
            until_round=end_round,
            on_leader_terminate="wake",
            card={"following": leader, "alg": f"hop{i}"},
        )

    # Robots that share a node at the start merge immediately (relevant for
    # standalone runs on undispersed inputs).
    leader = highest_free_label(obs.cards, exclude=label)
    if leader is not None and leader > label:
        obs = yield merge_into(leader)
        return obs

    for c in range(num_cycles):
        cycle_end = phase_start + 1 + (c + 1) * cycle
        bit = bits[c] if c < len(bits) else 0  # exhausted robots wait
        if bit == 1:
            obs, leader = yield from ball_dfs(obs, i, label)
            if leader is None:
                # Idle tail of the cycle: still watch for arrivals.
                obs, leader = yield from wait_for_merge(obs, cycle_end, label)
            if leader is not None:
                obs = yield merge_into(leader)
                return obs
        else:
            obs, leader = yield from wait_for_merge(obs, cycle_end, label)
            if leader is not None:
                obs = yield merge_into(leader)
                return obs
    # Never merged (or we are the leader of whoever merged into us):
    # wait out the boundary; we are back at our start node.
    obs = yield from sleep_until(obs, end_round)
    return obs


def hop_meeting_program(i: int, max_degree: Optional[int] = None):
    """Standalone ``i-Hop-Meeting`` for experiments (Lemmas 9–10, E2).

    Runs exactly one hop-meeting schedule from round 0 and terminates.  The
    harness then inspects the final configuration: if two robots started
    within ``i`` hops, at least one node must hold two or more robots
    (an undispersed configuration).  No detection is claimed here — that is
    ``Faster-Gathering``'s job.
    """

    def factory(ctx: RobotContext):
        if max_degree is not None:
            ctx.knowledge.setdefault("max_degree", max_degree)

        def program(ctx=ctx):
            obs = yield
            if ctx.n == 1:
                yield Action.terminate()
                return
            obs = yield from hop_meeting_phase(ctx, obs, i, phase_start=obs.round)
            yield Action.terminate()

        return program(ctx)

    return factory
