"""Gathering with detection via universal exploration sequences (§2.1).

Every robot reads its ID bits LSB→MSB, one bit per *phase* of ``2T`` rounds
(``T`` = the UXS plan length all robots derive from ``n``):

* bit ``1`` — explore with the UXS for ``T`` rounds, then wait ``T``;
* bit ``0`` — wait ``T``, then explore ``T``;
* bits exhausted — wait the full ``2T``; if **nobody shows up** during that
  phase, gathering is complete (Lemmas 1–2) and the robot terminates;
  otherwise the arrival is a still-working group whose leader has a longer
  (hence larger) ID — follow it.

Whenever two *free* robots are co-located, the lower-labeled one starts
following the higher one ("implements choices according to the ID bits of
the higher ID robot") and terminates when it does (Lemma 4; the scheduler's
terminate-cascade implements the "subsequently terminate" step).

The correctness of the silent-wait termination rests on the UXS property
that a ``T``-round exploration from any start visits every node: a robot
still working during another's full-``2T`` wait must run one exploration
half and therefore finds the waiter.  The harness re-verifies this coverage
property on every experiment graph (see :mod:`repro.uxs`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core import bounds
from repro.core.proglets import highest_free_label, wait_for_merge
from repro.sim.actions import Action, Observation
from repro.sim.robot import RobotContext
from repro.uxs.generators import practical_plan
from repro.uxs.sequence import UxsPlan

__all__ = ["uxs_phase", "uxs_explore", "uxs_gathering_program"]


def uxs_explore(
    obs: Observation,
    offsets,
    my_label: int,
    card: Optional[Dict[str, Any]] = None,
):
    """Walk the full exploration sequence (one move per round).

    Starts with virtual entry port 0 (matching the certification walks in
    :mod:`repro.uxs.verify`).  After every move the merge rule is checked;
    returns ``(obs, leader)`` early when a higher free robot is found,
    ``(obs, None)`` after the last symbol.
    """
    e = 0
    for sym in offsets:
        p = (e + sym) % obs.degree
        obs = yield Action.move(p, card=card)
        card = None
        e = obs.entry_port
        leader = highest_free_label(obs.cards, exclude=my_label)
        if leader is not None and leader > my_label:
            return obs, leader
    return obs, None


def uxs_phase(
    ctx: RobotContext,
    obs: Observation,
    phase_start: int,
    plan: Optional[UxsPlan] = None,
    detect: bool = True,
):
    """The embedded UXS-gathering endgame.  Terminates internally.

    With ``detect=True`` (the paper's algorithm) a free robot terminates at
    the end of its silent post-bits ``2T`` wait.  With ``detect=False`` (the
    Ta-Shma–Zwick-style *gathering only* baseline) free robots run the full
    budgeted schedule and terminate at its end regardless — the harness then
    reads off the first-gathered round.
    """
    n = ctx.n
    label = ctx.label
    if plan is None:
        plan = practical_plan(n)
    t = plan.T
    if t == 0:  # n == 1: everyone is trivially gathered
        yield Action.terminate()
        return
    bits = bounds.id_bits_lsb_first(label)
    budget = bounds.schedule_bits(n)
    if len(bits) > budget:
        raise ValueError(
            f"label {label} has {len(bits)} bits, over the schedule budget "
            f"{budget} for n={n} (labels must lie in [1, n^b], b < a)"
        )
    schedule_end = phase_start + 1 + (budget + 1) * 2 * t

    assert obs.round == phase_start, (obs.round, phase_start)
    card = {"following": None, "alg": "uxs"}
    obs = yield Action.stay(card=card)

    def follow_forever(leader: int):
        return Action.follow(
            leader,
            until_round=None,
            on_leader_terminate="terminate",
            card={"following": leader, "alg": "uxs"},
        )

    # Robots sharing a node from the start form a group behind the largest.
    leader = highest_free_label(obs.cards, exclude=label)
    if leader is not None and leader > label:
        yield follow_forever(leader)
        return

    for p in range(budget + 1):
        p_start = phase_start + 1 + p * 2 * t
        p_mid = p_start + t
        p_end = p_start + 2 * t
        if p < len(bits):
            if bits[p] == 1:
                obs, leader = yield from uxs_explore(obs, plan.offsets, label)
                if leader is None:
                    obs, leader = yield from wait_for_merge(obs, p_end, label)
            else:
                obs, leader = yield from wait_for_merge(obs, p_mid, label)
                if leader is None:
                    obs, leader = yield from uxs_explore(obs, plan.offsets, label)
            if leader is not None:
                yield follow_forever(leader)
                return
        else:
            # Bits exhausted: the decisive 2T wait.
            obs, leader = yield from wait_for_merge(obs, p_end, label)
            if leader is not None:
                yield follow_forever(leader)
                return
            if detect:
                ctx.stats["uxs_phases_used"] = p + 1
                yield Action.terminate()
                return
            # gathering-only baseline: ride out the schedule
            obs, leader = yield from wait_for_merge(obs, schedule_end, label)
            if leader is not None:
                yield follow_forever(leader)
                return
            yield Action.terminate()
            return
    raise AssertionError("unreachable: bits fit in the budget")  # pragma: no cover


def uxs_gathering_program(plan: Optional[UxsPlan] = None, detect: bool = True):
    """Standalone UXS gathering with detection (Theorem 6)."""

    def factory(ctx: RobotContext):
        def program(ctx=ctx):
            obs = yield
            if ctx.n == 1:
                yield Action.terminate()
                return
            yield from uxs_phase(ctx, obs, phase_start=obs.round, plan=plan, detect=detect)

        return program(ctx)

    return factory
