"""``Faster-Gathering`` — the paper's main algorithm (§2.3, Theorems 12/16).

The staged composition:

* **step 1** — run ``Undispersed-Gathering``.  If the initial configuration
  was undispersed, this gathers everyone (Theorem 8); otherwise nobody
  moves.
* **steps 2..6** — for ``i = 1..5``: run ``i-Hop-Meeting`` (which converts
  a dispersed configuration with two robots within ``i`` hops into an
  undispersed one, Lemma 10) and then ``Undispersed-Gathering`` again.
* **step 7** — if still not gathered, fall back to the UXS algorithm of
  §2.1, which handles every configuration.

Detection (Lemma 11): at the end of each of the first six steps a robot is
either alone — in which case *every* robot is alone and the schedule
continues — or co-located with someone, in which case Theorem 8 guarantees
**all** robots are on this node, so the robot terminates.  Step 7 carries
its own detection (Theorem 6).

Knowledge ablations (both must be granted uniformly to all robots):

* ``knowledge["hop_distance"] = i`` (Remark 13) — jump straight to the step
  that handles initial pair distance ``i`` (0 → just undispersed), keeping
  the UXS fallback;
* ``knowledge["max_degree"] = Δ`` (Remark 14) — hop-meeting cycles shrink
  from ``Σ 2(n-1)^j`` to ``Σ 2Δ^j``.

Round complexity: ``O(min{R + T(i), Õ(n^5)})`` by initial pair distance
(Theorem 12), which with many robots becomes the headline regime table of
Theorem 16 via Lemma 15.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hop_meeting import hop_meeting_phase
from repro.core.undispersed import undispersed_phase
from repro.core.uxs_gathering import uxs_phase
from repro.sim.actions import Action
from repro.sim.robot import RobotContext
from repro.uxs.sequence import UxsPlan

__all__ = ["faster_gathering_program", "MAX_HOP_STEP"]

#: The paper runs hop-meeting for i = 1..5; beyond distance 5 the UXS
#: algorithm is already faster (discussion after Lemma 10).
MAX_HOP_STEP = 5


def faster_gathering_program(
    max_degree: Optional[int] = None,
    hop_distance: Optional[int] = None,
    plan: Optional[UxsPlan] = None,
):
    """Program factory for ``Faster-Gathering``.

    Parameters mirror the knowledge ablations (and may equivalently be
    granted via ``RobotSpec.knowledge``): ``max_degree`` enables Remark-14
    cycle lengths, ``hop_distance`` enables the Remark-13 shortcut.
    ``plan`` pins the UXS plan (defaults to the certified practical plan
    for ``n``).
    """

    def factory(ctx: RobotContext):
        if max_degree is not None:
            ctx.knowledge.setdefault("max_degree", max_degree)
        if hop_distance is not None:
            ctx.knowledge.setdefault("hop_distance", hop_distance)

        def program(ctx=ctx):
            obs = yield
            n = ctx.n
            if n == 1:
                yield Action.terminate()
                return

            hint = ctx.knowledge.get("hop_distance")
            if hint is not None and not (0 <= hint):
                raise ValueError(f"hop_distance hint must be >= 0, got {hint}")

            if hint is None:
                hop_steps = list(range(0, MAX_HOP_STEP + 1))  # 0 = plain undispersed
            elif hint > MAX_HOP_STEP:
                hop_steps = []  # straight to UXS
            else:
                hop_steps = [hint]

            for step_no, i in enumerate(hop_steps, start=1):
                if i > 0:
                    obs = yield from hop_meeting_phase(ctx, obs, i, phase_start=obs.round)
                obs = yield from undispersed_phase(ctx, obs, phase_start=obs.round)
                ctx.stats["steps_completed"] = step_no
                ctx.stats.setdefault("step_end_rounds", []).append(obs.round)
                if not obs.alone(ctx.label):
                    # Lemma 11 + Theorem 8: everyone is here.
                    ctx.stats["gathered_at_step"] = step_no
                    yield Action.terminate()
                    return

            ctx.stats["entered_uxs_fallback"] = True
            yield from uxs_phase(ctx, obs, phase_start=obs.round, plan=plan, detect=True)

        return program(ctx)

    return factory
