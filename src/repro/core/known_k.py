"""Known-``k`` detection ablation.

The paper is explicit that robots do **not** know ``k`` (and contrasts
itself with Elouasbi–Pelc [21], where two-robot detection makes ``k = 2``
implicit).  This module quantifies exactly what that ignorance costs: when
``k`` *is* known, detection collapses to a head-count — terminate the round
the co-located census reaches ``k`` — and the whole termination machinery
(silent ``2T`` waits, step boundaries) evaporates.

``known_k_gathering_program(k)`` runs the §2.1 UXS schedule for movement
(the gathering part is unchanged — known ``k`` does not help robots *find*
each other, only *know when to stop*), with the census check replacing the
silent-wait rule.  Benchmark E11 measures the detection-tail difference.

Correctness: all robots are co-located exactly when some node's census hits
``k``; every free robot at that node observes it in the same round (cards
are broadcast), terminates, and the terminate-cascade fells the followers —
so detection is exact and simultaneous.
"""

from __future__ import annotations

from typing import Optional

from repro.core import bounds
from repro.core.proglets import highest_free_label
from repro.sim.actions import Action, Observation
from repro.sim.robot import RobotContext
from repro.uxs.generators import practical_plan
from repro.uxs.sequence import UxsPlan

__all__ = ["known_k_gathering_program"]


def known_k_gathering_program(k: int, plan: Optional[UxsPlan] = None):
    """UXS-schedule gathering with census-based detection (knows ``k``)."""
    if k < 1:
        raise ValueError("k must be >= 1")

    def factory(ctx: RobotContext):
        def program(ctx=ctx):
            obs = yield
            n = ctx.n
            label = ctx.label
            if n == 1 or k == 1:
                yield Action.terminate()
                return
            the_plan = plan if plan is not None else practical_plan(n)
            t = the_plan.T
            bits = bounds.id_bits_lsb_first(label)
            budget = bounds.schedule_bits(n)
            phase_start = obs.round

            def census_done(o: Observation) -> bool:
                return len(o.cards) >= k

            card = {"following": None, "alg": "uxs-k"}
            obs = yield Action.stay(card=card)
            if census_done(obs):
                yield Action.terminate()
                return
            leader = highest_free_label(obs.cards, exclude=label)
            if leader is not None and leader > label:
                yield Action.follow(leader, card={"following": leader, "alg": "uxs-k"})
                return

            def wait_watching(obs, target):
                """Wait until ``target``; return early on census or merge."""
                while obs.round < target:
                    obs = yield Action.sleep(target, wake_on_meet=True)
                    if census_done(obs):
                        return obs, "done", None
                    lead = highest_free_label(obs.cards, exclude=label)
                    if lead is not None and lead > label:
                        return obs, "merge", lead
                return obs, "timeout", None

            for p in range(budget + 1):
                p_start = phase_start + 1 + p * 2 * t
                p_mid = p_start + t
                p_end = p_start + 2 * t
                halves = []
                bit = bits[p] if p < len(bits) else 0
                if p < len(bits) and bit == 1:
                    halves = [("explore", p_mid), ("wait", p_end)]
                else:
                    halves = [("wait", p_mid), ("explore", p_end)]
                outcome = None
                for kind, target in halves:
                    if kind == "explore":
                        e = 0
                        while obs.round < target:
                            sym = the_plan.offsets[obs.round - (target - t)]
                            port = (e + sym) % obs.degree
                            obs = yield Action.move(port)
                            e = obs.entry_port
                            if census_done(obs):
                                outcome = ("done", None)
                                break
                            lead = highest_free_label(obs.cards, exclude=label)
                            if lead is not None and lead > label:
                                outcome = ("merge", lead)
                                break
                    else:
                        obs, status, lead = yield from wait_watching(obs, target)
                        if status != "timeout":
                            outcome = (status, lead)
                    if outcome:
                        break
                if outcome:
                    status, lead = outcome
                    if status == "done":
                        yield Action.terminate()
                        return
                    yield Action.follow(lead, card={"following": lead, "alg": "uxs-k"})
                    return
            # schedule exhausted without census completion: with a correct k
            # this cannot happen (coverage guarantees meetings); fail loudly.
            raise RuntimeError(
                f"robot {label}: schedule exhausted, census never reached {k}"
            )

        return program(ctx)

    return factory
