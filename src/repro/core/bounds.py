"""Round-schedule arithmetic shared by every robot.

The paper's algorithms are *oblivious schedules*: every phase boundary is a
fixed function of ``n`` (the only graph parameter robots know), so that all
robots, knowing only ``n`` and the common round counter, agree on when each
phase starts and ends.  This module is that function library.  Robots call
it; the harness calls it; tests assert the implementations actually finish
within the budgets it promises.

Constants
---------
``LABEL_EXPONENT_CAP`` is the paper's ``a`` (footnote 8): schedules budget
for IDs up to ``n^a``, and label assignment must respect ``b < a``.  The
default ``a = 3`` leaves room for the default ``b = 2`` assignment.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "LABEL_EXPONENT_CAP",
    "schedule_bits",
    "id_bits_lsb_first",
    "hop_cycle_length",
    "hop_meeting_rounds",
    "phase1_rounds",
    "undispersed_rounds",
    "faster_gathering_boundaries",
    "max_label",
]

#: The paper's constant ``a`` — schedules budget for labels in [1, n^a].
LABEL_EXPONENT_CAP = 3


def max_label(n: int, exponent: int = 2) -> int:
    """Largest admissible label for ``b = exponent`` (must stay < a-cap)."""
    if exponent >= LABEL_EXPONENT_CAP:
        raise ValueError(
            f"label exponent b={exponent} must be < a={LABEL_EXPONENT_CAP} "
            "(the schedule budget, paper footnote 8)"
        )
    return max(2, n**exponent)


def schedule_bits(n: int) -> int:
    """How many ID-bit positions every schedule budgets for.

    Any label in ``[1, n^a]`` has at most ``ceil(a*log2(n))`` bits; we add
    one so even ``n = 2`` gets a sane schedule.  All robots use this same
    number of per-bit cycles, which is what lets them stay aligned.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return LABEL_EXPONENT_CAP * max(1, math.ceil(math.log2(max(n, 2)))) + 1


def id_bits_lsb_first(label: int) -> list[int]:
    """A label's bits, least-significant first, no padding.

    The paper reads IDs LSB→MSB; a robot that exhausts its bits enters its
    "wait" regime, which is *different* from having a 0 bit (Lemma 1 depends
    on this distinction).
    """
    if label < 1:
        raise ValueError("labels start at 1")
    out = []
    x = label
    while x:
        out.append(x & 1)
        x >>= 1
    return out


# ---------------------------------------------------------------------------
# i-Hop-Meeting (Section 2.3, Lemmas 9-10, Remark 14)
# ---------------------------------------------------------------------------
def hop_cycle_length(i: int, n: int, max_degree: Optional[int] = None) -> int:
    """Length of one hop-meeting cycle: ``T(i) = Σ_{j=1..i} 2·d^j``.

    ``d = n-1`` in the base model; when the maximum degree is known
    (Remark 14) ``d = Δ``, which is what makes hop-meeting affordable on
    bounded-degree graphs.
    """
    if i < 1:
        raise ValueError("hop distance i must be >= 1")
    d = (n - 1) if max_degree is None else max_degree
    d = max(d, 1)
    return sum(2 * d**j for j in range(1, i + 1))


def hop_meeting_rounds(i: int, n: int, max_degree: Optional[int] = None) -> int:
    """Total schedule length of ``i-Hop-Meeting``: one cycle per budgeted bit."""
    return hop_cycle_length(i, n, max_degree) * schedule_bits(n)


def hop_meeting_phase_length(i: int, n: int, max_degree: Optional[int] = None) -> int:
    """Embedded phase length: one publish/sync round plus the cycle schedule."""
    return 1 + hop_meeting_rounds(i, n, max_degree)


# ---------------------------------------------------------------------------
# Undispersed-Gathering (Section 2.2, Theorem 8)
# ---------------------------------------------------------------------------
def phase1_rounds(n: int) -> int:
    """Budget ``R1`` for Phase 1 (token map construction), ``O(n^3)``.

    Our token-explorer (see DESIGN.md, substitution S2) resolves at most
    ``2m <= n(n-1)`` frontier edges; one resolution costs at most one escort
    (``<= n`` moves), one announce (2 rounds), one probe crossing + return
    (2), one full sweep of the known map (``<= 2n``), one walk back to the
    probe edge (``<= n``), one crossing (1), one announce (2) and one escort
    step — comfortably below ``5n + 10`` rounds.  ``R1`` rounds that up with
    a wide margin (tests assert actual Phase-1 completion fits for every
    battery graph):

    ``R1(n) = 6·n^3 + 20·n^2 + 64``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return 6 * n**3 + 20 * n**2 + 64


def undispersed_rounds(n: int) -> int:
    """Length ``R`` of one full ``Undispersed-Gathering`` phase.

    Layout (relative rounds): 1 state-assignment/publish round, ``R1(n)``
    rounds of Phase 1 (map finding), then ``2n`` rounds of Phase 2 (the
    spanning-tree sweep is exactly ``2(n-1)`` moves, leaving 2 slack
    rounds).  The observation of the round *after* the phase is the caller's
    Lemma-11 aloneness check.

    ``R(n) = 1 + R1(n) + 2n``.
    """
    return 1 + phase1_rounds(n) + 2 * n


# ---------------------------------------------------------------------------
# Faster-Gathering step boundaries (Section 2.3, Theorem 12)
# ---------------------------------------------------------------------------
def faster_gathering_boundaries(
    n: int, max_degree: Optional[int] = None
) -> list[int]:
    """Absolute end-rounds of steps 1..6 of ``Faster-Gathering``.

    Step 1 is one ``Undispersed-Gathering`` phase (``R`` rounds).  Step
    ``s`` for ``s = 2..6`` is ``(s-1)-Hop-Meeting`` (one publish round plus
    its cycle schedule) followed by another ``Undispersed-Gathering``.
    Step 7 (the UXS fallback) starts at the last boundary; its length is
    governed by the UXS plan, not by this function.

    Returns ``[E1, E2, ..., E6]``.
    """
    r = undispersed_rounds(n)
    bounds_ = [r]
    for step in range(2, 7):
        i = step - 1
        bounds_.append(bounds_[-1] + hop_meeting_phase_length(i, n, max_degree) + r)
    return bounds_
