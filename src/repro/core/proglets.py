"""Reusable robot-program fragments ("proglets").

Robot programs are generators; these helpers are sub-generators composed
with ``yield from``.  Convention: every proglet takes the current
observation as its first argument and **returns the observation of the
round in which the caller next acts**, so callers thread ``obs`` through::

    obs = yield from sleep_until(obs, target, card)
    obs = yield from walk_ports(obs, route, card)

Card-handling convention used across the algorithms:

* every card contains ``"id"`` (enforced by the scheduler) and
  ``"following"`` — the label of the robot currently being followed, or
  ``None`` ("free");
* algorithm-specific fields (``"state"``, ``"groupid"``, ``"tok"``) ride on
  top and are documented where used.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence

from repro.sim.actions import Action, Observation

__all__ = [
    "sleep_until",
    "walk_ports",
    "highest_free_label",
    "wait_for_merge",
]


def sleep_until(obs: Observation, target: int, card: Optional[Dict[str, Any]] = None):
    """Sleep (ignoring meetings) until absolute round ``target``.

    No-op if ``target`` is not in the future.
    """
    while obs.round < target:
        obs = yield Action.sleep(target, wake_on_meet=False, card=card)
        card = None  # publish once
    return obs


def walk_ports(
    obs: Observation,
    ports: Iterable[int],
    card: Optional[Dict[str, Any]] = None,
):
    """Move along a port sequence, one port per round."""
    for p in ports:
        obs = yield Action.move(p, card=card)
        card = None
    return obs


def highest_free_label(cards: Sequence[Mapping[str, Any]], exclude: int) -> Optional[int]:
    """The largest label among co-located *free* robots (``following is
    None``), excluding ``exclude`` (the caller); ``None`` if there is none.

    This is the merge rule of the UXS algorithm and of hop-meeting: when a
    free robot sees a higher free robot, it starts following it.
    """
    best: Optional[int] = None
    for c in cards:
        label = c.get("id")
        if label == exclude or c.get("following") is not None:
            continue
        if best is None or label > best:
            best = label
    return best


def wait_for_merge(
    obs: Observation,
    target: int,
    my_label: int,
    card: Optional[Dict[str, Any]] = None,
):
    """Wait until round ``target``, watching for a higher free robot.

    Sleeps with ``wake_on_meet``; each time somebody arrives, checks the
    merge rule.  Returns ``(obs, leader)`` where ``leader`` is the label of
    a higher free robot to start following, or ``None`` if the wait ran to
    ``target`` undisturbed (the caller then owns the round-``target``
    observation).
    """
    while obs.round < target:
        obs = yield Action.sleep(target, wake_on_meet=True, card=card)
        card = None
        leader = highest_free_label(obs.cards, exclude=my_label)
        if leader is not None and leader > my_label:
            return obs, leader
    return obs, None
