"""``Undispersed-Gathering`` (paper Section 2.2, Theorem 8).

Phase layout (all robots derive it from ``n`` alone; see
:func:`repro.core.bounds.undispersed_rounds`):

* **round 0** (relative): *state assignment* — robots observe co-located
  labels; a robot alone becomes ``waiter``; the minimum label of a
  co-located group becomes ``finder``; the rest become ``helper`` with
  ``groupid`` = their finder's label.
* **rounds 1 .. R1**: *Phase 1 (map finding)* — each finder builds a full
  port-labeled map using its helpers as a movable token
  (:func:`repro.mapping.token_map.build_map_with_token`), then parks
  everyone until Phase 2.  Waiters sleep through the whole phase.
* **rounds R1+1 .. R1+2n**: *Phase 2 (gathering)* — each finder walks a
  closed spanning-tree tour of its map (exactly ``2(n-1)`` moves),
  collecting robots by the paper's groupid-capture rules; every robot ends
  at the minimum-groupid finder's Phase-2 start node.
* the phase ends after ``R = 1 + R1 + 2n`` rounds; the caller (standalone
  program or ``Faster-Gathering``) owns the next observation, with which it
  checks aloneness (Lemma 11) and terminates or proceeds.

Phase-2 capture rules (paper, verbatim in spirit):

* a **finder** keeps touring while no co-located finder/helper has a
  strictly smaller ``groupid``; on meeting a smaller-groupid *finder* it
  becomes a helper and follows it; on meeting only smaller-groupid
  *helpers* it becomes a helper, adopts the smallest groupid, and parks.
* a **helper** stays parked until a finder with a strictly smaller
  ``groupid`` is co-located, then adopts its groupid and follows it; while
  following, it mirrors its leader as long as the leader's card shows it is
  a finder *or is itself following someone* (the chain of Lemma 7); if the
  leader parks, it parks.
* a **waiter** sleeps until a finder arrives, then becomes a helper
  following the minimum-groupid co-located finder.

Cards: ``{"state": finder|helper|waiter, "groupid": int, "tok":
follow|hold|park|tour, "following": label|None}``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core import bounds
from repro.core.proglets import sleep_until
from repro.mapping.token_map import build_map_with_token
from repro.sim.actions import Action, Observation
from repro.sim.robot import RobotContext

__all__ = ["undispersed_phase", "undispersed_gathering_program"]

FINDER = "finder"
HELPER = "helper"
WAITER = "waiter"


def _min_colocated_finder(
    cards: Sequence[Mapping[str, Any]], below: Optional[int] = None
) -> Optional[Mapping[str, Any]]:
    """The co-located finder card with the smallest groupid (< ``below``)."""
    best = None
    for c in cards:
        if c.get("state") != FINDER:
            continue
        g = c.get("groupid")
        if below is not None and g >= below:
            continue
        if best is None or g < best.get("groupid"):
            best = c
    return best


def _capture_trigger(
    cards: Sequence[Mapping[str, Any]], my_groupid: int
) -> Optional[Tuple[str, Mapping[str, Any]]]:
    """Evaluate the paper's finder capture rule against co-located cards.

    Returns ``("follow", card)`` when a strictly-smaller-groupid finder — or
    a *moving* helper (one that is itself following a chain, Lemma 7) — is
    present: the finder must become a helper and mirror it.  Returns
    ``("park", card)`` when only *stationary* smaller-groupid helpers are
    present (the min-group's home situation): become a helper, adopt the
    smallest groupid, stay.  ``None`` → keep touring.

    Distinguishing moving chains from parked groups is what makes Lemma 7's
    funnel argument airtight: chains are heading to the minimum group's node
    and must be ridden, parked groups are pickup points for the minimum
    finder and must be joined in place.
    """
    best_follow = None
    best_park = None
    for c in cards:
        g = c.get("groupid")
        state = c.get("state")
        if state not in (FINDER, HELPER) or g is None or g >= my_groupid:
            continue
        if state == FINDER or c.get("following") is not None:
            if best_follow is None or g < best_follow.get("groupid"):
                best_follow = c
        else:
            if best_park is None or g < best_park.get("groupid"):
                best_park = c
    if best_follow is not None:
        return ("follow", best_follow)
    if best_park is not None:
        return ("park", best_park)
    return None


# ---------------------------------------------------------------------------
# Role bodies
# ---------------------------------------------------------------------------
def _finder_body(ctx: RobotContext, obs: Observation, phase2_start: int, sync_round: int):
    """Phase 1 + Phase 2 of a finder.  Returns the sync-round observation."""
    gid = ctx.label

    def make_card(tok: str) -> Dict[str, Any]:
        return {"state": FINDER, "groupid": gid, "tok": tok, "following": None}

    # ---- Phase 1: build the map ------------------------------------------
    start_round = obs.round
    obs, rmap, here = yield from build_map_with_token(ctx, obs, gid, make_card)
    ctx.stats["phase1_rounds_used"] = obs.round - start_round
    if obs.round >= phase2_start:
        raise RuntimeError(
            f"finder {ctx.label}: map construction overran the R1 budget "
            f"(finished at {obs.round}, budget end {phase2_start - 1})"
        )
    if rmap.num_nodes != ctx.n:
        raise RuntimeError(
            f"finder {ctx.label}: map has {rmap.num_nodes} nodes, expected {ctx.n}"
        )
    # Park the token and sleep out the rest of the R1 budget.
    obs = yield Action.stay(card=make_card("park"))
    obs = yield from sleep_until(obs, phase2_start)

    # ---- Phase 2: spanning-tree tour with capture checks ------------------
    tour_ports, _tour_nodes = rmap.euler_tour(here)
    card = make_card("tour")
    step = 0
    while step < len(tour_ports):
        # capture checks against the cards visible this round
        trig = _capture_trigger(obs.cards, gid)
        if trig is not None:
            kind, c = trig
            obs = yield from _helper_loop(
                ctx, obs, sync_round,
                groupid=c["groupid"],
                leader=c["id"] if kind == "follow" else None,
                announce=True,
            )
            return obs
        obs = yield Action.move(tour_ports[step], card=card)
        card = None
        step += 1
    # Tour complete: back at the Phase-2 start node.  Only the minimum-
    # groupid finder ever gets here (every other finder parks when its tour
    # passes the minimum group's node), but stay capture-aware for safety.
    while obs.round < sync_round:
        obs = yield Action.sleep(sync_round, wake_on_meet=True, card=card)
        card = None
        trig = _capture_trigger(obs.cards, gid)
        if trig is not None:
            kind, c = trig
            obs = yield from _helper_loop(
                ctx, obs, sync_round,
                groupid=c["groupid"],
                leader=c["id"] if kind == "follow" else None,
                announce=True,
            )
            return obs
    return obs


def _helper_loop(
    ctx: RobotContext,
    obs: Observation,
    sync_round: int,
    groupid: int,
    leader: Optional[int],
    announce: bool,
):
    """Phase-2 helper behaviour (shared by helpers, captured waiters and
    captured finders) until the sync round.

    ``leader=None`` means parked.  ``announce`` publishes the helper card
    immediately (used on state changes).
    """
    card: Optional[Dict[str, Any]] = None
    if announce:
        card = {"state": HELPER, "groupid": groupid, "tok": "-", "following": leader}

    while obs.round < sync_round:
        if leader is not None:
            lc = None
            for c in obs.cards:
                if c.get("id") == leader:
                    lc = c
                    break
            if lc is not None and (
                lc.get("state") == FINDER or lc.get("following") is not None
            ):
                # Leader still on the move (or chained): mirror it.  Keep
                # our groupid synchronized with the leader's so downstream
                # capture decisions never act on stale group information.
                lg = lc.get("groupid")
                if lg is not None and lg != groupid:
                    groupid = lg
                    card = {"state": HELPER, "groupid": groupid, "tok": "-", "following": leader}
                obs = yield Action.follow_once(leader, card=card)
                card = None
                continue
            # leader parked (or vanished — impossible for correct chains):
            leader = None
            card = {"state": HELPER, "groupid": groupid, "tok": "-", "following": None}

        # parked: wait for a capturing finder with a smaller groupid
        f = _min_colocated_finder(obs.cards, below=groupid)
        if f is not None:
            groupid = f["groupid"]
            leader = f["id"]
            card = {"state": HELPER, "groupid": groupid, "tok": "-", "following": leader}
            continue
        obs = yield Action.sleep(sync_round, wake_on_meet=True, card=card)
        card = None
    return obs


def _phase1_helper_body(ctx: RobotContext, obs: Observation, phase2_start: int, my_finder: int):
    """Phase-1 helper: act as (part of) the movable token.

    Obeys the finder card *seen* each round: ``follow`` → mirror the
    finder's move; ``hold`` → stay put (and sleep once the finder leaves);
    ``park`` → sleep until Phase 2.  Returns the Phase-2 start observation.
    """
    while obs.round < phase2_start:
        fc = None
        for c in obs.cards:
            if c.get("id") == my_finder:
                fc = c
                break
        if fc is None:
            # finder away: doze until something arrives (the finder's sweep
            # or return), or Phase 2 begins
            obs = yield Action.sleep(phase2_start, wake_on_meet=True)
            continue
        tok = fc.get("tok")
        if tok == "follow":
            obs = yield Action.follow_once(my_finder)
        elif tok == "park":
            obs = yield from sleep_until(obs, phase2_start)
        else:  # "hold" (or the finder's tour card, which cannot occur here)
            obs = yield Action.stay()
    return obs


def _waiter_body(ctx: RobotContext, obs: Observation, phase2_start: int, sync_round: int):
    """Waiter: inert in Phase 1; captured by the first visiting finder in
    Phase 2 (minimum-groupid among simultaneous arrivals)."""
    obs = yield from sleep_until(obs, phase2_start)
    while obs.round < sync_round:
        f = _min_colocated_finder(obs.cards)
        if f is not None:
            obs = yield from _helper_loop(
                ctx, obs, sync_round,
                groupid=f["groupid"], leader=f["id"], announce=True,
            )
            return obs
        obs = yield Action.sleep(sync_round, wake_on_meet=True)
    return obs


# ---------------------------------------------------------------------------
# The phase and the standalone program
# ---------------------------------------------------------------------------
def undispersed_phase(ctx: RobotContext, obs: Observation, phase_start: int):
    """One full ``Undispersed-Gathering`` phase.

    Starts at ``obs.round == phase_start`` and returns the observation of
    round ``phase_start + bounds.undispersed_rounds(n)`` — the first round
    of whatever follows, with which the caller performs the Lemma-11
    aloneness check.
    """
    n = ctx.n
    r1 = bounds.phase1_rounds(n)
    phase2_start = phase_start + 1 + r1
    sync_round = phase2_start + 2 * n
    assert obs.round == phase_start, (obs.round, phase_start)

    # ---- state assignment (round phase_start) ----------------------------
    labels_here = sorted(c["id"] for c in obs.cards)
    if len(labels_here) == 1:
        ctx.stats.setdefault("roles", []).append(WAITER)
        obs = yield Action.stay(
            card={"state": WAITER, "groupid": None, "tok": "-", "following": None}
        )
        obs = yield from _waiter_body(ctx, obs, phase2_start, sync_round)
        return obs

    if ctx.label == labels_here[0]:
        ctx.stats.setdefault("roles", []).append(FINDER)
        obs = yield Action.stay(
            card={"state": FINDER, "groupid": ctx.label, "tok": "follow", "following": None}
        )
        obs = yield from _finder_body(ctx, obs, phase2_start, sync_round)
        return obs

    ctx.stats.setdefault("roles", []).append(HELPER)
    my_finder = labels_here[0]
    obs = yield Action.stay(
        card={"state": HELPER, "groupid": my_finder, "tok": "-", "following": None}
    )
    obs = yield from _phase1_helper_body(ctx, obs, phase2_start, my_finder)
    obs = yield from _helper_loop(
        ctx, obs, sync_round, groupid=my_finder, leader=None, announce=False
    )
    return obs


def undispersed_gathering_program(terminate: str = "always"):
    """Standalone ``Undispersed-Gathering`` (Theorem 8).

    ``terminate="always"`` reproduces the paper's counter-based termination
    at round ``R``: correct whenever the *input* is undispersed.
    ``terminate="if_not_alone"`` applies the Lemma-11 check instead (used
    when the input might be dispersed and the caller wants the phase to be
    a no-op detectable from aloneness).
    """
    if terminate not in ("always", "if_not_alone"):
        raise ValueError("terminate must be 'always' or 'if_not_alone'")

    def factory(ctx: RobotContext):
        def program(ctx=ctx):
            obs = yield
            if ctx.n == 1:
                yield Action.terminate()
                return
            obs = yield from undispersed_phase(ctx, obs, phase_start=obs.round)
            if terminate == "always" or not obs.alone(ctx.label):
                yield Action.terminate()
                return
            # alone and asked to only terminate when gathered: by Lemma 11
            # everyone is alone; stop anyway but record the outcome.
            ctx.stats["ended_alone"] = True
            yield Action.terminate()

        return program(ctx)

    return factory
