"""Command-line interface: run gathering experiments without writing code.

Examples::

    python -m repro families
    python -m repro bounds --n 16
    python -m repro plan --n 12
    python -m repro run --family ring --n 12 --k 7 --algorithm faster
    python -m repro run --family erdos_renyi --n 16 --k 5 \\
        --placement scatter --labels adversarial_long --trace
    python -m repro sweep --family ring --algorithm undispersed \\
        --ns 8 12 16 24 --k 4
    python -m repro sweep --ns 8 12 16 --workers 4 --cache-dir .repro-cache
    python -m repro report --workers 4 --cache-dir .repro-cache --out report.md
    python -m repro scenarios list
    python -m repro scenarios describe single-crash-waiter
    python -m repro scenarios run crash-storm --workers 2
    python -m repro sweep --scenario adversarial-activation
    python -m repro fuzz run --seed 0 --budget 50 --corpus-dir .fuzz-corpus
    python -m repro fuzz corpus --corpus-dir .fuzz-corpus
    python -m repro fuzz replay --corpus-dir .fuzz-corpus
    python -m repro campaign create --ns 8 12 16 --replicas 8 --cache-dir .repro-cache
    python -m repro campaign run --campaign ID --cache-dir .repro-cache --workers 4
    python -m repro campaign status --cache-dir .repro-cache
    python -m repro campaign resume --campaign ID --cache-dir .repro-cache

The CLI is a thin shell over :mod:`repro.analysis` and :mod:`repro.runtime`:
``run``, ``sweep`` and ``report`` describe their work as
:class:`repro.runtime.RunSpec` batches and dispatch through
:func:`repro.runtime.execute`.  ``--workers N`` fans the batch out over N
worker processes (rows are identical to serial execution, just faster);
``--cache-dir DIR`` memoizes completed runs on disk so repeated
invocations execute zero simulations.  ``scenarios`` exposes the curated
registry of :mod:`repro.scenarios` (see docs/SCENARIOS.md); ``fuzz``
drives the adversarial schedule search of :mod:`repro.search` (see
docs/FUZZING.md); ``campaign`` runs crash-safe sharded campaigns through
:mod:`repro.campaigns` — durable manifests, filesystem work-stealing,
resume-from-anywhere (see docs/CAMPAIGNS.md).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.analysis.experiments import regime_for
from repro.analysis.fitting import loglog_slope
from repro.analysis.placement import LABEL_SCHEMES
from repro.analysis.tables import render_table
from repro.core import bounds
from repro.graphs import generators as gg
from repro.runtime import (
    ALGORITHM_BUILDERS,
    NO_DETECTION,
    NO_UXS,
    ExecutionStats,
    Executor,
    ParallelExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    execute,
    list_engines,
    replicate_spec,
)
from repro.campaigns import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_LEASE_TIMEOUT,
    CampaignManifest,
    list_manifests,
    load_manifest,
    resolve_campaign_id,
    run_campaign,
    save_manifest,
    status_of,
)
from repro.scenarios import all_scenarios, get_scenario, scenario_names
from repro.search.space import target_names
from repro.sim.batch import HAVE_NUMPY

__all__ = ["main"]


def graph_params(args) -> Dict[str, Any]:
    """Translate CLI arguments into keyword arguments for the graph family
    (the declarative ``RunSpec.graph`` payload)."""
    kwargs: Dict[str, Any] = {}
    fn = gg.FAMILIES[args.family]
    import inspect

    sig = inspect.signature(fn)
    if "n" in sig.parameters:
        kwargs["n"] = args.n
    if "rows" in sig.parameters:
        kwargs["rows"] = args.rows or max(2, int(args.n**0.5))
        kwargs["cols"] = args.cols or max(2, args.n // kwargs["rows"])
    if "dim" in sig.parameters:
        kwargs["dim"] = max(1, args.n.bit_length() - 1)
    if "d" in sig.parameters:
        kwargs["d"] = args.degree
    if "seed" in sig.parameters:
        kwargs["seed"] = args.seed
    if "numbering" in sig.parameters:
        kwargs["numbering"] = args.numbering
    return kwargs


def build_graph(args) -> object:
    return gg.by_name(args.family, **graph_params(args))


def spec_from_args(args) -> RunSpec:
    """One declarative RunSpec for the configuration the flags describe."""
    if args.placement == "pair-distance" and args.pair_distance is None:
        raise SystemExit("--pair-distance is required for this placement")
    placement_args: Dict[str, Any] = {"seed": args.seed}
    if args.placement == "pair-distance":
        placement_args["distance"] = args.pair_distance
    algorithm_args = {
        key: value
        for key, value in (
            ("max_degree", args.max_degree),
            ("hop_distance", args.hop_distance),
        )
        if value is not None
    }
    knowledge = dict(algorithm_args)
    return RunSpec(
        algorithm=args.algorithm,
        family=args.family,
        graph=graph_params(args),
        placement=args.placement,
        k=args.k,
        placement_args=placement_args,
        labels=args.labels,
        labels_args={"seed": args.seed},
        algorithm_args=algorithm_args,
        knowledge=knowledge,
        seed=args.seed,
        uses_uxs=args.algorithm not in NO_UXS,
        stop_on_gather=args.algorithm in NO_DETECTION,
        max_rounds=args.max_rounds,
    )


def make_executor(args) -> Executor:
    if args.workers is not None and args.workers > 1:
        return ParallelExecutor(workers=args.workers)
    return SerialExecutor()


def make_cache(args) -> Optional[ResultCache]:
    if not args.cache_dir:
        return None
    try:
        return ResultCache(args.cache_dir)
    except OSError as exc:
        raise SystemExit(f"--cache-dir {args.cache_dir}: {exc}")


def runtime_requested(args) -> bool:
    """Whether to print the runtime accounting line (only when the user
    opted into the runtime flags, so default output stays byte-stable)."""
    return args.workers is not None or bool(args.cache_dir)


def resolve_engine_flag(args) -> Optional[str]:
    """The engine name the flags select, mapping deprecated ``--batch``.

    ``--batch`` stays accepted for one release as an alias for the best
    available replica backend; it warns on stderr so scripts migrate to
    ``--engine batch-numpy`` / ``--engine batch-list`` (an explicit
    ``--engine`` wins when both are given).
    """
    engine = getattr(args, "engine", None)
    if getattr(args, "batch", False):
        print(
            "warning: --batch is deprecated; use --engine batch-numpy "
            "(or --engine batch-list)",
            file=sys.stderr,
        )
        if engine is None:
            engine = "batch-numpy" if HAVE_NUMPY else "batch-list"
    return engine


def runtime_context(args) -> str:
    """Scenario / knowledge-ablation suffix for the runtime summary line,
    so the accounting says *what* ran, not just how much."""
    parts = []
    if getattr(args, "scenario", None):
        parts.append(f"scenario={args.scenario}")
    if getattr(args, "replicas", 1) > 1:
        parts.append(f"replicas={args.replicas}")
    if getattr(args, "engine", None):
        parts.append(f"engine={args.engine}")
    if getattr(args, "batch", False):
        parts.append("batch=on")
    if getattr(args, "max_degree", None) is not None:
        parts.append(f"knowledge[max_degree]={args.max_degree}")
    if getattr(args, "hop_distance", None) is not None:
        parts.append(f"knowledge[hop_distance]={args.hop_distance}")
    return " — " + ", ".join(parts) if parts else ""


def cmd_families(_args) -> int:
    rows = [{"family": name} for name in sorted(gg.FAMILIES)]
    print(render_table(rows, title="graph families"))
    return 0


def cmd_bounds(args) -> int:
    n = args.n
    rows = [
        {"quantity": "schedule_bits(n)", "value": bounds.schedule_bits(n)},
        {"quantity": "R1(n)  (Phase-1 budget)", "value": bounds.phase1_rounds(n)},
        {"quantity": "R(n)   (Undispersed-Gathering)", "value": bounds.undispersed_rounds(n)},
    ]
    for i in range(1, 6):
        rows.append(
            {
                "quantity": f"T({i})·bits  ({i}-Hop-Meeting)",
                "value": bounds.hop_meeting_rounds(i, n, args.max_degree),
            }
        )
    for step, e in enumerate(bounds.faster_gathering_boundaries(n, args.max_degree), 1):
        rows.append({"quantity": f"Faster-Gathering E{step}", "value": e})
    print(render_table(rows, title=f"schedule arithmetic for n={n}"
                       + (f", Δ={args.max_degree}" if args.max_degree else "")))
    return 0


def cmd_plan(args) -> int:
    from repro.uxs.generators import certification_battery, practical_plan

    plan = practical_plan(args.n)
    battery = certification_battery(args.n)
    print(f"practical UXS plan for n={args.n}:")
    print(f"  length T = {plan.T}   provenance = {plan.provenance}")
    print(f"  certified on {len(battery)} battery graphs from every start node")
    print(f"  paper-exact padding would be Õ(n^5) ≈ {args.n ** 5}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import generate_report, report_scenarios

    stats = ExecutionStats()
    text = generate_report(
        quick=not args.full,
        executor=make_executor(args),
        cache=make_cache(args),
        root_seed=args.seed,
        stats=stats,
    )
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    if runtime_requested(args):
        scenarios = ", ".join(report_scenarios(quick=not args.full))
        print(f"\n{stats.summary()} — scenarios: {scenarios}")
    return 0


def cmd_show(args) -> int:
    graph = build_graph(args)
    print(f"{args.family}: n={graph.n}, m={graph.m}, "
          f"degrees {graph.min_degree}..{graph.max_degree}")
    rows = []
    for v in graph.nodes():
        cells = [f"p{p}->{graph.neighbor(v, p)}" for p in graph.ports(v)]
        rows.append({"node": v, "degree": graph.degree(v), "ports": "  ".join(cells)})
    print(render_table(rows, title="adjacency (simulator view; robots never see this)"))
    return 0


def cmd_run(args) -> int:
    spec = spec_from_args(args)
    result = execute([spec], executor=make_executor(args), cache=make_cache(args))
    rec = result.outcomes[0].run_or_raise()
    print(render_table([rec.as_row()], title=f"{args.algorithm} on {args.family}"))
    if rec.k and rec.n:
        print(f"\nTheorem-16 regime for k={rec.k}, n={rec.n}: {regime_for(rec.k, rec.n)}")
    if args.algorithm in NO_DETECTION:
        print("(no detection: 'rounds' is when the harness stopped; see first_gather)")
    if runtime_requested(args):
        print(f"\n{result.stats.summary()}{runtime_context(args)}")
    return 0 if rec.gathered or args.algorithm in NO_DETECTION else 1


@contextmanager
def _maybe_profile(args):
    """cProfile context for ``sweep --profile`` (see docs/RUNTIME.md).

    Yields whether profiling is on; on exit prints the top 20
    cumulative-time entries.  Profiling forces serial in-process execution
    so the profile actually observes the simulations; worker processes
    would run them outside the profiler.
    """
    if not getattr(args, "profile", False):
        yield False
        return
    import cProfile
    import pstats

    if args.workers:
        print("--profile forces serial execution (workers ignored)\n")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield True
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print("profile: top 20 by cumulative time")
        stats.print_stats(20)


def _profiled_execute(args, specs, **kwargs):
    """``execute``, optionally under cProfile (``sweep --profile``)."""
    with _maybe_profile(args) as profiling:
        executor = SerialExecutor() if profiling else make_executor(args)
        return execute(specs, executor=executor, **kwargs)


def sweep_specs(args) -> List[RunSpec]:
    """The sweep grid as specs: one per ``--ns`` entry, times replicas.

    Shared by ``sweep`` and ``campaign create`` so a campaign built from
    the same flags produces the same cache keys a direct sweep would —
    results flow between the two transparently through the cache.
    """
    specs: List[RunSpec] = []
    for n in args.ns:
        ns_args = argparse.Namespace(**vars(args))
        ns_args.n = n
        base = spec_from_args(ns_args)
        if args.replicas > 1:
            specs.extend(replicate_spec(base, args.replicas, args.seed, salt=f"sweep:{n}"))
        else:
            specs.append(base)
    return specs


def cmd_sweep(args) -> int:
    if args.scenario:
        return _sweep_scenario(args)
    replicas = args.replicas
    cache = make_cache(args)
    swept = 0
    if args.resume:
        if cache is None:
            raise SystemExit("--resume needs --cache-dir: resuming means "
                             "trusting (and first cleaning) a cache directory")
        swept = cache.sweep_stale_tmp()
        cache.refresh()
    specs = sweep_specs(args)
    result = _profiled_execute(
        args, specs, cache=cache, engine=resolve_engine_flag(args)
    )
    result.stats.tmp_swept += swept
    if replicas > 1:
        # One aggregate row per n: a replica campaign reports the seed
        # distribution, not R near-identical table rows.
        rows = []
        for i, n in enumerate(args.ns):
            recs = [
                o.run_or_raise()
                for o in result.outcomes[i * replicas : (i + 1) * replicas]
            ]
            rounds = [r.rounds for r in recs]
            rows.append(
                {
                    "n": n,
                    "replicas": replicas,
                    "rounds_min": min(rounds),
                    "rounds_mean": round(sum(rounds) / len(rounds)),
                    "rounds_max": max(rounds),
                    "moves_mean": round(sum(r.total_moves for r in recs) / len(recs)),
                    "gathered": sum(1 for r in recs if r.gathered),
                }
            )
        print(
            render_table(
                rows,
                title=f"sweep: {args.algorithm} on {args.family} × {replicas} replicas",
            )
        )
        slope_rounds = [r["rounds_mean"] for r in rows]
    else:
        rows = [outcome.run_or_raise().as_row() for outcome in result.outcomes]
        print(render_table(rows, title=f"sweep: {args.algorithm} on {args.family}"))
        slope_rounds = [r["rounds"] for r in rows]
    if len(args.ns) >= 2:
        slope = loglog_slope(args.ns, slope_rounds)
        print(f"\nlog-log slope of rounds vs n: {slope:.2f}")
    if runtime_requested(args):
        print(f"\n{result.stats.summary()}{runtime_context(args)}")
    return 0


def _reject_ignored_flags(args, defaults_argv: List[str], honored: set, reason: str) -> None:
    """Fail loudly when flags the command would silently ignore were set.

    Compares ``args`` against a fresh parse of ``defaults_argv`` and
    rejects any non-``honored`` flag that differs from its default —
    better a crisp error than a user believing their flags took effect.
    """
    defaults = vars(make_parser().parse_args(defaults_argv))
    ignored = sorted(
        "--" + key.replace("_", "-")
        for key, value in vars(args).items()
        if key in defaults and key not in honored and value != defaults[key]
    )
    if ignored:
        raise SystemExit(f"{reason}; these flags would be ignored: {', '.join(ignored)}")


def _sweep_scenario(args) -> int:
    """``sweep --scenario NAME``: the same campaign path as ``scenarios
    run`` (clean twins, fault metrics, summary).

    A scenario's specs are pinned in the registry, so every spec-shaping
    sweep flag would be silently ignored — reject such combinations loudly
    instead of letting the user believe their flags took effect.
    """
    _reject_ignored_flags(
        args,
        ["sweep", "--scenario", args.scenario],
        {"scenario", "workers", "cache_dir", "profile", "replicas", "batch", "engine"},
        f"--scenario {args.scenario} runs the registry's pinned specs",
    )
    args.name = args.scenario
    return cmd_scenarios_run(args)


def cmd_scenarios_list(_args) -> int:
    rows = [
        {
            "scenario": sc.name,
            "runs": len(sc.specs),
            "tags": ",".join(sc.tags),
            "title": sc.title,
        }
        for sc in all_scenarios()
    ]
    print(render_table(rows, title=f"{len(rows)} registered scenarios"))
    print("\n(details: python -m repro scenarios describe NAME)")
    return 0


def cmd_scenarios_describe(args) -> int:
    scenario = get_scenario(args.name)
    print(f"scenario: {scenario.name}")
    print(f"  title:       {scenario.title}")
    if scenario.paper:
        print(f"  paper:       {scenario.paper}")
    if scenario.tags:
        print(f"  tags:        {', '.join(scenario.tags)}")
    print(f"  description: {scenario.description}")
    print(f"  expectation: {scenario.expectation}")
    print()
    print(render_table(list(scenario.spec_rows()), title=f"{len(scenario.specs)} compiled specs"))
    # The exact content-addressed identity of each compiled spec: the same
    # SHA-256 the result cache files are named by, so a describe output can
    # be checked against a cache directory byte-for-byte.
    print("\ncache identity (sha256 of RunSpec.canonical_json):")
    for i, spec in enumerate(scenario.specs):
        print(f"  spec {i}: {ResultCache.key_for(spec)}")
    return 0


def cmd_scenarios_run(args) -> int:
    from repro.analysis.sweeps import scenario_sweep

    # No root_seed here: curated scenarios pin every behavioral seed, and a
    # root seed would re-key each spec, divorcing the cache entries from
    # the identities `scenarios describe` prints.
    with _maybe_profile(args) as profiling:
        out = scenario_sweep(
            args.name,
            executor=SerialExecutor() if profiling else make_executor(args),
            cache=make_cache(args),
            replicas=getattr(args, "replicas", 1),
            engine=resolve_engine_flag(args),
        )
    print(render_table(out["rows"], title=f"scenario: {args.name}"))
    summary = out["summary"]
    rate = summary["mis_detection_rate"]
    print(
        f"\ncampaign: {summary['runs']} runs, {summary['failures']} failed, "
        f"mis-detection rate {'n/a' if rate is None else f'{rate:.2f}'}, "
        f"{summary['stranded_total']} stranded, {summary['crashed_total']} crashed"
    )
    print(f"expectation: {out['expectation']}")
    if runtime_requested(args):
        print(f"\n{out['stats'].summary()} — scenario={args.name}")
    return 0 if summary["failures"] == 0 else 1


def _fuzz_row(result) -> Dict[str, Any]:
    plan = result.spec.fault_plan()
    return {
        "target": result.genome.target,
        "activation": result.genome.activation,
        "faults": plan.describe() if plan else "none",
        "rounds": result.rounds,
        "baseline": result.baseline_rounds,
        "regret": result.regret,
        "bound": result.bound,
        "key": result.key[:10],
    }


def cmd_fuzz_run(args) -> int:
    from repro.search import FuzzCampaign, entry_from_result, save_entry

    campaign = FuzzCampaign(
        seed=args.seed,
        budget=args.budget,
        targets=args.targets,
        engine=args.engine,
        cache=make_cache(args),
        executor=make_executor(args),
        explore=args.explore,
        min_regret=args.min_regret,
    )
    progress = None
    if args.verbose:

        def progress(r):
            status = f"regret={r.regret}" if r.ok else f"aborted ({r.error_type})"
            print(f"  [{r.iteration + 1}/{args.budget}] {r.genome.target}: {status}")

    report = campaign.run(progress=progress)
    print(
        f"fuzz campaign: seed={args.seed}, budget={args.budget} — "
        f"{len(report.positives)} positive-regret candidates, "
        f"{len(report.aborted)} aborted"
    )
    if report.minimized:
        rows = [_fuzz_row(r) for r in report.minimized]
        print()
        print(render_table(
            rows,
            title=f"{len(rows)} minimized worst cases (regret >= {args.min_regret})",
        ))
    else:
        print(f"no schedule reached regret >= {args.min_regret} within budget")
    if args.corpus_dir and report.minimized:
        paths = []
        for r in report.minimized:
            entry = entry_from_result(
                r,
                found={"seed": args.seed, "budget": args.budget, "iteration": r.iteration},
            )
            paths.append(save_entry(entry, args.corpus_dir))
        print(f"\ncorpus: wrote {len(paths)} entries to {args.corpus_dir}")
        for p in paths:
            print(f"  {p.name}")
    if runtime_requested(args):
        print(f"\n{report.stats.summary()} — fuzz seed={args.seed}")
    return 0


def cmd_fuzz_corpus(args) -> int:
    from repro.search import load_corpus, register_corpus

    entries = load_corpus(args.corpus_dir)
    if not entries:
        print(f"no corpus entries in {args.corpus_dir}")
        return 1
    rows = [
        {
            "entry": e.name,
            "target": e.target,
            "rounds": e.rounds,
            "baseline": e.baseline_rounds,
            "regret": e.regret,
            "bound": e.bound,
            "found": f"seed {e.found.get('seed', '?')}",
        }
        for e in entries
    ]
    print(render_table(rows, title=f"{len(entries)} corpus entries in {args.corpus_dir}"))
    if args.register:
        scenarios = register_corpus(entries, replace=True)
        print("\nregistered as scenarios (in this process):")
        for sc in scenarios:
            print(f"  {sc.name}")
        print("(inspect with: python -m repro scenarios describe NAME)")
    return 0


def cmd_fuzz_replay(args) -> int:
    from repro.search import load_corpus, replay_entry, replayable_engines

    entries = load_corpus(args.corpus_dir)
    if not entries:
        print(f"no corpus entries in {args.corpus_dir}")
        return 1
    cache = make_cache(args)
    executor = make_executor(args)
    stats = ExecutionStats()
    rows = []
    failures = 0
    for entry in entries:
        supported = replayable_engines(entry.spec)
        engines = [args.engine] if args.engine else supported
        for engine in engines:
            if engine not in supported:
                rows.append({
                    "entry": entry.name,
                    "engine": engine,
                    "rounds": None,
                    "expected": entry.rounds,
                    "bit_identical": "skipped (unsupported activation)",
                })
                continue
            out = replay_entry(
                entry, engine=engine, cache=cache, executor=executor, stats=stats
            )
            if not out.matches:
                failures += 1
            rows.append({
                "entry": entry.name,
                "engine": engine or "default",
                "rounds": out.record.rounds if out.ok else out.error,
                "expected": entry.rounds,
                "bit_identical": out.matches,
            })
    print(render_table(rows, title=f"corpus replay: {len(entries)} entries"))
    verdict = "all replays bit-identical" if failures == 0 else f"{failures} replays diverged"
    print(f"\n{verdict}")
    if runtime_requested(args):
        print(f"{stats.summary()} — fuzz replay")
    return 0 if failures == 0 else 1


def _campaign_specs(args) -> List[RunSpec]:
    """The cell grid for ``campaign create``: scenario registry specs (with
    the same replica derivation ``scenarios run --replicas`` uses, so keys
    line up) or the sweep grid the shape flags describe."""
    if args.scenario:
        scenario = get_scenario(args.scenario)
        if args.replicas <= 1:
            return list(scenario.specs)
        specs: List[RunSpec] = []
        for i, spec in enumerate(scenario.specs):
            specs.extend(
                replicate_spec(spec, args.replicas, args.seed,
                               salt=f"replica:{args.scenario}:{i}")
            )
        return specs
    return sweep_specs(args)


def _campaign_meta(args) -> Dict[str, Any]:
    """Human-facing provenance stored in the manifest (advisory only: the
    campaign id hashes the cell keys, never this)."""
    meta: Dict[str, Any] = {}
    if args.title:
        meta["title"] = args.title
    if args.scenario:
        meta["scenario"] = args.scenario
    else:
        meta["grid"] = {
            "family": args.family,
            "algorithm": args.algorithm,
            "ns": list(args.ns),
            "k": args.k,
            "seed": args.seed,
        }
    if args.replicas > 1:
        meta["replicas"] = args.replicas
    return meta


def _load_campaign(args) -> CampaignManifest:
    try:
        campaign_id = resolve_campaign_id(args.cache_dir, args.campaign)
        return load_manifest(args.cache_dir, campaign_id)
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))


def cmd_campaign_create(args) -> int:
    if not args.cache_dir:
        raise SystemExit("campaign create needs --cache-dir: the manifest "
                         "lives in the cache directory workers will share")
    if args.scenario:
        _reject_ignored_flags(
            args,
            ["campaign", "create", "--scenario", args.scenario,
             "--cache-dir", args.cache_dir],
            {"scenario", "cache_dir", "replicas", "title", "quiet"},
            f"--scenario {args.scenario} freezes the registry's pinned specs",
        )
    make_cache(args)  # validate the directory before writing a manifest into it
    manifest = CampaignManifest.from_specs(_campaign_specs(args), meta=_campaign_meta(args))
    path = save_manifest(manifest, args.cache_dir)
    if args.quiet:
        print(manifest.campaign_id)
        return 0
    status = status_of(manifest, args.cache_dir)
    print(f"campaign {manifest.campaign_id}")
    print(f"  cells:    {len(manifest.cells)}")
    print(f"  manifest: {path}")
    print(f"  status:   {status.done} done, {status.claimed} claimed, "
          f"{status.pending} pending")
    print(f"\nnext: python -m repro campaign run "
          f"--campaign {manifest.campaign_id[:12]} --cache-dir {args.cache_dir}")
    return 0


def cmd_campaign_run(args) -> int:
    """``campaign run|workers|resume`` — one handler by design: completion
    is derived from the cache, so attaching more workers and resuming after
    a crash are the same operation as the first run."""
    manifest = _load_campaign(args)
    stats = run_campaign(
        manifest,
        args.cache_dir,
        workers=args.workers,
        engine=resolve_engine_flag(args),
        lease_timeout=args.lease_timeout,
        idle_timeout=args.idle_timeout,
    )
    status = status_of(manifest, args.cache_dir, lease_timeout=args.lease_timeout)
    print(status.summary())
    print(f"{stats.summary()} — campaign={manifest.campaign_id[:12]}")
    return 0 if status.complete and stats.failures == 0 else 1


def cmd_campaign_status(args) -> int:
    if args.campaign:
        manifest = _load_campaign(args)
        status = status_of(manifest, args.cache_dir, lease_timeout=args.lease_timeout)
        print(status.summary())
        return 0 if status.complete else 1
    ids = list_manifests(args.cache_dir)
    if not ids:
        print(f"no campaigns under {args.cache_dir}")
        return 1
    rows = []
    for campaign_id in ids:
        manifest = load_manifest(args.cache_dir, campaign_id)
        status = status_of(manifest, args.cache_dir, lease_timeout=args.lease_timeout)
        rows.append({
            "campaign": campaign_id[:12],
            "cells": status.total,
            "done": status.done,
            "claimed": status.claimed,
            "pending": status.pending,
            "title": manifest.meta.get("title", manifest.meta.get("scenario", "")),
        })
    print(render_table(rows, title=f"{len(rows)} campaigns in {args.cache_dir}"))
    return 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Gathering with detection on anonymous graphs — experiment CLI",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("families", help="list graph families").set_defaults(fn=cmd_families)

    pb = sub.add_parser("bounds", help="print schedule arithmetic for n")
    pb.add_argument("--n", type=int, required=True)
    pb.add_argument("--max-degree", type=int, default=None)
    pb.set_defaults(fn=cmd_bounds)

    pp = sub.add_parser("plan", help="inspect the certified UXS plan for n")
    pp.add_argument("--n", type=int, required=True)
    pp.set_defaults(fn=cmd_plan)

    def runtime_flags(sp):
        sp.add_argument("--workers", type=int, default=None,
                        help="fan runs out over N worker processes "
                             "(default: serial in-process execution)")
        sp.add_argument("--cache-dir", type=str, default=None,
                        help="content-addressed result cache directory; "
                             "completed runs are skipped on re-invocation")

    def positive_int(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    def replica_flags(sp):
        sp.add_argument("--replicas", type=positive_int, default=1,
                        help="run each configuration under N seeds (the "
                             "original plus N-1 derived re-rolls)")
        sp.add_argument("--engine", choices=list_engines(), default=None,
                        help="simulation backend (default: the optimized "
                             "scalar scheduler); batch-* engines run "
                             "differ-only-by-seed groups in lockstep — all "
                             "backends are bit-identical; see docs/ENGINES.md")
        sp.add_argument("--batch", action="store_true",
                        help="deprecated alias for '--engine batch-numpy' "
                             "(accepted for one release, warns on stderr)")

    def common(sp):
        sp.add_argument("--family", choices=sorted(gg.FAMILIES), default="ring")
        sp.add_argument("--n", type=int, default=12)
        sp.add_argument("--k", type=int, default=4)
        sp.add_argument("--algorithm", choices=sorted(ALGORITHM_BUILDERS), default="faster")
        sp.add_argument("--placement",
                        choices=["undispersed", "dispersed", "scatter", "pair-distance"],
                        default="dispersed")
        sp.add_argument("--pair-distance", type=int, default=None)
        sp.add_argument("--labels", choices=list(LABEL_SCHEMES), default="random")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--numbering",
                        choices=["canonical", "random", "reversed", "rotated"],
                        default="canonical")
        sp.add_argument("--degree", type=int, default=3, help="for random_regular")
        sp.add_argument("--rows", type=int, default=None, help="for grid/torus")
        sp.add_argument("--cols", type=int, default=None, help="for grid/torus")
        sp.add_argument("--max-degree", type=int, default=None,
                        help="grant Δ knowledge (Remark 14)")
        sp.add_argument("--hop-distance", type=int, default=None,
                        help="grant distance knowledge (Remark 13)")
        sp.add_argument("--max-rounds", type=int, default=None)
        runtime_flags(sp)

    prep = sub.add_parser("report", help="regenerate the reproduction report (Markdown)")
    prep.add_argument("--out", type=str, default=None, help="write to file instead of stdout")
    prep.add_argument("--full", action="store_true", help="wider sweeps (slower)")
    prep.add_argument("--seed", type=int, default=None,
                      help="root seed for runtime seed streams (the canned "
                           "sweeps pin their own seeds, so rows are unaffected)")
    runtime_flags(prep)
    prep.set_defaults(fn=cmd_report)

    psh = sub.add_parser("show", help="print a graph's port-labeled adjacency")
    common(psh)
    psh.set_defaults(fn=cmd_show)

    pr = sub.add_parser("run", help="run one gathering instance")
    common(pr)
    pr.add_argument("--trace", action="store_true", help="(reserved)")
    pr.set_defaults(fn=cmd_run)

    ps = sub.add_parser("sweep", help="sweep n and fit the growth slope")
    common(ps)
    ps.add_argument("--ns", type=int, nargs="+", default=[8, 12, 16],
                    help="instance sizes to sweep (default: 8 12 16)")
    ps.add_argument("--scenario", choices=scenario_names(), default=None,
                    help="run a registered scenario's spec batch instead of "
                         "building specs from the flags above")
    ps.add_argument("--profile", action="store_true",
                    help="run the batch under cProfile and print the top 20 "
                         "cumulative entries (forces serial execution)")
    ps.add_argument("--resume", action="store_true",
                    help="crash-recovery hygiene before executing: sweep "
                         "dead writers' *.tmp.* droppings and refresh the "
                         "chunk index (requires --cache-dir)")
    replica_flags(ps)
    ps.set_defaults(fn=cmd_sweep)

    psc = sub.add_parser("scenarios", help="the curated scenario registry")
    scen_sub = psc.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser("list", help="enumerate registered scenarios").set_defaults(
        fn=cmd_scenarios_list
    )
    sd = scen_sub.add_parser("describe",
                             help="scenario details, compiled specs, cache identities")
    sd.add_argument("name", choices=scenario_names())
    sd.set_defaults(fn=cmd_scenarios_describe)
    sr = scen_sub.add_parser("run", help="run a scenario campaign with fault metrics")
    sr.add_argument("name", choices=scenario_names())
    runtime_flags(sr)
    replica_flags(sr)
    sr.set_defaults(fn=cmd_scenarios_run)

    pf = sub.add_parser("fuzz",
                        help="adversarial schedule fuzzer (see docs/FUZZING.md)")
    fuzz_sub = pf.add_subparsers(dest="fuzz_command", required=True)

    def engine_flag(sp):
        sp.add_argument("--engine", choices=list_engines(), default=None,
                        help="simulation backend to execute under "
                             "(default: the optimized scalar scheduler)")

    fr = fuzz_sub.add_parser("run",
                             help="run a seeded campaign; minimize and save winners")
    fr.add_argument("--seed", type=int, default=0,
                    help="campaign seed: same seed + budget = same campaign")
    fr.add_argument("--budget", type=positive_int, default=50,
                    help="candidate schedules to evaluate (default 50)")
    fr.add_argument("--corpus-dir", type=str, default=None,
                    help="write minimized winners as JSON corpus entries here")
    fr.add_argument("--targets", nargs="+", choices=target_names(), default=None,
                    help="restrict the search to these targets (default: all)")
    fr.add_argument("--explore", type=float, default=0.4,
                    help="fresh-sample probability; the rest mutates prior "
                         "positive-regret schedules (default 0.4)")
    fr.add_argument("--min-regret", type=int, default=1,
                    help="minimize/serialize only winners at or above this "
                         "regret (default 1)")
    fr.add_argument("--verbose", action="store_true",
                    help="print every evaluated candidate")
    engine_flag(fr)
    runtime_flags(fr)
    fr.set_defaults(fn=cmd_fuzz_run)

    fc = fuzz_sub.add_parser("corpus", help="list saved corpus entries")
    fc.add_argument("--corpus-dir", type=str, default=".fuzz-corpus")
    fc.add_argument("--register", action="store_true",
                    help="also register each entry as a scenario in this "
                         "process and print the registered names")
    fc.set_defaults(fn=cmd_fuzz_corpus)

    fp = fuzz_sub.add_parser("replay",
                             help="replay corpus entries bit-identically across engines")
    fp.add_argument("--corpus-dir", type=str, default=".fuzz-corpus")
    engine_flag(fp)
    runtime_flags(fp)
    fp.set_defaults(fn=cmd_fuzz_replay)

    pca = sub.add_parser(
        "campaign",
        help="crash-safe sharded campaigns over a shared cache (docs/CAMPAIGNS.md)")
    camp_sub = pca.add_subparsers(dest="campaign_command", required=True)

    def campaign_shared_flags(sp):
        sp.add_argument("--cache-dir", type=str, required=True,
                        help="the shared cache directory the campaign lives "
                             "in (manifest, leases, and results)")
        sp.add_argument("--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
                        help="seconds of heartbeat silence before another "
                             "worker may reclaim a cell's lease "
                             f"(default {DEFAULT_LEASE_TIMEOUT:g})")

    def campaign_id_flag(sp, required=True):
        sp.add_argument("--campaign", type=str, required=required, default=None,
                        help="campaign id — any unique prefix of the hash "
                             "'campaign create' printed")

    def campaign_worker_flags(sp):
        sp.add_argument("--workers", type=positive_int, default=1,
                        help="work-stealing worker processes to launch "
                             "(default 1, in-process)")
        sp.add_argument("--engine", choices=list_engines(), default=None,
                        help="simulation backend (all backends are "
                             "bit-identical; see docs/ENGINES.md)")
        sp.add_argument("--idle-timeout", type=float, default=DEFAULT_IDLE_TIMEOUT,
                        help="seconds a worker keeps waiting on cells leased "
                             "to other workers before giving up "
                             f"(default {DEFAULT_IDLE_TIMEOUT:g})")

    cc = camp_sub.add_parser(
        "create",
        help="freeze a spec grid into a durable, content-addressed manifest")
    common(cc)
    cc.add_argument("--ns", type=int, nargs="+", default=[8, 12, 16],
                    help="instance sizes for the grid (default: 8 12 16)")
    cc.add_argument("--scenario", choices=scenario_names(), default=None,
                    help="freeze a registered scenario's pinned specs "
                         "instead of building the grid from the flags above")
    cc.add_argument("--replicas", type=positive_int, default=1,
                    help="run each configuration under N seeds (same "
                         "derivation as sweep/scenarios, so keys match)")
    cc.add_argument("--title", type=str, default=None,
                    help="free-text label stored in the manifest metadata")
    cc.add_argument("--quiet", action="store_true",
                    help="print only the campaign id (for CID=$(...) capture)")
    cc.set_defaults(fn=cmd_campaign_create)

    for name, help_text in (
        ("run", "drive a campaign to completion with N work-stealing workers"),
        ("workers", "attach N more workers to a campaign running elsewhere"),
        ("resume", "finish an interrupted campaign — executes exactly the "
                   "missing cells (same code path as run; that is the point)"),
    ):
        sp = camp_sub.add_parser(name, help=help_text)
        campaign_shared_flags(sp)
        campaign_id_flag(sp)
        campaign_worker_flags(sp)
        sp.set_defaults(fn=cmd_campaign_run)

    cst = camp_sub.add_parser(
        "status",
        help="derived progress: a cell is done iff its key resolves in the cache")
    campaign_shared_flags(cst)
    campaign_id_flag(cst, required=False)
    cst.set_defaults(fn=cmd_campaign_status)

    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
