"""Command-line interface: run gathering experiments without writing code.

Examples::

    python -m repro families
    python -m repro bounds --n 16
    python -m repro plan --n 12
    python -m repro run --family ring --n 12 --k 7 --algorithm faster
    python -m repro run --family erdos_renyi --n 16 --k 5 \\
        --placement scatter --labels adversarial_long --trace
    python -m repro sweep --family ring --algorithm undispersed \\
        --ns 8 12 16 24 --k 4

The CLI is a thin shell over :mod:`repro.analysis`; anything it prints can
be reproduced programmatically via :func:`repro.analysis.run_gathering`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.analysis.experiments import regime_for, run_gathering
from repro.analysis.fitting import loglog_slope
from repro.analysis.placement import (
    adversarial_scatter,
    assign_labels,
    dispersed_random,
    dispersed_with_pair_distance,
    undispersed_placement,
)
from repro.analysis.tables import render_table
from repro.baselines import dessmark_program, random_walk_program, tz_rendezvous_program
from repro.core import bounds
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg

__all__ = ["main"]

ALGORITHMS: Dict[str, Callable[..., object]] = {
    "faster": lambda args: faster_gathering_program(
        max_degree=args.max_degree, hop_distance=args.hop_distance
    ),
    "undispersed": lambda args: undispersed_gathering_program(),
    "uxs": lambda args: uxs_gathering_program(),
    "tz": lambda args: tz_rendezvous_program(),
    "dessmark": lambda args: dessmark_program(max_degree=args.max_degree),
    "random_walk": lambda args: random_walk_program(seed=args.seed),
}

#: Algorithms whose schedules never enter a UXS phase (skip plan checks).
NO_UXS = {"undispersed", "dessmark", "random_walk"}

#: Algorithms without termination: measure first-gather instead.
NO_DETECTION = {"tz", "random_walk"}


def build_graph(args) -> object:
    kwargs = {}
    fn = gg.FAMILIES[args.family]
    import inspect

    sig = inspect.signature(fn)
    if "n" in sig.parameters:
        kwargs["n"] = args.n
    if "rows" in sig.parameters:
        kwargs["rows"] = args.rows or max(2, int(args.n**0.5))
        kwargs["cols"] = args.cols or max(2, args.n // kwargs["rows"])
    if "dim" in sig.parameters:
        kwargs["dim"] = max(1, args.n.bit_length() - 1)
    if "d" in sig.parameters:
        kwargs["d"] = args.degree
    if "seed" in sig.parameters:
        kwargs["seed"] = args.seed
    if "numbering" in sig.parameters:
        kwargs["numbering"] = args.numbering
    return fn(**kwargs)


def build_placement(args, graph) -> List[int]:
    if args.placement == "undispersed":
        return undispersed_placement(graph, args.k, seed=args.seed)
    if args.placement == "dispersed":
        return dispersed_random(graph, args.k, seed=args.seed)
    if args.placement == "scatter":
        return adversarial_scatter(graph, args.k, seed=args.seed)
    if args.placement == "pair-distance":
        if args.pair_distance is None:
            raise SystemExit("--pair-distance is required for this placement")
        return dispersed_with_pair_distance(
            graph, args.k, args.pair_distance, seed=args.seed
        )
    raise SystemExit(f"unknown placement {args.placement}")


def cmd_families(_args) -> int:
    rows = [{"family": name} for name in sorted(gg.FAMILIES)]
    print(render_table(rows, title="graph families"))
    return 0


def cmd_bounds(args) -> int:
    n = args.n
    rows = [
        {"quantity": "schedule_bits(n)", "value": bounds.schedule_bits(n)},
        {"quantity": "R1(n)  (Phase-1 budget)", "value": bounds.phase1_rounds(n)},
        {"quantity": "R(n)   (Undispersed-Gathering)", "value": bounds.undispersed_rounds(n)},
    ]
    for i in range(1, 6):
        rows.append(
            {
                "quantity": f"T({i})·bits  ({i}-Hop-Meeting)",
                "value": bounds.hop_meeting_rounds(i, n, args.max_degree),
            }
        )
    for step, e in enumerate(bounds.faster_gathering_boundaries(n, args.max_degree), 1):
        rows.append({"quantity": f"Faster-Gathering E{step}", "value": e})
    print(render_table(rows, title=f"schedule arithmetic for n={n}"
                       + (f", Δ={args.max_degree}" if args.max_degree else "")))
    return 0


def cmd_plan(args) -> int:
    from repro.uxs.generators import certification_battery, practical_plan

    plan = practical_plan(args.n)
    battery = certification_battery(args.n)
    print(f"practical UXS plan for n={args.n}:")
    print(f"  length T = {plan.T}   provenance = {plan.provenance}")
    print(f"  certified on {len(battery)} battery graphs from every start node")
    print(f"  paper-exact padding would be Õ(n^5) ≈ {args.n ** 5}")
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(quick=not args.full)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_show(args) -> int:
    graph = build_graph(args)
    print(f"{args.family}: n={graph.n}, m={graph.m}, "
          f"degrees {graph.min_degree}..{graph.max_degree}")
    rows = []
    for v in graph.nodes():
        cells = [f"p{p}->{graph.neighbor(v, p)}" for p in graph.ports(v)]
        rows.append({"node": v, "degree": graph.degree(v), "ports": "  ".join(cells)})
    print(render_table(rows, title="adjacency (simulator view; robots never see this)"))
    return 0


def cmd_run(args) -> int:
    graph = build_graph(args)
    starts = build_placement(args, graph)
    labels = assign_labels(len(starts), graph.n, scheme=args.labels, seed=args.seed)
    knowledge = {}
    if args.max_degree is not None:
        knowledge["max_degree"] = args.max_degree
    if args.hop_distance is not None:
        knowledge["hop_distance"] = args.hop_distance

    factory = ALGORITHMS[args.algorithm](args)
    rec = run_gathering(
        args.algorithm,
        graph,
        starts,
        labels,
        lambda: factory,
        knowledge=knowledge,
        uses_uxs=args.algorithm not in NO_UXS,
        stop_on_gather=args.algorithm in NO_DETECTION,
        max_rounds=args.max_rounds,
    )
    print(render_table([rec.as_row()], title=f"{args.algorithm} on {args.family}"))
    if rec.k and graph.n:
        print(f"\nTheorem-16 regime for k={rec.k}, n={graph.n}: {regime_for(rec.k, graph.n)}")
    if args.algorithm in NO_DETECTION:
        print("(no detection: 'rounds' is when the harness stopped; see first_gather)")
    return 0 if rec.gathered or args.algorithm in NO_DETECTION else 1


def cmd_sweep(args) -> int:
    rows = []
    for n in args.ns:
        ns_args = argparse.Namespace(**vars(args))
        ns_args.n = n
        graph = build_graph(ns_args)
        starts = build_placement(ns_args, graph)
        labels = assign_labels(len(starts), graph.n, scheme=args.labels, seed=args.seed)
        factory = ALGORITHMS[args.algorithm](ns_args)
        rec = run_gathering(
            args.algorithm, graph, starts, labels, lambda: factory,
            uses_uxs=args.algorithm not in NO_UXS,
            stop_on_gather=args.algorithm in NO_DETECTION,
        )
        rows.append(rec.as_row())
    print(render_table(rows, title=f"sweep: {args.algorithm} on {args.family}"))
    if len(args.ns) >= 2:
        slope = loglog_slope(args.ns, [r["rounds"] for r in rows])
        print(f"\nlog-log slope of rounds vs n: {slope:.2f}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Gathering with detection on anonymous graphs — experiment CLI",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("families", help="list graph families").set_defaults(fn=cmd_families)

    pb = sub.add_parser("bounds", help="print schedule arithmetic for n")
    pb.add_argument("--n", type=int, required=True)
    pb.add_argument("--max-degree", type=int, default=None)
    pb.set_defaults(fn=cmd_bounds)

    pp = sub.add_parser("plan", help="inspect the certified UXS plan for n")
    pp.add_argument("--n", type=int, required=True)
    pp.set_defaults(fn=cmd_plan)

    def common(sp):
        sp.add_argument("--family", choices=sorted(gg.FAMILIES), default="ring")
        sp.add_argument("--n", type=int, default=12)
        sp.add_argument("--k", type=int, default=4)
        sp.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="faster")
        sp.add_argument("--placement",
                        choices=["undispersed", "dispersed", "scatter", "pair-distance"],
                        default="dispersed")
        sp.add_argument("--pair-distance", type=int, default=None)
        sp.add_argument("--labels",
                        choices=["random", "compact", "adversarial_long"],
                        default="random")
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--numbering",
                        choices=["canonical", "random", "reversed", "rotated"],
                        default="canonical")
        sp.add_argument("--degree", type=int, default=3, help="for random_regular")
        sp.add_argument("--rows", type=int, default=None, help="for grid/torus")
        sp.add_argument("--cols", type=int, default=None, help="for grid/torus")
        sp.add_argument("--max-degree", type=int, default=None,
                        help="grant Δ knowledge (Remark 14)")
        sp.add_argument("--hop-distance", type=int, default=None,
                        help="grant distance knowledge (Remark 13)")
        sp.add_argument("--max-rounds", type=int, default=None)

    prep = sub.add_parser("report", help="regenerate the reproduction report (Markdown)")
    prep.add_argument("--out", type=str, default=None, help="write to file instead of stdout")
    prep.add_argument("--full", action="store_true", help="wider sweeps (slower)")
    prep.set_defaults(fn=cmd_report)

    psh = sub.add_parser("show", help="print a graph's port-labeled adjacency")
    common(psh)
    psh.set_defaults(fn=cmd_show)

    pr = sub.add_parser("run", help="run one gathering instance")
    common(pr)
    pr.add_argument("--trace", action="store_true", help="(reserved)")
    pr.set_defaults(fn=cmd_run)

    ps = sub.add_parser("sweep", help="sweep n and fit the growth slope")
    common(ps)
    ps.add_argument("--ns", type=int, nargs="+", required=True)
    ps.set_defaults(fn=cmd_sweep)

    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
