"""Baseline algorithms the paper compares against (§1.4).

* :mod:`~repro.baselines.tz_rendezvous` — Ta-Shma–Zwick-style UXS
  rendezvous: gathering **without** detection in ``Õ(n^5 log ℓ)`` (here on
  the practical UXS plan, see DESIGN.md S1).  Structurally the §2.1
  algorithm with the silent-wait termination disabled; the measurement of
  interest is the first-gathered round.
* :mod:`~repro.baselines.dessmark` — Dessmark et al.'s simultaneous-start
  rendezvous idea: bit-scheduled wait/explore cycles over balls of
  escalating radius, ``O(D·Δ^D·log ℓ)`` rounds — exponential in the initial
  distance, which is exactly the weakness ``Faster-Gathering`` removes.
* :mod:`~repro.baselines.random_walk` — seeded random-walk gathering, the
  classic randomized contrast (not a paper claim; included for context).
"""

from repro.baselines.tz_rendezvous import tz_rendezvous_program
from repro.baselines.dessmark import dessmark_program
from repro.baselines.random_walk import random_walk_program

__all__ = ["tz_rendezvous_program", "dessmark_program", "random_walk_program"]
