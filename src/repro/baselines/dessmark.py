"""Dessmark et al.'s simultaneous-start rendezvous (``O(D·Δ^D·log ℓ)``).

The paper's discussion (§1.3) pinpoints why this classic approach does not
scale: with simultaneous start, two robots at distance ``D`` can find each
other by bit-scheduled wait/explore cycles over balls of radius ``D`` — but
the ball DFS costs ``Θ(Δ^D)`` per cycle, exponential in the distance.  Since
``D`` is unknown, the radius escalates ``d = 1, 2, 3, ...``; the run ends
when the robots meet (they can see co-location), giving the
``O(D·Δ^D·log ℓ)`` shape for the distance-``D`` configuration.

This is the direct ancestor of ``i-Hop-Meeting``; the difference is that
the paper *caps* the radius at 5 (because beyond that UXS gathering is
cheaper) and uses many-robots density (Lemma 15) to guarantee a small
distance exists — this module exists so E7 can show the exponential
blow-up being avoided.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hop_meeting import hop_meeting_phase
from repro.sim.actions import Action
from repro.sim.robot import RobotContext

__all__ = ["dessmark_program"]


def dessmark_program(max_radius: Optional[int] = None, max_degree: Optional[int] = None):
    """Program factory: escalating-radius rendezvous.

    ``max_radius`` caps the escalation (default ``n - 1``, enough to cover
    any connected graph's diameter).  After each radius-``d`` schedule the
    robot checks co-location and stops when met — correct *as rendezvous of
    two robots*; for ``k > 2`` it stops at the first meeting, which is the
    quantity E7 compares (the algorithm predates multi-robot composition).
    """

    def factory(ctx: RobotContext):
        if max_degree is not None:
            ctx.knowledge.setdefault("max_degree", max_degree)

        def program(ctx=ctx):
            obs = yield
            if ctx.n == 1:
                yield Action.terminate()
                return
            cap = max_radius if max_radius is not None else ctx.n - 1
            for d in range(1, cap + 1):
                obs = yield from hop_meeting_phase(ctx, obs, d, phase_start=obs.round)
                if not obs.alone(ctx.label):
                    ctx.stats["met_at_radius"] = d
                    yield Action.terminate()
                    return
            ctx.stats["met_at_radius"] = None
            yield Action.terminate()

        return program(ctx)

    return factory
