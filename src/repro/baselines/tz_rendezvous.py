"""Ta-Shma–Zwick-style UXS rendezvous (gathering *without* detection).

The state-of-the-art deterministic gathering algorithm the paper improves
on ([43] in the paper): robots interleave UXS explorations and waits driven
by their ID bits until they coalesce.  Without a detection mechanism the
robots cannot know gathering happened; experiments therefore measure the
*first-gathered* round (``RunResult.metrics.first_gather_round``), and the
schedule simply runs out afterwards.

Implementation-wise this is the §2.1 machinery with ``detect=False`` — the
honest way to isolate exactly the detection capability the paper adds.
"""

from __future__ import annotations

from typing import Optional

from repro.core.uxs_gathering import uxs_gathering_program
from repro.uxs.sequence import UxsPlan

__all__ = ["tz_rendezvous_program"]


def tz_rendezvous_program(plan: Optional[UxsPlan] = None):
    """Program factory: UXS gathering, no detection (measure first-gather)."""
    return uxs_gathering_program(plan=plan, detect=False)
