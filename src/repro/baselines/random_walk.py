"""Random-walk gathering (randomized contrast baseline).

Each robot performs an independent lazy random walk (stay with probability
1/2, else a uniform port), seeded by its label so runs are reproducible.
Expected meeting time for two walkers is polynomial; there is no detection
mechanism whatsoever.  Runs use ``World.run(stop_on_gather=True)`` and read
``metrics.first_gather_round``.

This is *not* a claim from the paper — it contextualizes what the
deterministic machinery buys over the naive randomized strategy.
"""

from __future__ import annotations

import random

from repro.sim.actions import Action
from repro.sim.robot import RobotContext

__all__ = ["random_walk_program"]


def random_walk_program(seed: int = 0, laziness: float = 0.5):
    """Program factory: seeded lazy random walk, forever.

    ``laziness`` is the per-round stay probability; the classic 1/2 avoids
    parity traps on bipartite graphs (two walkers on a ring with odd offset
    would otherwise never be co-located at round boundaries).
    """
    if not (0.0 <= laziness < 1.0):
        raise ValueError("laziness must be in [0, 1)")

    def factory(ctx: RobotContext):
        def program(ctx=ctx):
            obs = yield
            rng = random.Random((seed << 32) ^ ctx.label)
            card = {"following": None, "alg": "rw"}
            while True:
                if rng.random() < laziness or obs.degree == 0:
                    obs = yield Action.stay(card=card)
                else:
                    obs = yield Action.move(rng.randrange(obs.degree), card=card)
                card = None

        return program(ctx)

    return factory
