"""Running gathering experiments and classifying their regimes.

:func:`run_gathering` is the one-stop runner used by every benchmark: it
builds the world, pre-verifies UXS coverage when the algorithm may fall
back to exploration sequences (refusing to report results on an uncovered
instance — see docs/ALGORITHMS.md), runs to completion, validates the
gathering-with-detection contract, and returns a flat record.

Batch call sites (sweeps, reports, the CLI) do not call it directly any
more: they describe runs as :class:`repro.runtime.RunSpec` values and go
through :func:`repro.runtime.execute`, which dispatches to this function
serially or across worker processes and caches the :class:`GatheringRun`
records it returns.  ``GatheringRun`` therefore stays a plain, picklable,
JSON-round-trippable dataclass (see :meth:`GatheringRun.to_dict` /
:meth:`GatheringRun.from_dict`).

:func:`regime_for` encodes Theorem 16's regime table: given ``k`` and ``n``
it names the bound the paper promises.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

from repro.analysis.placement import min_pairwise_distance
from repro.graphs.port_graph import PortGraph
from repro.sim.activation import build_activation
from repro.sim.robot import RobotSpec
from repro.sim.world import World
from repro.uxs.generators import practical_plan
from repro.uxs.verify import UxsCertificationError, covers_all_starts

__all__ = [
    "GatheringRun",
    "run_gathering",
    "record_from_result",
    "regime_for",
    "verify_uxs_for_graph",
]


@dataclass
class GatheringRun:
    """Flat record of one gathering run (benchmark row material)."""

    algorithm: str
    n: int
    m: int
    k: int
    rounds: int
    total_moves: int
    max_moves: int
    gathered: bool
    detected: bool
    first_gather_round: Optional[int]
    min_pair_distance: Optional[int]
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        row = {
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "k": self.k,
            "dist": self.min_pair_distance,
            "rounds": self.rounds,
            "moves": self.total_moves,
            "gathered": self.gathered,
            "detected": self.detected,
            "first_gather": self.first_gather_round,
        }
        row.update(self.extra)
        return row

    def to_dict(self) -> Dict[str, Any]:
        """Full field dict (unlike :meth:`as_row`, loss-free): the form the
        runtime's result cache serializes to JSON."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GatheringRun":
        return cls(**data)


def verify_uxs_for_graph(graph: PortGraph) -> None:
    """Assert the certified practical plan covers this experiment graph.

    Called by :func:`run_gathering` for UXS-capable algorithms; raising here
    (instead of running anyway) keeps reported numbers honest — a schedule
    whose exploration property is broken would produce garbage rounds, not
    a valid reproduction.
    """
    plan = practical_plan(graph.n)
    if plan.T and not covers_all_starts(graph, plan.offsets):
        raise UxsCertificationError(
            f"practical UXS plan for n={graph.n} does not cover this graph; "
            f"raise the certification safety factor"
        )


def _scenario_extras(result) -> Dict[str, Any]:
    """Fault metrics for non-clean runs (defined in ``docs/SCENARIOS.md``).

    ``mis_detected`` — every robot halted, yet the swarm is not on one node:
    survivors completed their schedules *believing* gathering succeeded.
    ``stranded`` — robots that ended anywhere but the rally point (the
    plurality final node, smallest node id on ties); 0 for a gathered run.
    ``crashed`` / ``crashed_labels`` — robots whose program was crash-faulted
    before it finished (from the wrapper's ``crashed_at`` stat).
    """
    positions = result.positions
    counts: Dict[int, int] = {}
    for node in positions.values():
        counts[node] = counts.get(node, 0) + 1
    rally = min(counts, key=lambda v: (-counts[v], v))
    crashed = sorted(l for l, st in result.stats.items() if "crashed_at" in st)
    return {
        "mis_detected": not result.gathered,
        "stranded": sum(1 for node in positions.values() if node != rally),
        "crashed": len(crashed),
        "crashed_labels": crashed,
    }


def run_gathering(
    algorithm: str,
    graph: PortGraph,
    starts: Sequence[int],
    labels: Sequence[int],
    factory_for: Callable[[], Any],
    knowledge: Optional[Dict[str, Any]] = None,
    uses_uxs: bool = True,
    stop_on_gather: bool = False,
    max_rounds: Optional[int] = None,
    strict: bool = True,
    activation: str = "sync",
    activation_args: Optional[Dict[str, Any]] = None,
    fault_plan=None,
    engine: Optional[str] = None,
) -> GatheringRun:
    """Run one configured gathering instance and return its record.

    ``factory_for()`` must return a fresh program factory per robot (program
    factories from :mod:`repro.core` are stateless, so passing e.g.
    ``lambda: faster_gathering_program()`` or a pre-built factory works).

    ``activation`` names an activation model from
    :mod:`repro.sim.activation` (``"sync"`` — the paper's model — runs the
    scheduler's native path).  ``fault_plan`` is an optional
    :class:`repro.ext.faults.FaultPlan` applied per placement index.  When
    either deviates from the clean synchronous setting, the record's
    ``extra`` gains the scenario fault metrics (``mis_detected``,
    ``stranded``, ``crashed``) defined in ``docs/SCENARIOS.md``.

    ``engine`` names a simulation backend from :func:`repro.sim.engines.
    list_engines` (``None`` — the default scalar scheduler).  Conforming
    backends return bit-identical records; see ``docs/ENGINES.md``.
    """
    if len(starts) != len(labels):
        raise ValueError("starts and labels must align")
    if uses_uxs:
        verify_uxs_for_graph(graph)
    model = build_activation(activation, activation_args)
    faulted = fault_plan is not None and not fault_plan.empty
    if faulted:
        fault_plan.validate_for(len(starts))
    factory = factory_for()
    specs = [
        RobotSpec(
            label=l,
            start=s,
            factory=fault_plan.wrap(i, factory) if faulted else factory,
            knowledge=dict(knowledge or {}),
        )
        for i, (l, s) in enumerate(zip(labels, starts))
    ]
    world = World(graph, specs, strict=strict)
    kwargs: Dict[str, Any] = {"stop_on_gather": stop_on_gather}
    if max_rounds is not None:
        kwargs["max_rounds"] = max_rounds
    if model is not None:
        kwargs["activation"] = model
    if engine is not None:
        kwargs["engine"] = engine
    result = world.run(**kwargs)
    return record_from_result(
        algorithm,
        graph,
        starts,
        result,
        scenario_metrics=faulted or model is not None,
    )


_UNSET = object()


def record_from_result(
    algorithm: str,
    graph: PortGraph,
    starts: Sequence[int],
    result,
    scenario_metrics: bool = False,
    min_pair_distance: Any = _UNSET,
) -> GatheringRun:
    """Assemble the flat :class:`GatheringRun` record from a run result.

    Shared by :func:`run_gathering` and the batched replica path
    (:func:`repro.runtime.spec.execute_batch_spec`), so a batched record is
    built by the exact code a scalar record is.  ``min_pair_distance``
    defaults to a fresh computation; batch call sites pass the value from a
    per-graph :class:`~repro.analysis.placement.PairDistanceMemo` (same
    integers, fewer BFS passes).
    """
    extra: Dict[str, Any] = {}
    for stats in result.stats.values():
        if "gathered_at_step" in stats:
            extra["gathered_at_step"] = stats["gathered_at_step"]
        if "map_memory_bits" in stats:
            extra["map_memory_bits"] = stats["map_memory_bits"]
    if scenario_metrics:
        extra.update(_scenario_extras(result))
    # Sorted key order: the result cache stores records as sort_keys JSON,
    # so a cache round-trip re-orders dict keys.  Normalizing here keeps
    # fresh and cached records identical down to row/column order.
    extra = dict(sorted(extra.items()))
    if min_pair_distance is _UNSET:
        min_pair_distance = min_pairwise_distance(graph, list(starts))
    return GatheringRun(
        algorithm=algorithm,
        n=graph.n,
        m=graph.m,
        k=len(starts),
        rounds=result.rounds,
        total_moves=result.metrics.total_moves,
        max_moves=result.metrics.max_moves,
        gathered=result.gathered,
        detected=result.detected,
        first_gather_round=result.metrics.first_gather_round,
        min_pair_distance=min_pair_distance,
        extra=extra,
    )


def regime_for(k: int, n: int) -> str:
    """Theorem 16's regime for ``k`` robots on ``n`` nodes.

    ``"n3"`` — ``k >= ⌊n/2⌋+1`` (O(n³));
    ``"n4logn"`` — ``⌊n/3⌋+1 <= k < ⌊n/2⌋+1`` (O(n⁴ log n));
    ``"n5"`` — otherwise (Õ(n⁵)).
    """
    if k >= n // 2 + 1:
        return "n3"
    if k >= n // 3 + 1:
        return "n4logn"
    return "n5"
