"""Paper-style ASCII tables for benchmark output.

The benchmarks print their rows through :func:`render_table` so that
``pytest benchmarks/ --benchmark-only`` output is directly comparable with
the experiment index in DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["render_table", "format_value"]


def format_value(v: Any) -> str:
    if v is None:
        return "-"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    if isinstance(v, int) and abs(v) >= 1_000_000:
        return f"{v:.3g}"
    return str(v)


def render_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells: List[List[str]] = [[format_value(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
