"""Experiment harness: placements, labels, runners, fitting, tables.

This is the layer the benchmarks and EXPERIMENTS.md are built on.  It owns
everything the *adversary* controls in the paper's model (initial placement
and label assignment), the mechanics of running an algorithm over a sweep
of graphs, and the post-processing that turns round counts into the
paper-shaped tables (regime classification, log–log growth fitting).
"""

from repro.analysis.placement import (
    undispersed_placement,
    dispersed_random,
    dispersed_with_pair_distance,
    adversarial_scatter,
    min_pairwise_distance,
    assign_labels,
)
from repro.analysis.experiments import GatheringRun, run_gathering, regime_for
from repro.analysis.fitting import loglog_slope
from repro.analysis.tables import render_table
from repro.analysis import sweeps
from repro.analysis.report import generate_report

__all__ = [
    "undispersed_placement",
    "dispersed_random",
    "dispersed_with_pair_distance",
    "adversarial_scatter",
    "min_pairwise_distance",
    "assign_labels",
    "GatheringRun",
    "run_gathering",
    "regime_for",
    "loglog_slope",
    "render_table",
    "sweeps",
    "generate_report",
]
