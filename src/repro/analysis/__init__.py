"""Experiment harness: placements, labels, runners, fitting, tables.

This is the layer the benchmarks and EXPERIMENTS.md are built on.  It owns
everything the *adversary* controls in the paper's model (initial placement
and label assignment), the mechanics of running an algorithm over a sweep
of graphs, and the post-processing that turns round counts into the
paper-shaped tables (regime classification, log–log growth fitting).
"""

from repro.analysis.placement import (
    undispersed_placement,
    dispersed_random,
    dispersed_with_pair_distance,
    adversarial_scatter,
    min_pairwise_distance,
    assign_labels,
)
from repro.analysis.experiments import GatheringRun, run_gathering, regime_for
from repro.analysis.fitting import loglog_slope
from repro.analysis.tables import render_table

# The batch layers sit *above* repro.runtime in the dependency order
# (experiments -> runtime -> sweeps/report), so importing them eagerly here
# would create a cycle when the runtime pulls in GatheringRun.  PEP 562
# lazy loading keeps `from repro.analysis import sweeps` and
# `repro.analysis.generate_report` working unchanged.
_LAZY = {"sweeps": "repro.analysis.sweeps", "generate_report": "repro.analysis.report"}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return module if name == "sweeps" else getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "undispersed_placement",
    "dispersed_random",
    "dispersed_with_pair_distance",
    "adversarial_scatter",
    "min_pairwise_distance",
    "assign_labels",
    "GatheringRun",
    "run_gathering",
    "regime_for",
    "loglog_slope",
    "render_table",
    "sweeps",
    "generate_report",
]
