"""Canned, reusable experiment sweeps.

The benchmark modules in ``benchmarks/`` print tables and assert shapes;
this module holds the *library-facing* versions of the same sweeps so that
users (and ``python -m repro report``) can regenerate the paper's results
programmatically without pytest.

Every sweep returns a list of plain dict rows (table-ready) and is
deterministic for fixed arguments.  Simulation-running sweeps describe
their runs as :class:`repro.runtime.RunSpec` batches and dispatch through
:func:`repro.runtime.run_specs`; pass ``executor=ParallelExecutor(...)``
to fan a sweep out over worker processes and/or ``cache=ResultCache(...)``
to skip runs completed by an earlier invocation — the rows are identical
either way, because each row is a pure function of its spec.
``root_seed`` feeds the runtime's deterministic seed streams; the canned
sweeps pin their placement/label seeds (reproducing the paper record), so
it only enters cache identity here — it does not change any row.
(:func:`lemma15_sweep` is placement arithmetic only — no simulations, so
no executor.)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.experiments import regime_for
from repro.analysis.fitting import loglog_slope
from repro.analysis.placement import adversarial_scatter, min_pairwise_distance
from repro.core import bounds
from repro.graphs import generators as gg
from repro.runtime import ExecutionStats, Executor, ResultCache, RunSpec, execute, run_specs

__all__ = [
    "undispersed_sweep",
    "regime_sweep",
    "staged_distance_sweep",
    "lemma15_sweep",
    "detection_tail_sweep",
    "cost_sweep",
    "scenario_sweep",
]


def undispersed_sweep(
    ns: Sequence[int] = (8, 12, 16),
    k: int = 4,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    stats: Optional[ExecutionStats] = None,
) -> Dict[str, Any]:
    """Theorem 8 sweep (E1 shape): rounds vs n on rings, with slope."""
    specs = [
        RunSpec(
            algorithm="undispersed",
            family="ring",
            graph={"n": n},
            placement="undispersed",
            k=k,
            placement_args={"seed": n},
            labels_args={"seed": n},
            uses_uxs=False,
        )
        for n in ns
    ]
    recs = run_specs(specs, executor=executor, cache=cache, root_seed=root_seed, stats=stats)
    rows: List[Dict[str, Any]] = [
        {"n": n, "rounds": rec.rounds, "detected": rec.detected, "max_moves": rec.max_moves}
        for n, rec in zip(ns, recs)
    ]
    slope = loglog_slope([r["n"] for r in rows], [r["rounds"] for r in rows])
    return {"rows": rows, "slope": slope, "claimed_exponent": 3.0}


def regime_sweep(
    ns: Sequence[int] = (9, 12),
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    stats: Optional[ExecutionStats] = None,
) -> List[Dict[str, Any]]:
    """Theorem 16's regime table (E5) as data."""
    cases = []
    for n in ns:
        for regime, k in (("n3", n // 2 + 1), ("n4logn", n // 3 + 1), ("n5", 2)):
            assert regime_for(k, n) == regime
            cases.append((n, regime, k))
    specs = [
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": n},
            placement="scatter",
            k=k,
            placement_args={"seed": 1},
            labels_args={"seed": n + k},
        )
        for n, _regime, k in cases
    ]
    recs = run_specs(specs, executor=executor, cache=cache, root_seed=root_seed, stats=stats)
    return [
        {
            "n": n,
            "regime": regime,
            "k": k,
            "scatter_dist": rec.min_pair_distance,
            "rounds": rec.rounds,
            "detected": rec.detected,
        }
        for (n, regime, k), rec in zip(cases, recs)
    ]


def staged_distance_sweep(
    n: int = 12,
    distances: Sequence[int] = (0, 1, 2, 3),
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    stats: Optional[ExecutionStats] = None,
) -> List[Dict[str, Any]]:
    """Theorem 12's staged complexity (E4) as data."""
    boundaries = bounds.faster_gathering_boundaries(n)
    specs = []
    for d in distances:
        if d == 0:
            placement, k, placement_args = "undispersed", 3, {"seed": 7}
        else:
            placement, k, placement_args = "pair-distance", 2, {"seed": 3, "distance": d}
        specs.append(
            RunSpec(
                algorithm="faster",
                family="ring",
                graph={"n": n},
                placement=placement,
                k=k,
                placement_args=placement_args,
                labels_args={"seed": d + 1},
            )
        )
    recs = run_specs(specs, executor=executor, cache=cache, root_seed=root_seed, stats=stats)
    return [
        {
            "pair_dist": d,
            "gathered_at_step": rec.extra.get("gathered_at_step"),
            "rounds": rec.rounds,
            "boundary": boundaries[min(d, 5)],
            "detected": rec.detected,
        }
        for d, rec in zip(distances, recs)
    ]


def lemma15_sweep(c_values: Sequence[int] = (2, 3, 4), seeds: int = 4) -> List[Dict[str, Any]]:
    """Lemma 15 adversary attack (E6) as data.

    Pure placement arithmetic — no simulations run, so this sweep takes no
    executor/cache (there is nothing to parallelize or memoize).
    """
    rows = []
    families = [
        ("ring", gg.ring(24)),
        ("path", gg.path(25)),
        ("grid", gg.grid(5, 5)),
        ("erdos_renyi", gg.erdos_renyi(24, seed=7)),
    ]
    for name, g in families:
        for c in c_values:
            k = g.n // c + 1
            best = max(
                min_pairwise_distance(g, adversarial_scatter(g, k, seed=s))
                for s in range(seeds)
            )
            rows.append(
                {
                    "family": name,
                    "c": c,
                    "k": k,
                    "adversary_best": best,
                    "bound": 2 * c - 2,
                    "holds": best <= 2 * c - 2,
                }
            )
    return rows


def detection_tail_sweep(
    n: int = 9,
    k: int = 3,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    stats: Optional[ExecutionStats] = None,
) -> List[Dict[str, Any]]:
    """E10a as data: what detection costs on top of first-gather."""
    algorithms = ("uxs", "faster")
    specs = [
        RunSpec(
            algorithm=name,
            family="ring",
            graph={"n": n},
            placement="dispersed",
            k=k,
            placement_args={"seed": n},
            labels_args={"seed": k},
        )
        for name in algorithms
    ]
    recs = run_specs(specs, executor=executor, cache=cache, root_seed=root_seed, stats=stats)
    return [
        {
            "algorithm": name,
            "first_gather": rec.first_gather_round,
            "termination": rec.rounds,
            "tail": rec.rounds - (rec.first_gather_round or 0),
        }
        for name, rec in zip(algorithms, recs)
    ]


def cost_sweep(
    ns: Sequence[int] = (9, 12),
    k_of: Callable[[int], int] = lambda n: n // 2 + 1,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    stats: Optional[ExecutionStats] = None,
) -> List[Dict[str, Any]]:
    """The §1.4 *cost* metric (total edge traversals): Faster-Gathering vs
    the TZ baseline on identical many-robot configurations (E12)."""
    specs = []
    for n in ns:
        k = k_of(n)
        for algorithm in ("faster", "tz"):
            specs.append(
                RunSpec(
                    algorithm=algorithm,
                    family="ring",
                    graph={"n": n},
                    placement="scatter",
                    k=k,
                    placement_args={"seed": 2},
                    labels_args={"seed": 3},
                )
            )
    recs = run_specs(specs, executor=executor, cache=cache, root_seed=root_seed, stats=stats)
    rows = []
    for i, n in enumerate(ns):
        fast, base = recs[2 * i], recs[2 * i + 1]
        rows.append(
            {
                "n": n,
                "k": k_of(n),
                "faster_moves": fast.total_moves,
                "tz_moves": base.total_moves,
                "faster_rounds": fast.rounds,
                "tz_rounds": base.rounds,
                "moves_ratio_tz/faster": base.total_moves / max(fast.total_moves, 1),
            }
        )
    return rows


def scenario_sweep(
    name: str,
    executor: Optional[Executor] = None,
    cache: Optional[ResultCache] = None,
    root_seed: Optional[int] = None,
    stats: Optional[ExecutionStats] = None,
    replicas: int = 1,
    batch: Union[bool, str] = False,
    engine: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one registered scenario and derive its fault metrics.

    Compiles the scenario (:mod:`repro.scenarios`) to its spec batch, adds
    the deduplicated *clean twins* (the same experiments in the paper's
    exact model — synchronous activation, no faults), executes everything
    in one runtime batch, and reports per-run rows plus a campaign summary:

    * ``mis_detection_rate`` — fraction of completed scenario runs whose
      robots all halted without the swarm being on one node;
    * ``stranded_total`` / ``crashed_total`` — robots left off the rally
      point / killed by the fault plan, summed over runs;
    * ``rounds_past_schedule`` (per row) — the run's rounds minus its
      clean twin's, i.e. what the perturbation cost (can be negative:
      see the ``adversarial-activation`` scenario).

    Seeds are assigned *before* twin derivation, so a twin differs from
    its scenario spec only in the scenario fields.  A spec that fails
    (curated scenarios never do — the registry's curation rule) yields a
    row with ``error`` set instead of poisoning the batch.

    ``replicas=R`` turns the campaign into a replica campaign: each
    compiled spec runs as itself plus ``R - 1`` seed-varied siblings
    (:func:`repro.runtime.replicate_spec`), and rows gain a ``replica``
    column.  ``engine="batch-numpy"`` (or ``"batch-list"``) routes
    differ-only-by-seed groups (the clean siblings and their twins)
    through the lockstep replica engine — bit-identical rows, less
    wall-clock; scalar engine names pin the simulation backend instead
    (see docs/ENGINES.md).  ``batch=True`` is the deprecated spelling of
    the replica engines and maps onto ``engine``.
    """
    # Imported here, not at module top: repro.scenarios sits above the
    # runtime layer this module feeds, and a top-level import would tie the
    # two packages into an import cycle for every analysis consumer.
    from repro.runtime import assign_seeds, replicate_spec
    from repro.scenarios import clean_twin, get_scenario

    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    scenario = get_scenario(name)
    specs = list(scenario.specs)
    if root_seed is not None:
        specs = assign_seeds(specs, root_seed)
    replica_of = [0] * len(specs)
    if replicas > 1:
        expanded: List[RunSpec] = []
        replica_of = []
        for i, spec in enumerate(specs):
            siblings = replicate_spec(
                spec,
                replicas,
                root_seed if root_seed is not None else 0,
                salt=f"replica:{name}:{i}",
            )
            expanded.extend(siblings)
            replica_of.extend(range(replicas))
        specs = expanded

    campaign = list(specs)
    twin_index: Dict[int, int] = {}
    # Seed the dedup map with the scenario specs themselves: a twin that
    # equals another spec already in the batch (the natural with/without-
    # faults pairing) must reuse that run, not execute a duplicate.
    seen_twins: Dict[str, int] = {}
    for i, spec in enumerate(specs):
        seen_twins.setdefault(spec.canonical_json(), i)
    for i, spec in enumerate(specs):
        twin = clean_twin(spec)
        if twin == spec:
            twin_index[i] = i
            continue
        key = twin.canonical_json()
        if key not in seen_twins:
            seen_twins[key] = len(campaign)
            campaign.append(twin)
        twin_index[i] = seen_twins[key]

    result = execute(
        campaign, executor=executor, cache=cache, stats=stats, batch=batch,
        engine=engine,
    )
    outcomes = result.outcomes

    rows: List[Dict[str, Any]] = []
    for i, spec in enumerate(specs):
        outcome = outcomes[i]
        plan = spec.fault_plan()
        row: Dict[str, Any] = {
            "scenario": name,
            "algorithm": spec.algorithm,
            "family": spec.family,
            "n": spec.graph.get("n"),
            "k": spec.k,
            "activation": spec.activation,
            "faults": plan.describe() if plan else "none",
        }
        if replicas > 1:
            row["replica"] = replica_of[i]
        if outcome.ok:
            rec = outcome.run
            twin_outcome = outcomes[twin_index[i]]
            row.update(
                rounds=rec.rounds,
                gathered=rec.gathered,
                detected=rec.detected,
                mis_detected=rec.extra.get("mis_detected", False),
                stranded=rec.extra.get("stranded", 0),
                crashed=rec.extra.get("crashed", 0),
                rounds_past_schedule=(
                    rec.rounds - twin_outcome.run.rounds if twin_outcome.ok else None
                ),
                error=None,
            )
        else:
            row.update(
                rounds=None,
                gathered=None,
                detected=None,
                mis_detected=None,
                stranded=None,
                crashed=None,
                rounds_past_schedule=None,
                error=outcome.error_type,
            )
        rows.append(row)

    done = [r for r in rows if r["error"] is None]
    summary = {
        "runs": len(rows),
        "failures": len(rows) - len(done),
        "mis_detection_rate": (
            sum(1 for r in done if r["mis_detected"]) / len(done) if done else None
        ),
        "stranded_total": sum(r["stranded"] for r in done),
        "crashed_total": sum(r["crashed"] for r in done),
    }
    return {
        "scenario": name,
        "title": scenario.title,
        "expectation": scenario.expectation,
        "rows": rows,
        "summary": summary,
        "stats": result.stats,
    }
