"""Canned, reusable experiment sweeps.

The benchmark modules in ``benchmarks/`` print tables and assert shapes;
this module holds the *library-facing* versions of the same sweeps so that
users (and ``python -m repro report``) can regenerate the paper's results
programmatically without pytest.

Every sweep returns a list of plain dict rows (table-ready) and is
deterministic for fixed arguments.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.experiments import regime_for, run_gathering
from repro.analysis.fitting import loglog_slope
from repro.analysis.placement import (
    adversarial_scatter,
    assign_labels,
    dispersed_with_pair_distance,
    min_pairwise_distance,
    undispersed_placement,
)
from repro.baselines import tz_rendezvous_program
from repro.core import bounds
from repro.core.faster_gathering import faster_gathering_program
from repro.core.undispersed import undispersed_gathering_program
from repro.core.uxs_gathering import uxs_gathering_program
from repro.graphs import generators as gg

__all__ = [
    "undispersed_sweep",
    "regime_sweep",
    "staged_distance_sweep",
    "lemma15_sweep",
    "detection_tail_sweep",
    "cost_sweep",
]


def undispersed_sweep(ns: Sequence[int] = (8, 12, 16), k: int = 4) -> Dict[str, Any]:
    """Theorem 8 sweep (E1 shape): rounds vs n on rings, with slope."""
    rows: List[Dict[str, Any]] = []
    for n in ns:
        g = gg.ring(n)
        rec = run_gathering(
            "undispersed", g,
            undispersed_placement(g, k, seed=n),
            assign_labels(k, n, seed=n),
            lambda: undispersed_gathering_program(),
            uses_uxs=False,
        )
        rows.append({"n": n, "rounds": rec.rounds, "detected": rec.detected,
                     "max_moves": rec.max_moves})
    slope = loglog_slope([r["n"] for r in rows], [r["rounds"] for r in rows])
    return {"rows": rows, "slope": slope, "claimed_exponent": 3.0}


def regime_sweep(ns: Sequence[int] = (9, 12)) -> List[Dict[str, Any]]:
    """Theorem 16's regime table (E5) as data."""
    rows = []
    for n in ns:
        g = gg.ring(n)
        for regime, k in (("n3", n // 2 + 1), ("n4logn", n // 3 + 1), ("n5", 2)):
            assert regime_for(k, n) == regime
            starts = adversarial_scatter(g, k, seed=1)
            rec = run_gathering(
                "faster", g, starts, assign_labels(k, n, seed=n + k),
                lambda: faster_gathering_program(),
            )
            rows.append(
                {
                    "n": n,
                    "regime": regime,
                    "k": k,
                    "scatter_dist": min_pairwise_distance(g, starts),
                    "rounds": rec.rounds,
                    "detected": rec.detected,
                }
            )
    return rows


def staged_distance_sweep(n: int = 12, distances: Sequence[int] = (0, 1, 2, 3)) -> List[Dict[str, Any]]:
    """Theorem 12's staged complexity (E4) as data."""
    g = gg.ring(n)
    boundaries = bounds.faster_gathering_boundaries(n)
    rows = []
    for d in distances:
        if d == 0:
            starts = undispersed_placement(g, 3, seed=7)
        else:
            starts = dispersed_with_pair_distance(g, 2, d, seed=3)
        rec = run_gathering(
            "faster", g, starts, assign_labels(len(starts), n, seed=d + 1),
            lambda: faster_gathering_program(),
        )
        rows.append(
            {
                "pair_dist": d,
                "gathered_at_step": rec.extra.get("gathered_at_step"),
                "rounds": rec.rounds,
                "boundary": boundaries[min(d, 5)],
                "detected": rec.detected,
            }
        )
    return rows


def lemma15_sweep(c_values: Sequence[int] = (2, 3, 4), seeds: int = 4) -> List[Dict[str, Any]]:
    """Lemma 15 adversary attack (E6) as data."""
    rows = []
    families = [
        ("ring", gg.ring(24)),
        ("path", gg.path(25)),
        ("grid", gg.grid(5, 5)),
        ("erdos_renyi", gg.erdos_renyi(24, seed=7)),
    ]
    for name, g in families:
        for c in c_values:
            k = g.n // c + 1
            best = max(
                min_pairwise_distance(g, adversarial_scatter(g, k, seed=s))
                for s in range(seeds)
            )
            rows.append(
                {
                    "family": name,
                    "c": c,
                    "k": k,
                    "adversary_best": best,
                    "bound": 2 * c - 2,
                    "holds": best <= 2 * c - 2,
                }
            )
    return rows


def detection_tail_sweep(n: int = 9, k: int = 3) -> List[Dict[str, Any]]:
    """E10a as data: what detection costs on top of first-gather."""
    rows = []
    g = gg.ring(n)
    from repro.analysis.placement import dispersed_random

    starts = dispersed_random(g, k, seed=n)
    labels = assign_labels(k, n, seed=k)
    for name, fn in (
        ("uxs", lambda: uxs_gathering_program()),
        ("faster", lambda: faster_gathering_program()),
    ):
        rec = run_gathering(name, g, starts, labels, fn)
        rows.append(
            {
                "algorithm": name,
                "first_gather": rec.first_gather_round,
                "termination": rec.rounds,
                "tail": rec.rounds - (rec.first_gather_round or 0),
            }
        )
    return rows


def cost_sweep(ns: Sequence[int] = (9, 12), k_of=lambda n: n // 2 + 1) -> List[Dict[str, Any]]:
    """The §1.4 *cost* metric (total edge traversals): Faster-Gathering vs
    the TZ baseline on identical many-robot configurations (E12)."""
    rows = []
    for n in ns:
        g = gg.ring(n)
        k = k_of(n)
        starts = adversarial_scatter(g, k, seed=2)
        labels = assign_labels(k, n, seed=3)
        fast = run_gathering("faster", g, starts, labels,
                             lambda: faster_gathering_program())
        base = run_gathering("tz", g, starts, labels,
                             lambda: tz_rendezvous_program())
        rows.append(
            {
                "n": n,
                "k": k,
                "faster_moves": fast.total_moves,
                "tz_moves": base.total_moves,
                "faster_rounds": fast.rounds,
                "tz_rounds": base.rounds,
                "moves_ratio_tz/faster": base.total_moves / max(fast.total_moves, 1),
            }
        )
    return rows
