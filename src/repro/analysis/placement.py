"""Initial placements and label assignments — the adversary's knobs.

The paper's bounds are parameterized by what the adversary does with the
initial configuration:

* Theorem 8 needs an *undispersed* input (some node holds ≥ 2 robots);
* Theorem 12's cases are driven by the minimum pairwise distance ``i`` of a
  *dispersed* input;
* Lemma 15 is about the adversary's inability to keep ``⌊n/c⌋ + 1`` robots
  pairwise further than ``2c - 2`` apart — :func:`adversarial_scatter` is
  our best-effort scatterer that experiments use to attack the bound.

Labels: unique IDs from ``[1, n^b]`` (default ``b = 2``), with schemes
``random`` (seeded), ``compact`` (1..k — shortest bit strings) and
``adversarial_long`` (all labels near ``n^b`` — maximal equal bit lengths,
the worst case for bit-schedule algorithms).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core import bounds
from repro.graphs.port_graph import PortGraph
from repro.graphs.traversal import bfs_distances, pairwise_distances

__all__ = [
    "undispersed_placement",
    "dispersed_random",
    "dispersed_with_pair_distance",
    "adversarial_scatter",
    "min_pairwise_distance",
    "PairDistanceMemo",
    "assign_labels",
    "PlacementError",
]


class PlacementError(ValueError):
    """The requested configuration does not exist on this graph."""


def _min_pairwise(nodes: Sequence[int], dist_for) -> Optional[int]:
    """Shared core of :func:`min_pairwise_distance`: ``dist_for(u)`` must
    return the BFS distance list from ``u`` (memoized or fresh)."""
    if len(nodes) < 2:
        return None
    if len(set(nodes)) < len(nodes):
        return 0
    best: Optional[int] = None
    node_list = sorted(set(nodes))
    for i, u in enumerate(node_list[:-1]):
        dist = dist_for(u)
        for v in node_list[i + 1 :]:
            d = dist[v]
            if best is None or d < best:
                best = d
    return best


def min_pairwise_distance(graph: PortGraph, nodes: Sequence[int]) -> Optional[int]:
    """Minimum hop distance over all pairs (``0`` if a node repeats).

    ``None`` for fewer than two robots.
    """
    return _min_pairwise(nodes, lambda u: bfs_distances(graph, u))


class PairDistanceMemo:
    """Per-graph BFS memo for repeated :func:`min_pairwise_distance` queries.

    A replica campaign computes the pair distance of R placements on *one*
    graph; start nodes recur across replicas, and each recurring node would
    pay a fresh BFS per replica.  This memo keys BFS results by start node —
    distances on a fixed graph are pure, so the answers are bit-identical to
    the memo-free function (the batched-vs-scalar differential suite pins
    this).
    """

    def __init__(self, graph: PortGraph):
        self.graph = graph
        self._dist: dict = {}

    def distances_from(self, u: int) -> List[int]:
        dist = self._dist.get(u)
        if dist is None:
            dist = self._dist[u] = bfs_distances(self.graph, u)
        return dist

    def min_pairwise_distance(self, nodes: Sequence[int]) -> Optional[int]:
        return _min_pairwise(nodes, self.distances_from)


def undispersed_placement(graph: PortGraph, k: int, seed: int = 0) -> List[int]:
    """``k >= 2`` robots with at least one co-located pair (seeded random)."""
    if k < 2:
        raise PlacementError("undispersed placement needs k >= 2")
    rng = random.Random(seed)
    hub = rng.randrange(graph.n)
    starts = [hub, hub]
    starts += [rng.randrange(graph.n) for _ in range(k - 2)]
    rng.shuffle(starts)
    return starts


def dispersed_random(graph: PortGraph, k: int, seed: int = 0) -> List[int]:
    """``k`` robots on ``k`` distinct nodes, uniformly at random (seeded)."""
    if k > graph.n:
        raise PlacementError(f"cannot disperse {k} robots over {graph.n} nodes")
    rng = random.Random(seed)
    return rng.sample(range(graph.n), k)


def dispersed_with_pair_distance(
    graph: PortGraph, k: int, distance: int, seed: int = 0
) -> List[int]:
    """A dispersed placement whose minimum pairwise distance is exactly
    ``distance``.

    Picks a pair at the requested distance, then greedily adds robots whose
    distance to every chosen node is at least ``distance`` (so the chosen
    pair stays the minimum).  Raises :class:`PlacementError` when the graph
    cannot host the configuration.
    """
    if distance < 1:
        raise PlacementError("use undispersed_placement for distance 0")
    if k < 2:
        raise PlacementError("need k >= 2")
    rng = random.Random(seed)
    dmat = pairwise_distances(graph)
    pairs = [
        (u, v)
        for u in range(graph.n)
        for v in range(u + 1, graph.n)
        if dmat[u][v] == distance
    ]
    if not pairs:
        raise PlacementError(f"no node pair at distance {distance}")
    rng.shuffle(pairs)
    for (a, b) in pairs:
        chosen = [a, b]
        candidates = [
            v
            for v in range(graph.n)
            if v not in (a, b)
            and dmat[a][v] >= distance
            and dmat[b][v] >= distance
        ]
        rng.shuffle(candidates)
        for v in candidates:
            if len(chosen) == k:
                break
            if all(dmat[u][v] >= distance for u in chosen):
                chosen.append(v)
        if len(chosen) == k:
            rng.shuffle(chosen)
            return chosen
    raise PlacementError(
        f"could not place {k} robots with min pair distance exactly {distance}"
    )


def adversarial_scatter(graph: PortGraph, k: int, seed: int = 0) -> List[int]:
    """Greedy max-min-distance scatter (farthest-point traversal).

    The adversary of Lemma 15: tries to keep robots as far apart as
    possible.  Greedy farthest-point is the standard 2-approximation of the
    optimal scatter — good enough to probe the ``2c - 2`` bound from the
    adversary's side (E6 additionally tries several seeds and keeps the
    best).
    """
    if k > graph.n:
        raise PlacementError(f"cannot scatter {k} robots over {graph.n} nodes")
    rng = random.Random(seed)
    dmat = pairwise_distances(graph)
    first = rng.randrange(graph.n)
    chosen = [first]
    while len(chosen) < k:
        best_v, best_d = None, -1
        order = list(range(graph.n))
        rng.shuffle(order)  # tie-breaking varies with seed
        for v in order:
            if v in chosen:
                continue
            d = min(dmat[u][v] for u in chosen)
            if d > best_d:
                best_v, best_d = v, d
        chosen.append(best_v)  # type: ignore[arg-type]
    return chosen


# ---------------------------------------------------------------------------
# Labels
# ---------------------------------------------------------------------------
LABEL_SCHEMES = ("random", "compact", "adversarial_long")


def assign_labels(
    k: int, n: int, scheme: str = "random", seed: int = 0, exponent: int = 2
) -> List[int]:
    """``k`` unique labels from ``[1, n^exponent]``.

    ``random`` — seeded sample; ``compact`` — ``1..k`` (shortest IDs, the
    fastest case for bit schedules); ``adversarial_long`` — the ``k``
    largest admissible labels (maximal, equal bit lengths: schedules run
    longest and symmetry-breaking happens latest).
    """
    cap = bounds.max_label(n, exponent)
    if k > cap:
        raise ValueError(f"cannot give {k} unique labels from [1, {cap}]")
    if scheme == "compact":
        return list(range(1, k + 1))
    if scheme == "adversarial_long":
        return list(range(cap - k + 1, cap + 1))
    if scheme == "random":
        rng = random.Random(seed)
        return sorted(rng.sample(range(1, cap + 1), k))
    raise ValueError(f"unknown label scheme {scheme!r}; known: {LABEL_SCHEMES}")
