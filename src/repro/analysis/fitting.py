"""Growth-shape fitting.

The reproduction criterion for round bounds is *shape*, not constants: a
claimed ``O(n^p)`` bound is "reproduced" when the measured log–log slope
over the swept ``n`` does not exceed ``p`` by more than a tolerance (upper
bounds may of course come in under — trees gather much faster than the
worst case, and that is fine).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

__all__ = ["loglog_slope", "slope_within"]


def loglog_slope(ns: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log n``.

    Requires at least two distinct positive ``n`` and positive ``y``.
    """
    if len(ns) != len(ys):
        raise ValueError("ns and ys must align")
    if len(ns) < 2:
        raise ValueError("need at least two points")
    xs = np.log([float(v) for v in ns])
    if np.allclose(xs.min(), xs.max()):
        raise ValueError("need at least two distinct n values")
    vs = np.log([float(v) for v in ys])
    slope, _intercept = np.polyfit(xs, vs, 1)
    return float(slope)


def slope_within(
    ns: Sequence[float], ys: Sequence[float], claimed: float, tol: float = 0.4
) -> Tuple[bool, float]:
    """Check an upper-bound claim: measured slope <= claimed + tol.

    Returns ``(ok, measured_slope)``.
    """
    s = loglog_slope(ns, ys)
    return (s <= claimed + tol or math.isclose(s, claimed + tol)), s
