"""The curated scenario registry.

Each entry bundles one of the paper's "alternative settings" (§1.4) — or
one of its explicit model knobs — into a named, declarative, cache-stable
experiment.  ``python -m repro scenarios list`` enumerates them;
``python -m repro sweep --scenario NAME`` runs one through the runtime
engine.  Third-party code can add its own via :func:`register_scenario`
(registration is per-process, like ``repro.runtime.register_algorithm``).

Curation rules (enforced by ``tests/test_scenarios.py``):

* every compiled spec **completes** — breakage manifests as flagged
  metrics (``mis_detected``, ``stranded``, ``detected=False``), never as a
  raised exception, so every run lands in the result cache and repeated
  sweeps are fully cached;
* every spec pins its seeds, so rows are bit-stable across machines;
* expectations are falsifiable and asserted by the test suite.

The interesting negative space is documented too: the oblivious schedules
of ``Undispersed-Gathering``/``Faster-Gathering`` do not merely *degrade*
under weak activation or mid-exploration crashes — their token-map
construction detects the inconsistency and raises.  Scenarios therefore
pair fault campaigns with the configurations where the failure is a
*measurable mis-detection* (the paper's impossibility argument made
concrete), and use the detection-free baselines to probe activation
adversaries, which no oblivious schedule survives.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import bounds
from repro.runtime import RunSpec
from repro.scenarios.model import Scenario

__all__ = [
    "SCENARIOS",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
]

SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if scenario.name in SCENARIOS and not replace:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    SCENARIOS.pop(name, None)


def get_scenario(name: str) -> Scenario:
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )
    return SCENARIOS[name]


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def all_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in scenario_names()]


# ---------------------------------------------------------------------------
# Curated entries
# ---------------------------------------------------------------------------

#: Undispersed placement on ring(8) with seed 8 puts robots at
#: ``[5, 3, 3]`` — index 0 is the lone waiter, indices 1–2 the co-located
#: pair.  Several fault scenarios below rely on that geometry.
_WAITER_SEED = 8
_R8 = bounds.undispersed_rounds(8)


def _undispersed_ring8(**overrides) -> RunSpec:
    base = dict(
        algorithm="undispersed",
        family="ring",
        graph={"n": 8},
        placement="undispersed",
        k=3,
        placement_args={"seed": _WAITER_SEED},
        labels_args={"seed": _WAITER_SEED},
        uses_uxs=False,
        max_rounds=100_000,
    )
    base.update(overrides)
    return RunSpec(**base)


register_scenario(Scenario(
    name="clean-sync",
    title="Paper model baseline: Faster-Gathering, synchronous, fault-free",
    description=(
        "Faster-Gathering on rings in the n³ regime (k = ⌊n/2⌋+1, "
        "adversarial scatter), exactly the model every theorem assumes: "
        "simultaneous start, fully synchronous activation, no faults.  "
        "The control group every other scenario is measured against."
    ),
    expectation="Every run gathers with detection; rounds grow ~n³.",
    specs=tuple(
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": n},
            placement="scatter",
            k=n // 2 + 1,
            placement_args={"seed": 1},
            labels_args={"seed": n},
        )
        for n in (8, 10, 12)
    ),
    tags=("baseline", "clean"),
    paper="Theorems 12/16",
))

register_scenario(Scenario(
    name="delayed-start",
    title="Startup delays: uniform shift is safe, asymmetric delay breaks",
    description=(
        "The paper assumes all robots wake at round 0 and names arbitrary "
        "wake-ups as future work.  Two campaigns on the same ring(8) "
        "instance: a uniform +11 delay for everyone (the whole schedule "
        "shifts, detection survives) and a waiter delayed past the full "
        "schedule (the survivors terminate on time without it — a clean "
        "mis-detection, no crash needed)."
    ),
    expectation=(
        "Uniform delay: detected, rounds = clean + delay + 1.  Asymmetric "
        "delay: detected=False, mis_detected=True, stranded=1."
    ),
    specs=(
        _undispersed_ring8(faults={"delay": {"0": 11, "1": 11, "2": 11}}),
        _undispersed_ring8(faults={"delay": {"0": _R8 + 5}}),
    ),
    tags=("faults", "delay"),
    paper="§1.4 / conclusion (simultaneous start assumption)",
))

register_scenario(Scenario(
    name="single-crash-waiter",
    title="One crashed waiter poisons detection; a late crash is harmless",
    description=(
        "Crash-fault model: the robot terminates in place, physically "
        "present but inert — a dead waiter looks identical to a live one "
        "whose schedule says 'wait'.  Campaign one kills the lone waiter "
        "at round 1: the pair completes its oblivious schedule and "
        "terminates believing gathering succeeded.  Campaign two schedules "
        "the same crash after the run ends: nothing happens."
    ),
    expectation=(
        "Early crash: detected=False, mis_detected=True, crashed=1.  "
        "Late crash: detected=True, crashed=0."
    ),
    specs=(
        _undispersed_ring8(faults={"crash": {"0": 1}}),
        _undispersed_ring8(faults={"crash": {"0": 50_000}}),
    ),
    tags=("faults", "crash"),
    paper="§1.4 (fault-free assumption); impossibility of crash-tolerant detection",
))

register_scenario(Scenario(
    name="crash-storm",
    title="Multiple crashes at staggered rounds strand the survivors",
    description=(
        "Fault campaigns with several victims: three of four UXS-Gathering "
        "explorers die at rounds 10/20/30, and two of four "
        "Undispersed-Gathering robots die in the opening rounds.  The "
        "survivors' schedules run to completion regardless — the "
        "fault metrics count who mis-detected and who was stranded where."
    ),
    expectation=(
        "Both runs complete with detected=False, mis_detected=True, "
        "stranded >= 1, crashed >= 1."
    ),
    specs=(
        RunSpec(
            algorithm="uxs",
            family="ring",
            graph={"n": 8},
            placement="dispersed",
            k=4,
            placement_args={"seed": 2},
            labels_args={"seed": 2},
            max_rounds=300_000,
            faults={"crash": {"0": 10, "1": 20, "2": 30}},
        ),
        _undispersed_ring8(
            k=4,
            placement_args={"seed": 5},
            labels_args={"seed": 5},
            faults={"crash": {"0": 1, "3": 2}},
        ),
    ),
    tags=("faults", "crash"),
    paper="§1.4 (fault-free assumption)",
))

register_scenario(Scenario(
    name="adversarial-activation",
    title="Starve-longest adversary: one activation per round",
    description=(
        "A deterministic adversary activates the single due robot it has "
        "starved the longest (the fewest activations the model permits).  "
        "The paper's oblivious schedules do not survive this regime — "
        "their token-map construction detects the desync and aborts — so "
        "this scenario measures the schedule-free baselines, which stay "
        "live under any fair activation: gathering still happens, never "
        "with detection, and the meeting time can move in *either* "
        "direction — the random walkers meet later, while the TZ pair "
        "meets sooner because a starved robot is a sitting target for "
        "the one robot the adversary lets move."
    ),
    expectation=(
        "All runs gather (stop_on_gather) with detected=False; "
        "rounds_past_schedule is non-zero in both directions."
    ),
    specs=(
        RunSpec(
            algorithm="random_walk",
            family="ring",
            graph={"n": 12},
            placement="dispersed",
            k=3,
            placement_args={"seed": 4},
            labels_args={"seed": 4},
            algorithm_args={"seed": 4},
            uses_uxs=False,
            stop_on_gather=True,
            max_rounds=500_000,
            activation="adversarial",
            activation_args={"budget": 1},
        ),
        RunSpec(
            algorithm="tz",
            family="ring",
            graph={"n": 8},
            placement="dispersed",
            k=2,
            placement_args={"seed": 3},
            labels_args={"seed": 3},
            stop_on_gather=True,
            max_rounds=500_000,
            activation="adversarial",
            activation_args={"budget": 1},
        ),
    ),
    tags=("activation", "adversary"),
    paper="§1.4 (synchronous activation assumption)",
))

register_scenario(Scenario(
    name="semi-sync-round-robin",
    title="Semi-synchronous activation: label-rank groups take turns",
    description=(
        "The classical semi-synchronous weakening: robots are split into "
        "activation groups that act in rotation, one group per round.  "
        "Run on the schedule-free baselines (the oblivious schedules "
        "abort under any non-synchronous activation, see "
        "adversarial-activation)."
    ),
    expectation="Runs gather with detected=False, slower than synchronous.",
    specs=(
        RunSpec(
            algorithm="random_walk",
            family="ring",
            graph={"n": 8},
            placement="dispersed",
            k=3,
            placement_args={"seed": 3},
            labels_args={"seed": 3},
            algorithm_args={"seed": 3},
            uses_uxs=False,
            stop_on_gather=True,
            max_rounds=500_000,
            activation="round-robin",
            activation_args={"groups": 2},
        ),
        RunSpec(
            algorithm="random_walk",
            family="ring",
            graph={"n": 12},
            placement="dispersed",
            k=4,
            placement_args={"seed": 6},
            labels_args={"seed": 6},
            algorithm_args={"seed": 6},
            uses_uxs=False,
            stop_on_gather=True,
            max_rounds=500_000,
            activation="round-robin",
            activation_args={"groups": 3},
        ),
    ),
    tags=("activation", "semi-sync"),
    paper="§1.4 (synchronous activation assumption)",
))

register_scenario(Scenario(
    name="ring-worst-case",
    title="Adversarial labels on the ring: longest bit-schedules",
    description=(
        "The ring is the paper's running worst case, and label bit-length "
        "drives every schedule.  Same n³-regime instance twice: once with "
        "adversarial_long labels (all labels near n², maximal equal bit "
        "lengths) and once with compact labels (1..k, shortest possible) — "
        "the adversary's best and worst label draws."
    ),
    expectation=(
        "Both detected; the adversarial_long run needs at least as many "
        "rounds as the compact one."
    ),
    specs=tuple(
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": 12},
            placement="scatter",
            k=7,
            placement_args={"seed": 1},
            labels=labels,
            labels_args={"seed": 2},
        )
        for labels in ("adversarial_long", "compact")
    ),
    tags=("baseline", "labels", "worst-case"),
    paper="Lemma 15 / Theorem 16 (n³ regime)",
))

register_scenario(Scenario(
    name="max-degree-knowledge",
    title="Knowledge ablation: granting Δ (Remark 14)",
    description=(
        "Remark 14: if robots know the maximum degree Δ, the hop-meeting "
        "schedules shrink.  Same dispersed ring(10) pair with and without "
        "the grant — the knowledge enters both the robots' context and the "
        "schedule arithmetic."
    ),
    expectation=(
        "Both detected; the Δ-knowing run terminates in no more rounds "
        "than the oblivious one."
    ),
    specs=(
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": 10},
            placement="dispersed",
            k=2,
            placement_args={"seed": 5},
            labels_args={"seed": 5},
            algorithm_args={"max_degree": 2},
            knowledge={"max_degree": 2},
        ),
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": 10},
            placement="dispersed",
            k=2,
            placement_args={"seed": 5},
            labels_args={"seed": 5},
        ),
    ),
    tags=("knowledge", "ablation"),
    paper="Remark 14",
))

register_scenario(Scenario(
    name="hop-distance-knowledge",
    title="Knowledge ablation: granting the initial distance (Remark 13)",
    description=(
        "Remark 13: robots that know their initial hop distance i can skip "
        "straight to the i-Hop-Meeting stage.  A distance-2 pair on "
        "ring(10), with and without the grant."
    ),
    expectation=(
        "Both detected; the distance-knowing run terminates in no more "
        "rounds than the oblivious one."
    ),
    specs=(
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": 10},
            placement="pair-distance",
            k=2,
            placement_args={"seed": 3, "distance": 2},
            labels_args={"seed": 3},
            algorithm_args={"hop_distance": 2},
            knowledge={"hop_distance": 2},
        ),
        RunSpec(
            algorithm="faster",
            family="ring",
            graph={"n": 10},
            placement="pair-distance",
            k=2,
            placement_args={"seed": 3, "distance": 2},
            labels_args={"seed": 3},
        ),
    ),
    tags=("knowledge", "ablation"),
    paper="Remark 13",
))
