"""repro.scenarios — the declarative scenario layer.

A :class:`Scenario` names a (graph family × placement × label scheme ×
activation model × fault plan × knowledge ablation) bundle and compiles
to :class:`repro.runtime.RunSpec` batches, so every scenario inherits
parallel execution and result caching from the runtime engine for free.

* :mod:`repro.scenarios.model` — the :class:`Scenario` dataclass and the
  clean-twin transform fault metrics are defined against;
* :mod:`repro.scenarios.registry` — the curated registry (crash
  campaigns, startup delays, activation adversaries, knowledge
  ablations) plus :func:`register_scenario` for user-defined entries.

See ``docs/SCENARIOS.md`` for the model, metric definitions, and CLI
walkthrough (``python -m repro scenarios list|describe|run``).
"""

from repro.scenarios.model import Scenario, clean_twin
from repro.scenarios.registry import (
    SCENARIOS,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)

__all__ = [
    "Scenario",
    "clean_twin",
    "SCENARIOS",
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
