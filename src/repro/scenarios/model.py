"""The scenario model: a named, declarative experiment bundle.

A :class:`Scenario` is the unit the registry (:mod:`repro.scenarios.
registry`) curates: a (graph family × placement × label scheme ×
activation model × fault plan × knowledge ablation) bundle, compiled down
to a tuple of :class:`repro.runtime.RunSpec` values.  Because the compiled
form *is* plain ``RunSpec`` data, every scenario automatically inherits
the runtime layer's parallel execution, failure isolation, and
content-addressed result caching — a scenario run is just an
``execute(scenario.specs, ...)`` call.

Scenarios are frozen: compiling the same registered scenario twice yields
byte-identical specs, hence identical cache keys (``python -m repro
scenarios describe NAME`` prints exactly those keys).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Tuple

from repro.runtime import RunSpec

__all__ = ["Scenario", "clean_twin"]


def clean_twin(spec: RunSpec) -> RunSpec:
    """The same experiment in the paper's exact model: synchronous
    activation, no faults.  Fault metrics like ``rounds_past_schedule``
    are defined as deltas against this twin (see ``docs/SCENARIOS.md``)."""
    return replace(spec, activation="sync", activation_args={}, faults={})


@dataclass(frozen=True)
class Scenario:
    """A named experiment bundle that compiles to :class:`RunSpec` batches.

    Attributes
    ----------
    name:
        Registry key (kebab-case, what the CLI takes).
    title:
        One-line human summary for ``scenarios list``.
    description:
        What the bundle sets up and why — shown by ``scenarios describe``.
    expectation:
        What the rows should show (the falsifiable part: tests assert it).
    specs:
        The compiled, declarative runs.  Frozen so cache identity is
        reproducible.
    tags:
        Free-form grouping labels (``"faults"``, ``"activation"``, ...).
    paper:
        Pointer into the paper (section / theorem / remark) this scenario
        probes.
    """

    name: str
    title: str
    description: str
    expectation: str
    specs: Tuple[RunSpec, ...]
    tags: Tuple[str, ...] = ()
    paper: str = ""

    def __post_init__(self):
        if not self.specs:
            raise ValueError(f"scenario {self.name!r} compiles to zero specs")
        for spec in self.specs:
            spec.canonical_json()  # must be hashable for cache identity

    def spec_rows(self) -> Tuple[Dict[str, Any], ...]:
        """Table-ready summaries of the compiled specs (for ``describe``)."""
        rows = []
        for i, s in enumerate(self.specs):
            plan = s.fault_plan()
            rows.append(
                {
                    "i": i,
                    "algorithm": s.algorithm,
                    "family": s.family,
                    "n": s.graph.get("n"),
                    "k": s.k,
                    "placement": s.placement,
                    "labels": s.labels,
                    "activation": s.activation,
                    "faults": plan.describe() if plan else "none",
                    "knowledge": ",".join(sorted(s.knowledge)) or "none",
                }
            )
        return tuple(rows)
