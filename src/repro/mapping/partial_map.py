"""The partial port-labeled map a finder robot builds and navigates.

``RobotMap`` is robot-side state: map node ids are the robot's own invention
(0 = the node where mapping started) and bear no relation to the simulator's
node numbering — tests check the final map against the truth *up to
port-preserving isomorphism* only.

The structure maintains:

* per-node degree and a port table ``port -> (neighbor, back_port) | None``;
* a FIFO frontier of unresolved ``(node, port)`` pairs;
* BFS routing over resolved edges (:meth:`route`);
* spanning-tree closed Euler tours over resolved edges (:meth:`euler_tour`),
  the exactly-``2(n'-1)``-move sweep used both inside Phase 1 (token
  detection sweeps) and as the Phase-2 gathering tour.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.graphs.port_graph import Edge, PortGraph

__all__ = ["RobotMap"]


class RobotMap:
    """A growing port-labeled map with frontier bookkeeping."""

    def __init__(self, root_degree: int):
        self.degrees: List[int] = []
        self.adj: List[List[Optional[Tuple[int, int]]]] = []
        self.frontier: deque[Tuple[int, int]] = deque()
        self.add_node(root_degree)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, degree: int) -> int:
        """Add a node with all ports unresolved; returns its map id."""
        nid = len(self.degrees)
        self.degrees.append(degree)
        self.adj.append([None] * degree)
        for p in range(degree):
            self.frontier.append((nid, p))
        return nid

    def set_edge(self, u: int, pu: int, v: int, pv: int) -> None:
        """Record the resolved edge ``u:pu <-> v:pv`` (both directions)."""
        if self.adj[u][pu] is not None and self.adj[u][pu] != (v, pv):
            raise ValueError(f"conflicting edge at map node {u} port {pu}")
        if self.adj[v][pv] is not None and self.adj[v][pv] != (u, pu):
            raise ValueError(f"conflicting edge at map node {v} port {pv}")
        self.adj[u][pu] = (v, pv)
        self.adj[v][pv] = (u, pu)

    def resolved(self, u: int, p: int) -> bool:
        return self.adj[u][p] is not None

    def next_frontier(self) -> Optional[Tuple[int, int]]:
        """Pop the next *unresolved* frontier entry (skipping stale ones)."""
        while self.frontier:
            u, p = self.frontier.popleft()
            if self.adj[u][p] is None:
                return (u, p)
        return None

    @property
    def num_nodes(self) -> int:
        return len(self.degrees)

    @property
    def num_resolved_edges(self) -> int:
        return sum(1 for row in self.adj for e in row if e is not None) // 2

    def complete(self) -> bool:
        """All ports of all known nodes resolved (and frontier drained)."""
        return all(e is not None for row in self.adj for e in row)

    # ------------------------------------------------------------------
    # Navigation over the resolved part
    # ------------------------------------------------------------------
    def route(self, source: int, target: int) -> List[int]:
        """Ports of a shortest resolved-edge path ``source -> target``.

        Deterministic (BFS in port order).  Raises if unreachable — cannot
        happen for nodes discovered by the token explorer, which only adds
        nodes via resolved edges.
        """
        if source == target:
            return []
        # Flat-array BFS (level-synchronized, same visit order as a FIFO
        # queue): the map changes between calls, so there is no cached CSR
        # to reuse, but scratch arrays indexed by map-node id still beat
        # dict/set bookkeeping on every frontier resolution.
        adj = self.adj
        nn = len(adj)
        prev_node = [-1] * nn
        prev_port = [0] * nn
        seen = bytearray(nn)
        seen[source] = 1
        frontier = [source]
        found = False
        while frontier and not found:
            nxt = []
            for v in frontier:
                for p, entry in enumerate(adj[v]):
                    if entry is None:
                        continue
                    u = entry[0]
                    if not seen[u]:
                        seen[u] = 1
                        prev_node[u] = v
                        prev_port[u] = p
                        if u == target:
                            found = True
                            break
                        nxt.append(u)
                if found:
                    break
            frontier = nxt
        if not found:
            raise ValueError(f"map node {target} unreachable from {source}")
        ports: List[int] = []
        v = target
        while v != source:
            ports.append(prev_port[v])
            v = prev_node[v]
        ports.reverse()
        return ports

    def euler_tour(self, root: int) -> Tuple[List[int], List[int]]:
        """Closed spanning-tree tour over resolved edges from ``root``.

        Returns ``(ports, nodes)`` where ``ports`` has exactly ``2(n'-1)``
        entries (``n'`` = nodes reachable via resolved edges) and ``nodes``
        is the visited map-node sequence (length ``2(n'-1)+1``, starting and
        ending at ``root``).
        """
        # BFS spanning tree over resolved edges (flat seen-array, same
        # level-synchronized discovery order as a FIFO queue).
        adj = self.adj
        children: Dict[int, List[Tuple[int, int, int]]] = {root: []}
        seen = bytearray(len(adj))
        seen[root] = 1
        frontier = [root]
        while frontier:
            nxt = []
            for v in frontier:
                kids = children[v]
                for p, entry in enumerate(adj[v]):
                    if entry is None:
                        continue
                    u, back = entry
                    if not seen[u]:
                        seen[u] = 1
                        children[u] = []
                        kids.append((u, p, back))
                        nxt.append(u)
            frontier = nxt

        ports: List[int] = []
        nodes: List[int] = [root]
        stack: List[Tuple[int, int]] = [(root, 0)]
        back_stack: List[int] = []
        while stack:
            v, idx = stack.pop()
            kids = children[v]
            if idx < len(kids):
                child, p_out, p_back = kids[idx]
                stack.append((v, idx + 1))
                ports.append(p_out)
                nodes.append(child)
                back_stack.append(p_back)
                stack.append((child, 0))
            else:
                if stack:
                    parent = stack[-1][0]
                    ports.append(back_stack.pop())
                    nodes.append(parent)
        return ports, nodes

    # ------------------------------------------------------------------
    # Export / validation
    # ------------------------------------------------------------------
    def to_port_graph(self) -> PortGraph:
        """Export the (complete) map as a :class:`PortGraph` for validation."""
        if not self.complete():
            raise ValueError("map is incomplete; cannot export")
        edges = []
        for u in range(self.num_nodes):
            for p, entry in enumerate(self.adj[u]):
                v, pv = entry  # type: ignore[misc]
                if (u, p) < (v, pv):
                    edges.append(Edge(u, v, p, pv))
                elif u == v:  # pragma: no cover - self loops impossible
                    raise ValueError("self loop in map")
        return PortGraph(self.num_nodes, edges)

    def memory_bits_estimate(self) -> int:
        """Rough ``O(m log n)`` memory footprint of the map, in bits.

        Two (node, port) pairs per resolved directed edge, each costing
        ``~2·log2(n)`` bits.  Used by the metrics that confirm the paper's
        memory claim shape.
        """
        import math

        n = max(self.num_nodes, 2)
        per_entry = 2 * math.ceil(math.log2(n))
        entries = sum(1 for row in self.adj for e in row if e is not None)
        return entries * per_entry
