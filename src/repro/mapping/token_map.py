"""Phase-1 map construction with a movable token (DESIGN.md substitution S2).

The finder's helper group acts as a *movable token*.  The finder repeatedly
resolves frontier edges of its partial map:

1. **escort** the token along known edges to the frontier edge's source
   ``u`` (helpers mirror the finder while its published card commands
   ``tok="follow"``);
2. **cross** the unresolved port together, observing the candidate node's
   degree and the entry port ``q``;
3. **park** the token there (one announce round publishing ``tok="hold"``,
   then walk back to ``u`` alone);
4. **sweep** every known map node via a spanning-tree Euler tour, checking
   each visited node for a co-located helper of *this* group (cards carry
   ``groupid``, so concurrent finder/token pairs never confuse each other);
5. if the token was found at known node ``y`` — the candidate *is* ``y``:
   record the edge and retrieve the token (one announce round publishing
   ``tok="follow"``); otherwise the candidate is a **new node**: record it,
   cross back to it, and retrieve the token.

Each resolution costs at most one known-path walk (``<= n-1``), 3 single
moves, 2 announce rounds and one sweep (``<= 2(n-1)``) — under ``3n + 5``
rounds — and there are at most ``2m`` resolutions, giving the ``O(n·m) ⊆
O(n^3)`` Phase-1 budget of :func:`repro.core.bounds.phase1_rounds`.

Command/timing protocol (pinned by tests): a helper obeys the finder card it
*sees*, which is the card the finder published in the previous round.  The
finder therefore publishes a command one round before the behaviour change:
``hold`` + stay, then depart; ``follow`` + stay, then move.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.mapping.partial_map import RobotMap
from repro.sim.actions import Action, Observation
from repro.sim.robot import RobotContext

__all__ = ["build_map_with_token", "token_present"]


def token_present(obs: Observation, groupid: int) -> bool:
    """Is a helper of group ``groupid`` co-located?  (The token test.)"""
    for c in obs.cards:
        if c.get("state") == "helper" and c.get("groupid") == groupid:
            return True
    return False


def build_map_with_token(
    ctx: RobotContext,
    obs: Observation,
    groupid: int,
    make_card: Callable[[str], Dict[str, Any]],
):
    """Finder sub-generator: build the full map; return ``(obs, map, here)``.

    Preconditions: the finder and its token are co-located; the finder's
    *currently published* card already commands ``tok="follow"`` (so the
    token mirrors the first escorting move).  Postcondition: the map is
    complete, the token is co-located, the finder's published card commands
    ``tok="follow"``, and ``here`` is the map node of the current position.

    The caller supplies ``make_card(tok)`` so algorithm-specific card fields
    (state, groupid) stay under its control.
    """
    rmap = RobotMap(obs.degree)
    here = 0

    while True:
        fe = rmap.next_frontier()
        if fe is None:
            break
        u, p = fe

        # 1. escort the token to u over known edges (card: follow)
        for port in rmap.route(here, u):
            obs = yield Action.move(port)
        here = u

        # 2. cross the unresolved port together
        obs = yield Action.move(p)
        q = obs.entry_port
        candidate_degree = obs.degree

        # 3. park the token: announce hold, then step back alone
        obs = yield Action.stay(card=make_card("hold"))
        obs = yield Action.move(q)
        # (now at u; token held at the candidate)

        # 4. sweep all known nodes looking for the token
        ports, nodes = rmap.euler_tour(u)
        found: Optional[int] = None
        for port, at_node in zip(ports, nodes[1:]):
            obs = yield Action.move(port)
            if token_present(obs, groupid):
                found = at_node
                break

        if found is not None:
            # 5a. candidate is the known node `found`; we stand on it now.
            rmap.set_edge(u, p, found, q)
            here = found
        else:
            # 5b. full sweep, no token: candidate is new.  The tour ended
            # back at u; record the node and go stand on it.
            w = rmap.add_node(candidate_degree)
            rmap.set_edge(u, p, w, q)
            obs = yield Action.move(p)
            here = w

        # retrieve the token: announce follow, next move drags it along
        obs = yield Action.stay(card=make_card("follow"))

    ctx.stats["map_nodes"] = rmap.num_nodes
    ctx.stats["map_edges"] = rmap.num_resolved_edges
    ctx.stats["map_memory_bits"] = rmap.memory_bits_estimate()
    return obs, rmap, here
