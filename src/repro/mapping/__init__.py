"""Map construction and navigation for finder robots.

Phase 1 of ``Undispersed-Gathering`` needs each finder to learn an
isomorphic port-labeled map of the anonymous graph.  The paper delegates
this to the ``O(n^3)`` procedure of Dieudonné–Pelc–Peleg ("Gathering despite
mischief"); this package provides a self-contained equivalent (DESIGN.md,
substitution S2):

* :class:`~repro.mapping.partial_map.RobotMap` — the map a robot carries:
  nodes with degrees, resolved port edges, frontier bookkeeping, BFS routing
  and spanning-tree Euler tours over the known part.
* :mod:`~repro.mapping.token_map` — the token-explorer: the finder escorts
  its helper group (a movable token), parks it across an unresolved port,
  sweeps the known map looking for it, and thereby distinguishes "new node"
  from "known node seen through a new edge".  Each of the ``<= 2m`` frontier
  resolutions costs ``O(n)`` rounds, for ``O(n·m) ⊆ O(n^3)`` total, matching
  the paper's budget.
"""

from repro.mapping.partial_map import RobotMap
from repro.mapping.token_map import build_map_with_token

__all__ = ["RobotMap", "build_map_with_token"]
