"""Shared test/fuzz generators and the chaos harness.

:mod:`repro.testing.strategies` holds the hypothesis strategies that the
property suite and the schedule fuzzer's differential tests draw from —
one set of generators, imported by both, instead of per-test-file copies
that drift apart.  Importing it requires the ``dev`` extra (hypothesis);
the production packages never import it.

:mod:`repro.testing.chaos` is the seeded fault-injection harness behind
the campaign layer's crash-safety tests (SIGKILL schedules, torn cache
files, orphaned leases — see ``docs/CAMPAIGNS.md``).  It depends only on
the standard library, so the campaign worker imports its hooks in
production; with no ``REPRO_CHAOS`` configured they are inert.
"""
