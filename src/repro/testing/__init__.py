"""Shared test/fuzz generators.

:mod:`repro.testing.strategies` holds the hypothesis strategies that the
property suite and the schedule fuzzer's differential tests draw from —
one set of generators, imported by both, instead of per-test-file copies
that drift apart.  Importing it requires the ``dev`` extra (hypothesis);
the production packages never import it.
"""
