"""Chaos harness: seeded fault injection for crash-safe campaign testing.

The campaign layer (:mod:`repro.campaigns`) promises that N workers
coordinating only through the filesystem survive SIGKILL, torn files,
stale leases, and slow claims — and still converge to results
bit-identical to a clean serial run.  This module exists to *prove* that,
not assert it: every robustness claim in ``docs/CAMPAIGNS.md`` has a
chaos test driving the real code through the real failure.

Two halves:

**Seeded in-band faults** — :class:`ChaosMonkey`, threaded through the
worker loop's fault points:

* ``claimed`` / ``pre_write`` / ``post_write`` — SIGKILL the worker
  process at the named point (after taking a lease; after executing but
  before the cache write; after the write but before the release).  Kills
  are rationed through ``O_EXCL`` slot files under ``<cache root>/chaos/``
  so "kill exactly one worker" works without inter-process coordination.
* claim delay — seeded jitter before every claim attempt, widening race
  windows that would otherwise be nanoseconds.

Decisions are pure functions of ``(config seed, fault point, cell key)``,
so a chaos schedule is reproducible: same seed, same campaign, same kills.
Configuration crosses process boundaries as JSON in the ``REPRO_CHAOS``
environment variable — spawned campaign workers pick it up automatically.

    REPRO_CHAOS='{"seed": 0, "kill": {"pre_write": 1.0}}' \\
        python -m repro campaign run --campaign ID --cache-dir DIR --workers 2

**Out-of-band vandalism** — module functions that damage a cache
directory the way real crashes do: truncate or garble per-key entries and
chunk files, plant stale ``*.tmp.<pid>`` droppings, orphan and backdate
lease files.  Tests call these directly between campaign phases.

SIGKILL is uncatchable by design — **never enable kill points for an
in-process worker in a test**: the test process itself would die.  Kill
chaos belongs to subprocess workers (``run_campaign(workers=N)`` or the
CLI); delays and vandalism are safe anywhere.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosConfig",
    "ChaosMonkey",
    "chaos_from_env",
    "FAULT_POINTS",
    "truncate_entry",
    "garble_entry",
    "chunk_files",
    "truncate_chunk",
    "plant_stale_tmp",
    "orphan_lease",
]

CHAOS_ENV_VAR = "REPRO_CHAOS"

#: The worker-loop fault points a kill probability can attach to.
FAULT_POINTS = ("claimed", "pre_write", "post_write")

#: A pid no real process has (beyond every mainstream pid_max), used for
#: planted tmp droppings so hygiene sweeps see a dead writer.
DEAD_PID = 99999999


@dataclass(frozen=True)
class ChaosConfig:
    """A declarative, seed-deterministic chaos schedule."""

    seed: int = 0
    #: fault point -> kill probability (0..1); see :data:`FAULT_POINTS`.
    kill: Dict[str, float] = field(default_factory=dict)
    #: Total kills allowed across *all* workers sharing the cache dir.
    kill_limit: int = 1
    #: Max seconds of seeded jitter injected before each claim attempt.
    claim_delay: float = 0.0

    def __post_init__(self):
        unknown = set(self.kill) - set(FAULT_POINTS)
        if unknown:
            raise ValueError(
                f"unknown chaos fault points {sorted(unknown)}; known: {list(FAULT_POINTS)}"
            )

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "kill": self.kill,
                "kill_limit": self.kill_limit,
                "claim_delay": self.claim_delay,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosConfig":
        payload = json.loads(text)
        return cls(
            seed=payload.get("seed", 0),
            kill=dict(payload.get("kill", {})),
            kill_limit=payload.get("kill_limit", 1),
            claim_delay=payload.get("claim_delay", 0.0),
        )

    def env(self) -> Dict[str, str]:
        """Environment overlay for launching chaos-afflicted workers."""
        return {CHAOS_ENV_VAR: self.to_json()}


class ChaosMonkey:
    """Executes a :class:`ChaosConfig` against one cache directory."""

    def __init__(self, config: ChaosConfig, cache_root: Union[str, Path]):
        self.config = config
        self.chaos_dir = Path(cache_root) / "chaos"

    # -- seeded decisions --------------------------------------------------
    def _rng(self, *scope: str) -> random.Random:
        return random.Random(":".join((str(self.config.seed),) + scope))

    def should_kill(self, point: str, key: str) -> bool:
        """The seed-deterministic part of the kill decision (no slot
        check, no side effects) — tests predict schedules with this."""
        p = self.config.kill.get(point, 0.0)
        return p > 0 and self._rng(point, key).random() < p

    # -- kill rationing ----------------------------------------------------
    def _claim_kill_slot(self) -> bool:
        """Take one of the ``kill_limit`` slots, atomically, cross-process.

        The same ``O_EXCL`` primitive the lease protocol uses: with
        ``kill_limit=1``, exactly one worker anywhere dies no matter how
        many trip a kill point.
        """
        self.chaos_dir.mkdir(parents=True, exist_ok=True)
        for i in range(self.config.kill_limit):
            try:
                fd = os.open(self.chaos_dir / f"kill.{i}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps({"pid": os.getpid(), "time": time.time()}))
            return True
        return False

    def kills_used(self) -> int:
        return len(list(self.chaos_dir.glob("kill.*")))

    # -- worker hooks ------------------------------------------------------
    def trip(self, point: str, key: str) -> None:
        """SIGKILL the current process if the schedule says so (and a kill
        slot is available).  Does not return when it fires."""
        if self.should_kill(point, key) and self._claim_kill_slot():
            os.kill(os.getpid(), signal.SIGKILL)

    def delay_claim(self, key: str) -> None:
        if self.config.claim_delay > 0:
            time.sleep(self._rng("delay", key).random() * self.config.claim_delay)


def chaos_from_env(cache_root: Union[str, Path]) -> Optional[ChaosMonkey]:
    """The monkey described by ``$REPRO_CHAOS``, or ``None`` (the default,
    zero-overhead case).  Malformed JSON raises — silently ignoring a
    chaos request would turn a failing chaos test into a vacuous pass."""
    text = os.environ.get(CHAOS_ENV_VAR)
    if not text:
        return None
    return ChaosMonkey(ChaosConfig.from_json(text), cache_root)


# ---------------------------------------------------------------------------
# Out-of-band vandalism (what real crashes leave behind)
# ---------------------------------------------------------------------------


def _entry_path(cache: ResultCache, spec: RunSpec) -> Path:
    path = cache._path(ResultCache.key_for(spec))
    if not path.exists():
        raise FileNotFoundError(f"no per-key entry for spec under {cache.root}")
    return path


def truncate_entry(cache: ResultCache, spec: RunSpec, keep: int = 16) -> Path:
    """Cut a per-key entry off mid-JSON, as a killed non-atomic writer or a
    bad disk would."""
    path = _entry_path(cache, spec)
    path.write_bytes(path.read_bytes()[:keep])
    return path


def garble_entry(cache: ResultCache, spec: RunSpec) -> Path:
    """Overwrite a per-key entry with non-JSON garbage."""
    path = _entry_path(cache, spec)
    path.write_bytes(b"\x00garbage\xff" * 3)
    return path


def chunk_files(cache: ResultCache) -> List[Path]:
    return sorted((cache.root / "chunks").glob("*.json"))


def truncate_chunk(cache: ResultCache, index: int = 0, keep: int = 16) -> Path:
    """Truncate the ``index``-th chunk file (all its records become
    misses that re-execute)."""
    files = chunk_files(cache)
    if not files:
        raise FileNotFoundError(f"no chunk files under {cache.root}")
    path = files[index]
    path.write_bytes(path.read_bytes()[:keep])
    return path


def plant_stale_tmp(
    cache: ResultCache, count: int = 3, pid: int = DEAD_PID
) -> List[Path]:
    """Scatter the ``*.tmp.<pid>`` droppings a killed writer leaves, in
    both the per-key fan-out and ``chunks/`` layouts."""
    planted = []
    for i in range(count):
        if i % 2 == 0:
            d = cache.root / f"{i:02x}"
        else:
            d = cache.root / "chunks"
        d.mkdir(parents=True, exist_ok=True)
        path = d / f"dead{i}.tmp.{pid}"
        path.write_text('{"torn": true')
        planted.append(path)
    return planted


def orphan_lease(
    cache_root: Union[str, Path],
    campaign_id: str,
    key: str,
    owner: str = "ghost:0:deadbeef",
    age: float = 1e6,
) -> Path:
    """Create a lease held by a dead worker, backdated ``age`` seconds so
    it reads as stale.  (Layout mirrors :mod:`repro.campaigns.leases`
    without importing it — chaos stays import-light so the production
    campaign worker can depend on this module.)"""
    lease_dir = Path(cache_root) / "leases" / campaign_id
    lease_dir.mkdir(parents=True, exist_ok=True)
    path = lease_dir / f"{key}.lease"
    path.write_text(json.dumps({"owner": owner, "key": key, "claimed_at": time.time() - age}))
    stale = time.time() - age
    os.utime(path, (stale, stale))
    return path
